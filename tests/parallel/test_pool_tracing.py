"""Cross-process span shipping: pool workers' spans reach the host tracer.

Process-pool workers run kernels in their own interpreter, where the
host's tracer object does not exist.  The pipe protocol ships each
task's spans back alongside its result and the collector merges them, so
per-stage accounting stays complete whichever backend executes stage 2.
"""

import warnings

import numpy as np
import pytest

from repro.core.config import TagMatchConfig
from repro.core.engine import TagMatch
from repro.obs import trace

NUM_TAGS = 32


def _tags(indices):
    return {f"tag-{i}" for i in indices}


@pytest.fixture
def process_engine():
    with warnings.catch_warnings():
        # A downgrade warning would mean we are not testing the pool.
        warnings.simplefilter("error", RuntimeWarning)
        engine = TagMatch(
            TagMatchConfig(
                max_partition_size=16,
                batch_size=8,
                batch_timeout_s=0.01,
                num_threads=2,
                backend="process",
                backend_workers=2,
            )
        )
    rng = np.random.default_rng(3)
    for key in range(120):
        chosen = rng.choice(NUM_TAGS, size=int(rng.integers(1, 5)), replace=False)
        engine.add_set(_tags(chosen), key=key)
    engine.consolidate()
    yield engine
    engine.close()
    trace.disable()
    trace.clear()


def _queries(n=24, seed=11):
    rng = np.random.default_rng(seed)
    sets = [
        _tags(rng.choice(NUM_TAGS, size=int(rng.integers(2, 8)), replace=False))
        for _ in range(n)
    ]
    return sets


def test_worker_kernel_spans_are_merged_into_host_tracer(process_engine):
    trace.enable()
    trace.clear()
    blocks = process_engine.encode_queries(_queries())
    process_engine.match_stream(blocks, unique=False)
    spans = [s for s in trace.recent(10_000) if s.name == "kernel"]
    assert spans, "no kernel spans shipped back from pool workers"
    workers = {s.attrs.get("worker") for s in spans}
    pids = {s.attrs.get("pid") for s in spans}
    assert all(w is not None for w in workers)
    assert all(p is not None for p in pids)
    # Worker spans carry the kernel's own attribution.
    assert all(s.attrs["rows"] > 0 for s in spans)
    assert all(s.duration_s >= 0.0 for s in spans)


def test_disabled_tracer_ships_no_spans(process_engine):
    trace.disable()
    trace.clear()
    blocks = process_engine.encode_queries(_queries(seed=12))
    process_engine.match_stream(blocks, unique=False)
    assert trace.count() == 0
