"""Crash injection for the shared-memory process pool.

The pool must behave like the paper's always-on matching service: a
compute worker dying (OOM-killed, segfaulted, ...) is detected by the
monitor thread, the slot is respawned against the same shared store, and
every in-flight task still completes — callers never observe the crash
beyond added latency.  SIGKILL is the worst case (no cleanup handlers
run), so that is what the tests inject.
"""

import time

import numpy as np
import pytest

from repro.core.config import TagMatchConfig
from repro.core.engine import TagMatch
from repro.errors import BackendError
from repro.gpu.timing import CostModel
from repro.parallel.backend import KernelParams
from repro.parallel.pool import ShmProcessPool
from repro.parallel.shm_store import SharedArrayStore


def _wait_until(predicate, timeout_s: float = 10.0) -> bool:
    deadline = time.perf_counter() + timeout_s
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


@pytest.fixture(scope="module")
def bare_pool():
    """A pool over a trivial store, for transport-level tests."""
    store = SharedArrayStore({"x": np.arange(8, dtype=np.uint64)})
    params = KernelParams(thread_block_size=8, prefilter=True, cost_model=CostModel())
    pool = ShmProcessPool(2, store.manifest, params)
    yield pool
    pool.close()
    store.close()


class TestPoolTransport:
    def test_ping_round_trip(self, bare_pool):
        bare_pool.ping(timeout=30.0)

    def test_unknown_task_kind_reports_error(self, bare_pool):
        task = bare_pool.submit("does-not-exist")
        with pytest.raises(BackendError, match="unknown pool task kind"):
            task.wait(timeout=30.0)

    def test_respawn_after_idle_kill(self, bare_pool):
        before = bare_pool.respawns
        old_pid = bare_pool.kill_worker(0)
        assert _wait_until(lambda: bare_pool.respawns > before)
        assert _wait_until(lambda: bare_pool.workers[0].is_alive())
        assert bare_pool.workers[0].pid != old_pid
        bare_pool.ping(timeout=30.0)  # pool still fully functional

    def test_midflight_kill_completes_all_tasks(self, bare_pool):
        """Tasks on the killed worker are resubmitted and still finish."""
        before = bare_pool.respawns
        # Occupy both workers so the victim is guaranteed to hold a task.
        tasks = [bare_pool.submit("sleep", 0.8) for _ in range(2)]
        tasks.append(bare_pool.submit("ping"))
        time.sleep(0.2)
        bare_pool.kill_worker(0)
        for task in tasks:
            task.wait(timeout=30.0)
        assert bare_pool.respawns > before

    def test_close_fails_pending_tasks_instead_of_hanging(self):
        store = SharedArrayStore({"x": np.arange(4, dtype=np.uint64)})
        params = KernelParams(
            thread_block_size=8, prefilter=True, cost_model=CostModel()
        )
        pool = ShmProcessPool(1, store.manifest, params)
        try:
            task = pool.submit("sleep", 30.0)
            time.sleep(0.1)
            pool.close(timeout_s=1.0)
            with pytest.raises(BackendError, match="pool closed"):
                task.wait(timeout=5.0)
            with pytest.raises(BackendError, match="closed"):
                pool.submit("ping")
        finally:
            pool.close()
            store.close()


class TestEngineSurvivesWorkerCrash:
    @pytest.fixture(scope="class")
    def engine(self):
        cfg = TagMatchConfig(
            max_partition_size=16,
            batch_size=8,
            batch_timeout_s=0.01,
            num_threads=2,
            backend="process",
            backend_workers=2,
        )
        eng = TagMatch(cfg)
        rng = np.random.default_rng(11)
        for key in range(200):
            chosen = rng.choice(40, size=int(rng.integers(1, 6)), replace=False)
            eng.add_set({f"tag-{c}" for c in chosen}, key=key)
        eng.consolidate()
        yield eng
        eng.close()

    def test_run_completes_and_matches_after_worker_kill(self, engine):
        assert engine.backend.name == "process"
        rng = np.random.default_rng(5)
        tag_sets = [
            {f"tag-{c}" for c in rng.choice(40, size=8, replace=False)}
            for _ in range(30)
        ]
        blocks = engine.encode_queries(tag_sets)
        expected = [sorted(r.tolist()) for r in engine.match_batch(blocks)]

        pool = engine.backend.pool
        before = pool.respawns
        pool.kill_worker(0)
        run = engine.match_stream(blocks)
        got = [sorted(r.tolist()) for r in run.results]
        assert got == expected
        assert _wait_until(lambda: pool.respawns > before)
        assert _wait_until(
            lambda: all(proc.is_alive() for proc in pool.workers)
        )
