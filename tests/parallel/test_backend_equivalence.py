"""Backend equivalence: inline, thread and process must agree exactly.

The execution backend only decides *where* stage-2 kernels run; the
(q, s) pairs, key lookups and merge order are backend-invariant.  These
tests pin that contract: every backend returns the identical per-query
key multiset from ``match``/``match_stream`` and the identical ordered
key set from ``match_unique``.
"""

import pickle
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TagMatchConfig
from repro.core.engine import TagMatch
from repro.errors import BackendError, ValidationError
from repro.parallel import backend as backend_mod
from repro.parallel.backend import create_backend
from repro.parallel.shm_store import SharedArrayStore, attach_views

NUM_TAGS = 48
BACKENDS = ("inline", "thread", "process")


def _tags(indices) -> set[str]:
    return {f"tag-{i}" for i in indices}


def _build(backend: str) -> TagMatch:
    cfg = TagMatchConfig(
        max_partition_size=16,
        batch_size=8,
        batch_timeout_s=0.01,
        num_threads=2,
        backend=backend,
        # Pin the worker count: on single-core CI hosts create_backend
        # would otherwise downgrade "process" to "thread" and these
        # tests would silently stop covering the pool.
        backend_workers=None if backend == "inline" else 2,
    )
    engine = TagMatch(cfg)
    rng = np.random.default_rng(7)
    for key in range(240):
        size = int(rng.integers(1, 6))
        chosen = rng.choice(NUM_TAGS, size=size, replace=False)
        # key % 100 gives some sets duplicate keys => multiset semantics
        # in match() actually get exercised.
        engine.add_set(_tags(chosen), key=key % 100)
    engine.consolidate()
    return engine


@pytest.fixture(scope="module")
def engines():
    built = {}
    with warnings.catch_warnings():
        # A fallback warning here would mean the process engine is not
        # actually a process engine; fail loudly instead.
        warnings.simplefilter("error", RuntimeWarning)
        for name in BACKENDS:
            built[name] = _build(name)
    yield built
    for engine in built.values():
        engine.close()


query_strategy = st.sets(st.integers(0, NUM_TAGS - 1), min_size=1, max_size=12)


class TestBackendSelection:
    def test_each_engine_runs_its_requested_backend(self, engines):
        for name in BACKENDS:
            assert engines[name].backend.name == name

    def test_process_pool_shape(self, engines):
        backend = engines["process"].backend
        assert backend.workers == 2
        assert len(backend.pool.workers) == 2
        assert all(proc.is_alive() for proc in backend.pool.workers)

    def test_devices_see_the_backend(self, engines):
        for name in BACKENDS:
            engine = engines[name]
            assert all(d.backend is engine.backend for d in engine.devices)


class TestEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(q=query_strategy)
    def test_match_and_match_unique_identical(self, engines, q):
        tags = _tags(q)
        base = sorted(engines["inline"].match(tags).tolist())
        base_unique = engines["inline"].match_unique(tags).tolist()
        for name in ("thread", "process"):
            assert sorted(engines[name].match(tags).tolist()) == base
            assert engines[name].match_unique(tags).tolist() == base_unique

    @settings(max_examples=8, deadline=None)
    @given(
        queries=st.lists(query_strategy, min_size=1, max_size=10),
    )
    def test_stream_key_multisets_identical(self, engines, queries):
        blocks = engines["inline"].encode_queries([_tags(q) for q in queries])
        base_run = engines["inline"].match_stream(blocks)
        base = [sorted(r.tolist()) for r in base_run.results]
        for name in ("thread", "process"):
            run = engines[name].match_stream(blocks)
            assert [sorted(r.tolist()) for r in run.results] == base

    @settings(max_examples=6, deadline=None)
    @given(
        queries=st.lists(query_strategy, min_size=1, max_size=8),
    )
    def test_stream_unique_sets_identical(self, engines, queries):
        blocks = engines["inline"].encode_queries([_tags(q) for q in queries])
        base_run = engines["inline"].match_stream(blocks, unique=True)
        base = [r.tolist() for r in base_run.results]
        for name in ("thread", "process"):
            run = engines[name].match_stream(blocks, unique=True)
            assert [r.tolist() for r in run.results] == base

    def test_process_preprocess_offload_identical(self, engines):
        """Stage-1 offload (process_preprocess=True) changes nothing."""
        cfg = TagMatchConfig(
            max_partition_size=16,
            batch_size=8,
            batch_timeout_s=0.01,
            num_threads=2,
            backend="process",
            backend_workers=2,
            process_preprocess=True,
        )
        engine = TagMatch(cfg)
        rng = np.random.default_rng(7)
        for key in range(240):
            size = int(rng.integers(1, 6))
            chosen = rng.choice(NUM_TAGS, size=size, replace=False)
            engine.add_set(_tags(chosen), key=key % 100)
        engine.consolidate()
        try:
            rng2 = np.random.default_rng(21)
            tag_sets = [
                _tags(rng2.choice(NUM_TAGS, size=9, replace=False)) for _ in range(30)
            ]
            blocks = engine.encode_queries(tag_sets)
            base = [sorted(r.tolist()) for r in engines["inline"].match_stream(blocks).results]
            got = [sorted(r.tolist()) for r in engine.match_stream(blocks).results]
            assert got == base
        finally:
            engine.close()


class TestGracefulDegradation:
    def test_single_core_host_falls_back_to_thread(self, engines, monkeypatch):
        monkeypatch.setattr(backend_mod.os, "cpu_count", lambda: 1)
        cfg = TagMatchConfig(backend="process")  # no explicit worker count
        with pytest.warns(RuntimeWarning, match="single-core"):
            backend = create_backend(cfg, engines["inline"].tagset_table)
        try:
            assert backend.name == "thread"
        finally:
            backend.close()

    def test_pool_spawn_failure_falls_back_to_thread(self, engines, monkeypatch):
        def boom(*args, **kwargs):
            raise OSError("no /dev/shm today")

        monkeypatch.setattr(backend_mod, "ProcessBackend", boom)
        cfg = TagMatchConfig(backend="process", backend_workers=2)
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = create_backend(cfg, engines["inline"].tagset_table)
        try:
            assert backend.name == "thread"
        finally:
            backend.close()

    def test_unknown_backend_rejected_by_config(self):
        with pytest.raises(ValidationError):
            TagMatchConfig(backend="gpu")
        with pytest.raises(ValidationError):
            TagMatchConfig(backend_workers=0)


class TestSharedStore:
    def test_manifest_is_picklable_and_views_zero_copy(self):
        arrays = {
            "a": np.arange(12, dtype=np.uint64).reshape(3, 4),
            "b": np.arange(5, dtype=np.uint32),
            "empty": np.empty(0, dtype=np.uint64),
        }
        store = SharedArrayStore(arrays)
        try:
            manifest = pickle.loads(pickle.dumps(store.manifest))
            assert manifest.keys() == list(arrays)
            shm, views = attach_views(manifest)
            try:
                for key, arr in arrays.items():
                    np.testing.assert_array_equal(views[key], arr)
                # Same physical segment: a write through the owner's view
                # is visible through the attached view (zero copy).
                store.views()["a"][0, 0] = 99
                assert views["a"][0, 0] == 99
            finally:
                shm.close()
        finally:
            store.close()

    def test_attach_after_unlink_raises(self):
        store = SharedArrayStore({"x": np.arange(4, dtype=np.uint8)})
        manifest = store.manifest
        store.close()
        with pytest.raises(BackendError, match="gone"):
            attach_views(manifest)
