"""Focused tests for the Patricia trie and the ICN variant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.icn_matcher import BUILD_BYTES_PER_SET, ICNMatcher
from repro.baselines.prefix_tree import (
    PrefixTreeMatcher,
    blocks_to_ints,
    int_to_blocks,
)
from repro.bloom.array import SignatureArray
from repro.bloom.filter import BloomSignature
from repro.errors import CapacityError

WIDTH = 192


def blocks_from_bits(bit_lists):
    return SignatureArray.from_signatures(
        [BloomSignature.from_bits(b, width=WIDTH) for b in bit_lists]
    ).blocks


def brute_ids(blocks, q):
    uniq = np.unique(blocks, axis=0)
    return sorted(np.nonzero(~np.any(uniq & ~q, axis=1))[0].tolist())


class TestIntConversion:
    def test_roundtrip(self):
        blocks = blocks_from_bits([[0, 5, 191], [64], []])
        ints = blocks_to_ints(blocks)
        for row, value in zip(blocks, ints):
            np.testing.assert_array_equal(int_to_blocks(value, 3), row)

    def test_bit0_is_msb(self):
        blocks = blocks_from_bits([[0]])
        assert blocks_to_ints(blocks)[0] == 1 << 191

    def test_bit191_is_lsb(self):
        blocks = blocks_from_bits([[191]])
        assert blocks_to_ints(blocks)[0] == 1


class TestPatriciaStructure:
    def test_node_count_grows_sublinearly_with_shared_prefixes(self):
        # Sets sharing a long prefix share trie nodes.
        shared = [[0, 1, 2, 3, 100 + i] for i in range(50)]
        tree = PrefixTreeMatcher()
        tree.build(blocks_from_bits(shared), np.arange(50))
        assert tree.num_nodes < 50 * 4

    def test_pruning_visits_few_nodes_for_nonmatching_query(self):
        rows = [[0, i] for i in range(1, 60)]
        tree = PrefixTreeMatcher()
        tree.build(blocks_from_bits(rows), np.arange(59))
        # query without bit 0 prunes at the root's child
        q = blocks_from_bits([[100, 101]])[0]
        tree.match_set_ids(q)
        assert tree.last_nodes_visited <= 3

    def test_single_key(self):
        tree = PrefixTreeMatcher()
        tree.build(blocks_from_bits([[3, 5]]), np.array([9]))
        q_match = blocks_from_bits([[3, 5, 9]])[0]
        q_miss = blocks_from_bits([[3]])[0]
        assert tree.match_blocks(q_match).tolist() == [9]
        assert tree.match_blocks(q_miss).size == 0

    def test_zero_signature_row_matches_everything(self):
        # An all-zero signature is a subset of any query.
        blocks = np.zeros((1, 3), dtype=np.uint64)
        tree = PrefixTreeMatcher()
        tree.build(blocks, np.array([4]))
        assert tree.match_blocks(np.zeros(3, np.uint64)).tolist() == [4]


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.lists(st.integers(0, 50), min_size=0, max_size=8),
        min_size=1,
        max_size=60,
    ),
    q_bits=st.lists(st.integers(0, 50), max_size=15),
)
def test_patricia_matches_brute_force(rows, q_bits):
    blocks = blocks_from_bits(rows)
    q = blocks_from_bits([q_bits])[0]
    tree = PrefixTreeMatcher()
    tree.build(blocks, np.arange(len(rows)))
    assert tree.match_set_ids(q).tolist() == brute_ids(blocks, q)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.lists(st.integers(0, 50), min_size=0, max_size=8),
        min_size=1,
        max_size=60,
    ),
    q_bits=st.lists(st.integers(0, 50), max_size=15),
)
def test_icn_matches_brute_force(rows, q_bits):
    blocks = blocks_from_bits(rows)
    q = blocks_from_bits([q_bits])[0]
    icn = ICNMatcher()
    icn.build(blocks, np.arange(len(rows)))
    assert icn.match_set_ids(q).tolist() == brute_ids(blocks, q)


class TestICN:
    def test_memory_budget_enforced(self):
        blocks = blocks_from_bits([[i, i + 50] for i in range(100)])
        budget = 50 * BUILD_BYTES_PER_SET  # enough for ~50 unique sets only
        icn = ICNMatcher(memory_budget_bytes=budget)
        with pytest.raises(CapacityError):
            icn.build(blocks, np.arange(100))

    def test_within_budget_builds(self):
        blocks = blocks_from_bits([[i] for i in range(10)])
        icn = ICNMatcher(memory_budget_bytes=100 * BUILD_BYTES_PER_SET)
        icn.build(blocks, np.arange(10))
        assert icn.peak_build_bytes == 10 * BUILD_BYTES_PER_SET

    def test_compression_reduces_visited_nodes(self):
        """Flattened subtrees replace long pointer chases: the compressed
        trie visits no more nodes than the plain one for any query."""
        rng = np.random.default_rng(4)
        rows = [
            sorted(rng.choice(60, size=rng.integers(1, 6), replace=False))
            for _ in range(400)
        ]
        blocks = blocks_from_bits(rows)
        plain = PrefixTreeMatcher()
        plain.build(blocks, np.arange(len(rows)))
        icn = ICNMatcher(leaf_size=32)
        icn.build(blocks, np.arange(len(rows)))
        assert icn.num_compressed_leaves > 0
        for _ in range(10):
            q = blocks_from_bits(
                [sorted(rng.choice(60, size=12, replace=False))]
            )[0]
            plain.match_set_ids(q)
            icn.match_set_ids(q)
            assert icn.last_nodes_visited <= plain.last_nodes_visited

    def test_compressed_leaves_cover_all_sets(self):
        rows = [[i, i + 40] for i in range(50)]
        blocks = blocks_from_bits(rows)
        icn = ICNMatcher(leaf_size=8)
        icn.build(blocks, np.arange(len(rows)))
        assert icn.num_compressed_leaves > 0
        # everything is still findable after compression
        for bits in rows:
            q = blocks_from_bits([bits + [100]])[0]
            assert icn.match_set_ids(q).tolist() == brute_ids(blocks, q)

    @pytest.mark.parametrize("leaf_size", [1, 4, 64])
    def test_leaf_size_sweep_correct(self, leaf_size):
        rng = np.random.default_rng(13)
        rows = [
            sorted(rng.choice(40, size=rng.integers(1, 5), replace=False))
            for _ in range(150)
        ]
        blocks = blocks_from_bits(rows)
        icn = ICNMatcher(leaf_size=leaf_size)
        icn.build(blocks, np.arange(len(rows)))
        for _ in range(15):
            q = blocks_from_bits(
                [sorted(rng.choice(40, size=10, replace=False))]
            )[0]
            assert icn.match_set_ids(q).tolist() == brute_ids(blocks, q)
