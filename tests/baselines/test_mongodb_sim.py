"""Tests for the MongoDB-like document store."""

import numpy as np
import pytest

from repro.baselines.mongodb_sim import MongoDBSim
from repro.errors import ValidationError


def sample_docs():
    tag_sets = [
        {"a", "b"},
        {"a"},
        {"c", "d"},
        {"a", "b", "c"},
        {"e"},
    ]
    keys = [10, 11, 12, 13, 14]
    return tag_sets, keys


class TestSingleServer:
    def test_subset_query(self):
        db = MongoDBSim.load(*sample_docs())
        got = db.find_subsets({"a", "b", "x"})
        assert got.tolist() == [10, 11]

    def test_exact_set(self):
        db = MongoDBSim.load(*sample_docs())
        assert db.find_subsets({"e"}).tolist() == [14]

    def test_no_match(self):
        db = MongoDBSim.load(*sample_docs())
        assert db.find_subsets({"zzz"}).size == 0

    def test_unique_flag(self):
        db = MongoDBSim.load([{"a"}, {"a", "b"}], [7, 7])
        assert db.find_subsets({"a", "b"}).tolist() == [7, 7]
        assert db.find_subsets({"a", "b"}, unique=True).tolist() == [7]

    def test_query_before_index_raises(self):
        db = MongoDBSim()
        db.insert_many([{"a"}], [1])
        with pytest.raises(ValidationError):
            db.find_subsets({"a"})

    def test_build_report(self):
        db = MongoDBSim.load(*sample_docs())
        rep = db.build_report
        assert rep.num_documents == 5
        assert rep.index_bytes > 0
        assert rep.index_s >= 0

    def test_inverted_index_contents(self):
        db = MongoDBSim.load(*sample_docs())
        shard = db.shards[0]
        assert sorted(shard.tag_index["a"]) == [0, 1, 3]


class TestSharded:
    @pytest.mark.parametrize("shards", [2, 3, 8])
    def test_results_independent_of_sharding(self, shards):
        tag_sets, keys = sample_docs()
        single = MongoDBSim.load(tag_sets, keys, num_shards=1)
        sharded = MongoDBSim.load(tag_sets, keys, num_shards=shards)
        for q in ({"a", "b", "x"}, {"c", "d"}, {"nope"}):
            assert sorted(single.find_subsets(q).tolist()) == sorted(
                sharded.find_subsets(q).tolist()
            )
        single.close()
        sharded.close()

    def test_documents_distributed(self):
        db = MongoDBSim.load(*sample_docs(), num_shards=2)
        sizes = [len(s.tag_sets) for s in db.shards]
        assert sum(sizes) == 5
        assert all(size > 0 for size in sizes)
        db.close()

    def test_more_shards_than_docs(self):
        db = MongoDBSim.load([{"a"}], [1], num_shards=4)
        assert db.find_subsets({"a"}).tolist() == [1]
        db.close()

    def test_zero_shards_rejected(self):
        with pytest.raises(ValidationError):
            MongoDBSim(num_shards=0)

    def test_context_manager(self):
        with MongoDBSim(num_shards=2) as db:
            db.insert_many([{"a"}], [1])
            db.ensure_index()
            assert db.find_subsets({"a"}).tolist() == [1]


class TestScaleBehaviour:
    def test_scan_insensitive_to_query_tag_count(self):
        """Figure 10: query size barely affects MongoDB's throughput."""
        rng = np.random.default_rng(5)
        tags = [f"t{i}" for i in range(100)]
        tag_sets = [
            {tags[c] for c in rng.choice(100, size=3, replace=False)}
            for _ in range(2000)
        ]
        db = MongoDBSim.load(tag_sets, list(range(2000)))
        import time

        def time_queries(size):
            qs = [
                {tags[c] for c in rng.choice(100, size=size, replace=False)}
                for _ in range(30)
            ]
            start = time.perf_counter()
            for q in qs:
                db.find_subsets(q)
            return time.perf_counter() - start

        t_small, t_large = time_queries(4), time_queries(12)
        assert t_large < 10 * t_small  # same order of magnitude
