"""Tests for the two classic solution families of §5 (inverted lists,
query-subset enumeration)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.inverted_index import InvertedIndexMatcher
from repro.baselines.linear_scan import LinearScanMatcher
from repro.baselines.query_subset_hash import QuerySubsetHashMatcher
from repro.bloom.array import SignatureArray
from repro.bloom.filter import BloomSignature
from repro.bloom.hashing import TagHasher
from repro.errors import ValidationError

WIDTH = 192
bit_lists = st.lists(st.integers(0, 40), min_size=0, max_size=6)


def blocks_of(rows):
    return SignatureArray.from_signatures(
        [BloomSignature.from_bits(r, width=WIDTH) for r in rows]
    ).blocks


class TestInvertedIndex:
    def test_agrees_with_oracle_on_workload(self):
        hasher = TagHasher()
        rng = np.random.default_rng(3)
        tags = [f"t{i}" for i in range(50)]
        tag_sets = [
            [tags[c] for c in rng.choice(50, size=rng.integers(1, 5), replace=False)]
            for _ in range(300)
        ]
        blocks = hasher.encode_sets(tag_sets)
        keys = np.arange(300)
        oracle = LinearScanMatcher()
        oracle.build(blocks, keys)
        inv = InvertedIndexMatcher()
        inv.build(blocks, keys)
        for _ in range(25):
            q = hasher.encode_sets(
                [[tags[c] for c in rng.choice(50, size=9, replace=False)]]
            )[0]
            assert sorted(inv.match_blocks(q).tolist()) == sorted(
                oracle.match_blocks(q).tolist()
            )

    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.lists(bit_lists, min_size=1, max_size=40),
        q=st.lists(st.integers(0, 40), max_size=12),
    )
    def test_counting_equals_brute_force(self, rows, q):
        blocks = blocks_of(rows)
        keys = np.arange(len(rows))
        inv = InvertedIndexMatcher()
        inv.build(blocks, keys)
        query = blocks_of([q])[0]
        uniq = np.unique(blocks, axis=0)
        expected = sorted(
            np.nonzero(~np.any(uniq & ~query, axis=1))[0].tolist()
        )
        assert inv.match_set_ids(query).tolist() == expected

    def test_index_bytes_reported(self):
        inv = InvertedIndexMatcher()
        report = inv.build(blocks_of([[1, 2], [3]]), np.arange(2))
        assert report.index_bytes > 0


class TestQuerySubsetHash:
    def build_small(self):
        matcher = QuerySubsetHashMatcher()
        matcher.build(
            [{"a", "b"}, {"a"}, {"c", "d", "e"}, {"a", "b"}],
            [1, 2, 3, 4],
        )
        return matcher

    def test_exact_subset_semantics(self):
        m = self.build_small()
        assert m.match({"a", "b", "x"}).tolist() == [1, 2, 4]

    def test_unique(self):
        m = QuerySubsetHashMatcher()
        m.build([{"a"}, {"a", "b"}], [7, 7])
        assert m.match({"a", "b"}, unique=True).tolist() == [7]
        assert m.match({"a", "b"}).tolist() == [7, 7]

    def test_no_match(self):
        m = self.build_small()
        assert m.match({"z"}).size == 0

    def test_num_sets_counts_unique(self):
        m = self.build_small()
        assert m.num_sets == 3  # {a,b} indexed once with two keys

    def test_non_vocabulary_tags_free(self):
        """Tags that appear in no database set do not blow up the
        enumeration."""
        m = self.build_small()
        q = {"a"} | {f"junk{i}" for i in range(100)}
        assert m.match(q).tolist() == [2]

    def test_enumeration_limit_enforced(self):
        m = QuerySubsetHashMatcher(max_query_tags=5)
        m.build([{f"t{i}"} for i in range(10)], list(range(10)))
        with pytest.raises(ValidationError):
            m.match({f"t{i}" for i in range(8)})

    def test_probe_count_grows_exponentially(self):
        """The §1 argument for why this family cannot scale."""
        m = QuerySubsetHashMatcher()
        m.build([{"a", "b", "c", "d", "e"}], [1])
        small = m.probes_for({"a", "b", "c"})
        large = m.probes_for({"a", "b", "c", "d", "e"})
        assert large > 4 * small

    def test_empty_set_rejected(self):
        m = QuerySubsetHashMatcher()
        with pytest.raises(ValidationError):
            m.build([set()], [1])

    def test_agrees_with_brute_force(self):
        rng = np.random.default_rng(5)
        tags = [f"t{i}" for i in range(12)]
        db = [
            (frozenset(tags[c] for c in rng.choice(12, size=rng.integers(1, 4), replace=False)), k)
            for k in range(60)
        ]
        m = QuerySubsetHashMatcher()
        m.build([t for t, _ in db], [k for _, k in db])
        for _ in range(15):
            q = {tags[c] for c in rng.choice(12, size=6, replace=False)}
            expected = sorted(k for t, k in db if t <= q)
            assert m.match(q).tolist() == expected
