"""Cross-system correctness: every baseline agrees with the oracle."""

import numpy as np
import pytest

from repro.baselines.cpu_tagmatch import CpuTagMatchMatcher
from repro.baselines.gpu_only import GpuBatchedMatcher, GpuPlainMatcher
from repro.baselines.icn_matcher import ICNMatcher
from repro.baselines.inverted_index import InvertedIndexMatcher
from repro.baselines.linear_scan import LinearScanMatcher
from repro.baselines.prefix_tree import PrefixTreeMatcher
from repro.bloom.hashing import TagHasher
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def workload():
    hasher = TagHasher()
    rng = np.random.default_rng(77)
    tags = [f"tag-{i}" for i in range(80)]
    tag_sets = []
    keys = []
    for key in range(400):
        size = int(rng.integers(1, 6))
        chosen = rng.choice(80, size=size, replace=False)
        tag_sets.append([tags[c] for c in chosen])
        keys.append(key % 350)  # some keys repeat across sets
    blocks = hasher.encode_sets(tag_sets)
    queries = []
    for _ in range(30):
        base = tag_sets[int(rng.integers(0, 400))]
        extra = [tags[c] for c in rng.choice(80, size=3, replace=False)]
        queries.append(set(base) | set(extra))
    query_blocks = hasher.encode_sets(queries)
    return blocks, np.array(keys), query_blocks


def matcher_factories():
    return [
        ("prefix_tree", lambda: PrefixTreeMatcher()),
        ("icn", lambda: ICNMatcher()),
        ("cpu_tagmatch", lambda: CpuTagMatchMatcher(max_partition_size=32)),
        ("gpu_plain", lambda: GpuPlainMatcher()),
        ("gpu_batched", lambda: GpuBatchedMatcher(batch_size=16)),
        ("inverted_index", lambda: InvertedIndexMatcher()),
    ]


class TestAgreementWithOracle:
    @pytest.mark.parametrize("name,factory", matcher_factories())
    def test_match_agrees(self, workload, name, factory):
        blocks, keys, queries = workload
        oracle = LinearScanMatcher()
        oracle.build(blocks, keys)
        system = factory()
        system.build(blocks, keys)
        expected = oracle.match_many(queries)
        got = system.match_many(queries)
        for e, g in zip(expected, got):
            assert sorted(e.tolist()) == sorted(g.tolist()), name
        if hasattr(system, "close"):
            system.close()

    @pytest.mark.parametrize("name,factory", matcher_factories())
    def test_match_unique_agrees(self, workload, name, factory):
        blocks, keys, queries = workload
        oracle = LinearScanMatcher()
        oracle.build(blocks, keys)
        system = factory()
        system.build(blocks, keys)
        expected = oracle.match_many(queries[:10], unique=True)
        got = system.match_many(queries[:10], unique=True)
        for e, g in zip(expected, got):
            assert sorted(e.tolist()) == sorted(g.tolist()), name
        if hasattr(system, "close"):
            system.close()


class TestInterfaceContracts:
    def test_build_report_populated(self, workload):
        blocks, keys, _ = workload
        m = LinearScanMatcher()
        report = m.build(blocks, keys)
        assert report.elapsed_s >= 0
        assert report.index_bytes > 0
        assert report.num_unique_sets <= blocks.shape[0]

    def test_match_before_build_raises(self):
        with pytest.raises(ValidationError):
            LinearScanMatcher().match_blocks(np.zeros(3, dtype=np.uint64))

    def test_mismatched_build_arrays(self):
        with pytest.raises(ValidationError):
            LinearScanMatcher().build(np.zeros((2, 3), np.uint64), np.zeros(1))

    def test_duplicate_signatures_merge_keys(self):
        hasher = TagHasher()
        blocks = hasher.encode_sets([["a"], ["a"], ["b"]])
        m = LinearScanMatcher()
        report = m.build(blocks, np.array([1, 2, 3]))
        assert report.num_unique_sets == 2
        got = m.match_blocks(np.array(hasher.encode_set(["a"]), dtype=np.uint64))
        assert sorted(got.tolist()) == [1, 2]

    def test_multiset_vs_unique(self):
        hasher = TagHasher()
        blocks = hasher.encode_sets([["a"], ["a", "b"]])
        m = LinearScanMatcher()
        m.build(blocks, np.array([7, 7]))
        q = np.array(hasher.encode_set(["a", "b"]), dtype=np.uint64)
        assert m.match_blocks(q).tolist() == [7, 7]
        assert m.match_blocks(q, unique=True).tolist() == [7]
