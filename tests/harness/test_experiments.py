"""Smoke tests of the experiment harness on a tiny workload.

The full-scale experiments run under ``benchmarks/``; here each
experiment's plumbing is exercised quickly on a miniature workload to
catch interface regressions without paying benchmark runtimes.
"""

import numpy as np
import pytest

from repro.harness import experiments
from repro.harness.workload_cache import build_engine, default_engine_config
from repro.workloads import generate_twitter_workload


@pytest.fixture(scope="module")
def tiny_workload():
    return generate_twitter_workload(num_users=3000, seed=5)


class TestIcnBudget:
    def test_threshold_admits_20pct_of_associations(self):
        budget = experiments.icn_memory_budget(1_000_000)
        per_set = experiments.BUILD_BYTES_PER_SET
        # 20% of associations covers ~27% of uniques: must fit.
        assert 270_000 * per_set <= budget
        # the full database must not.
        assert 1_000_000 * per_set > budget


class TestWorkloadCache:
    def test_default_config(self):
        cfg = default_engine_config(num_threads=2)
        assert cfg.num_threads == 2
        assert cfg.num_gpus == 2

    def test_build_engine(self, tiny_workload):
        engine = build_engine(
            tiny_workload.blocks,
            tiny_workload.keys,
            default_engine_config(max_partition_size=64, num_gpus=1),
        )
        assert engine.num_unique_sets > 0
        engine.close()


class TestExperimentSmoke:
    def test_fig4_db_size(self, tiny_workload):
        result = experiments.fig4_db_size(tiny_workload, fractions=(0.5, 1.0))
        assert len(result.rows) == 2
        assert all(len(v) == 2 for v in result.data.values())
        assert result.to_text()

    def test_fig7_maxp(self, tiny_workload):
        result = experiments.fig7_maxp(tiny_workload, maxp_values=(64, 256))
        assert [row[0] for row in result.rows] == [64, 256]
        assert result.data["partitions"][0] >= result.data["partitions"][1]

    def test_fig8_partitioning(self, tiny_workload):
        result = experiments.fig8_partitioning_time(
            tiny_workload, fractions=(0.5, 1.0)
        )
        assert result.data["sets"][1] > result.data["sets"][0]
        assert "mongo_index_s" in result.data

    def test_fig9_memory(self, tiny_workload):
        result = experiments.fig9_memory(tiny_workload, fractions=(0.5, 1.0))
        assert result.data["gpu_mb"][1] > result.data["gpu_mb"][0]

    def test_ablation_packing(self, tiny_workload):
        result = experiments.ablation_packing(tiny_workload)
        assert result.data["packed"] < result.data["naive"]

    def test_ablation_pivot(self, tiny_workload):
        result = experiments.ablation_pivot(tiny_workload)
        assert result.data["partitions_balanced"] > 0
        assert result.data["qps_balanced"] > 0

    def test_sec45(self, tiny_workload):
        result = experiments.sec45_gpu_only_design(
            tiny_workload, match_fractions=(0.0, 1.0), db_fraction=0.5, batch=32
        )
        assert len(result.data["hybrid_us"]) == 2
        assert result.data["gpu_only_us"][1] > 0

    def test_fig11_model(self):
        result = experiments.fig11_mongo_sharding(
            instance_counts=(1, 4), num_docs=5000, num_queries=10
        )
        assert result.data["instances"] == [1, 4]
        assert all(q > 0 for q in result.data["qps"])


class TestCraftedWorkloads:
    def test_documents_shape(self):
        rng = np.random.default_rng(0)
        docs, keys = experiments._crafted_documents(100, 3, rng)
        assert len(docs) == 100
        assert all(1 <= len(d) <= 3 for d in docs)  # duplicates may collapse
        assert keys == list(range(100))

    def test_queries_embed_documents(self):
        rng = np.random.default_rng(0)
        docs, _ = experiments._crafted_documents(50, 3, rng)
        queries = experiments._crafted_queries(docs, 20, 6, rng)
        assert all(len(q) == 6 for q in queries)
        # every query was seeded from some document
        assert all(any(d <= q for d in docs) for q in queries)
