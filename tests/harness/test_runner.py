"""Tests for throughput/latency measurement helpers."""

import numpy as np
import pytest

from repro.harness.runner import ThroughputResult, latency_percentiles, measure_matcher


class TestThroughputResult:
    def test_derived_rates(self):
        r = ThroughputResult("x", num_queries=2000, elapsed_s=2.0, output_keys=6000)
        assert r.qps == 1000.0
        assert r.kqps == 1.0
        assert r.output_rate == 3000.0

    def test_zero_elapsed(self):
        r = ThroughputResult("x", 10, 0.0, 0)
        assert r.qps == 0.0
        assert r.output_rate == 0.0


class TestMeasureMatcher:
    def test_counts_queries_and_keys(self):
        queries = np.zeros((5, 3), dtype=np.uint64)

        def match_many(qs):
            return [np.arange(i) for i in range(len(qs))]

        r = measure_matcher("demo", match_many, queries)
        assert r.num_queries == 5
        assert r.output_keys == 0 + 1 + 2 + 3 + 4
        assert r.elapsed_s > 0
        assert r.system == "demo"


class TestLatencyPercentiles:
    def test_values_in_ms(self):
        pct = latency_percentiles(np.array([0.1, 0.2, 0.3, 0.4]))
        assert pct["p50_ms"] == pytest.approx(250.0)
        assert pct["max_ms"] == pytest.approx(400.0)

    def test_ordering(self):
        rng = np.random.default_rng(0)
        pct = latency_percentiles(rng.random(1000))
        assert pct["p50_ms"] <= pct["p90_ms"] <= pct["p99_ms"] <= pct["max_ms"]
