"""Tests for result formatting and persistence."""

import os

from repro.harness.reporting import ExperimentResult, format_table, save_result


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_none_renders_as_dash(self):
        text = format_table(["x"], [[None]])
        assert "—" in text

    def test_float_rendering(self):
        text = format_table(["v"], [[1234.567], [3.14159], [0.00123]])
        assert "1235" in text
        assert "3.14" in text
        assert "0.0012" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            name="demo",
            title="A demo table",
            headers=["k", "v"],
            rows=[["x", 1.0]],
            notes="a note",
            data={"raw": [1.0]},
        )

    def test_to_text_contains_everything(self):
        text = self.make().to_text()
        assert "demo" in text
        assert "A demo table" in text
        assert "a note" in text
        assert text.endswith("\n")

    def test_save_result(self, tmp_path):
        path = save_result(self.make(), directory=str(tmp_path))
        assert os.path.exists(path)
        with open(path) as handle:
            assert "A demo table" in handle.read()


class TestSeriesChart:
    def test_basic_render(self):
        from repro.harness.reporting import format_series_chart

        chart = format_series_chart([1, 2, 3], {"a": [1.0, 2.0, 3.0]})
        lines = chart.splitlines()
        assert any("o" in line for line in lines)
        assert "a" in lines[-1]
        assert "1 … 3" in chart

    def test_log_scale(self):
        from repro.harness.reporting import format_series_chart

        chart = format_series_chart(
            [1, 2], {"x": [1.0, 1000.0]}, log_y=True, height=6
        )
        assert "1e+03" in chart or "1000" in chart

    def test_none_and_zero_values_skipped(self):
        from repro.harness.reporting import format_series_chart

        chart = format_series_chart([1, 2, 3], {"a": [None, 0.0, 5.0]})
        assert "o" in chart

    def test_empty_series(self):
        from repro.harness.reporting import format_series_chart

        assert format_series_chart([1], {"a": [None]}) == "(no data)"

    def test_flat_series(self):
        from repro.harness.reporting import format_series_chart

        chart = format_series_chart([1, 2], {"a": [5.0, 5.0]})
        assert "o" in chart

    def test_two_series_get_distinct_markers(self):
        from repro.harness.reporting import format_series_chart

        chart = format_series_chart(
            [1, 2], {"a": [1.0, 2.0], "b": [2.0, 1.0]}
        )
        assert "o a" in chart and "x b" in chart
