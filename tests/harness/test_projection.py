"""Tests for the full-scale projection calculator."""

import pytest

from repro.harness.projection import CPP_OVER_PYTHON, project_full_scale
from repro.harness.workload_cache import build_engine, default_engine_config
from repro.workloads import generate_twitter_workload
from repro.workloads.scaling import PAPER_UNIQUE_SETS


@pytest.fixture(scope="module")
def setup():
    workload = generate_twitter_workload(num_users=8000, seed=47)
    engine = build_engine(
        workload.blocks,
        workload.keys,
        default_engine_config(max_partition_size=256, num_gpus=2),
    )
    yield engine, workload
    engine.close()


class TestProjection:
    def test_fields_populated(self, setup):
        engine, workload = setup
        p = project_full_scale(engine, workload, num_queries=256)
        assert p.measured_qps > 0
        assert p.measured_checks_per_query > 0
        assert p.bottleneck in ("gpu", "cpu")
        assert p.projected_qps > 0

    def test_checks_scale_linearly_with_database(self, setup):
        engine, workload = setup
        p = project_full_scale(engine, workload, num_queries=256)
        expected_ratio = PAPER_UNIQUE_SETS / engine.num_unique_sets
        assert p.projected_checks_per_query == pytest.approx(
            p.measured_checks_per_query * expected_ratio
        )

    def test_projection_in_paper_ballpark(self, setup):
        """The projection must land within an order of magnitude of the
        paper's ~30K match-unique q/s — it is a sanity model with two
        documented constants, not a benchmark."""
        engine, workload = setup
        p = project_full_scale(engine, workload, num_queries=256)
        assert 3_000 < p.projected_qps < 1_000_000

    def test_more_gpus_helps_when_gpu_bound(self, setup):
        engine, workload = setup
        two = project_full_scale(engine, workload, num_queries=256, paper_gpus=2)
        eight = project_full_scale(engine, workload, num_queries=256, paper_gpus=8)
        if two.bottleneck == "gpu":
            assert eight.projected_qps > two.projected_qps

    def test_constant_is_documented_scale(self):
        assert 5 <= CPP_OVER_PYTHON <= 100
