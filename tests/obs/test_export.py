"""Prometheus exposition, the metrics HTTP endpoint, and the flame text."""

import asyncio
import urllib.request

from repro.obs.export import MetricsServer, format_flame, render_prometheus
from repro.obs.registry import Registry


def _sample_registry() -> Registry:
    reg = Registry()
    reg.counter("repro_publishes_total").inc(7)
    reg.gauge("repro_inflight").set(2)
    h = reg.histogram("repro_stage_seconds", buckets=(0.001, 0.01), stage="kernel")
    h.observe(0.0005)
    h.observe(0.005)
    h.observe(5.0)  # overflow
    return reg


def test_render_prometheus_counter_gauge_histogram():
    text = render_prometheus(_sample_registry())
    lines = text.splitlines()
    assert "# TYPE repro_publishes_total counter" in lines
    assert "repro_publishes_total 7" in lines
    assert "repro_inflight 2" in lines
    # Histogram buckets are cumulative and end with +Inf == count.
    assert 'repro_stage_seconds_bucket{le="0.001",stage="kernel"} 1' in lines
    assert 'repro_stage_seconds_bucket{le="0.01",stage="kernel"} 2' in lines
    assert 'repro_stage_seconds_bucket{le="+Inf",stage="kernel"} 3' in lines
    assert 'repro_stage_seconds_count{stage="kernel"} 3' in lines
    assert text.endswith("\n")


def test_metrics_server_serves_exposition_over_http():
    reg = _sample_registry()

    async def run() -> str:
        server = MetricsServer(lambda: render_prometheus(reg))
        await server.start("127.0.0.1", 0)
        url = f"http://127.0.0.1:{server.port}/metrics"
        try:
            return await asyncio.to_thread(
                lambda: urllib.request.urlopen(url, timeout=5).read().decode()
            )
        finally:
            await server.close()

    body = asyncio.run(run())
    assert "repro_publishes_total 7" in body
    assert "repro_stage_seconds_bucket" in body


def test_metrics_server_rejects_non_get():
    async def run() -> bytes:
        server = MetricsServer(lambda: "")
        await server.start("127.0.0.1", 0)
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(b"POST /metrics HTTP/1.0\r\n\r\n")
            await writer.drain()
            reply = await reader.read(64)
            writer.close()
            return reply
        finally:
            await server.close()

    assert b"405" in asyncio.run(run())


def test_format_flame_orders_by_share():
    stages = {
        "kernel": {"count": 10, "total_s": 3.0, "p50_ms": 1.0, "p99_ms": 9.0},
        "transfer": {"count": 5, "total_s": 1.0},
    }
    text = format_flame(stages)
    kernel_line, transfer_line = text.splitlines()
    assert kernel_line.startswith("kernel")
    assert "75.0%" in kernel_line
    assert "p99=9.000ms" in kernel_line
    assert transfer_line.startswith("transfer")


def test_format_flame_empty():
    assert "no spans" in format_flame({})
