"""Registry primitives: counters, histograms, sliding rate, collectors."""

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    SlidingRate,
)


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
def test_histogram_quantiles_interpolate_within_bucket():
    h = Histogram(bounds=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 1.6, 3.0):
        h.observe(v)
    # p50 rank=2 lands in bucket (1, 2]; p99 in (2, 4].
    assert 1.0 <= h.quantile(0.50) <= 2.0
    assert 2.0 <= h.quantile(0.99) <= 4.0
    assert h.quantile(0.50) <= h.quantile(0.90) <= h.quantile(0.99)


def test_histogram_overflow_bucket_and_max():
    h = Histogram(bounds=(1.0, 2.0))
    h.observe(100.0)
    snap = h.snapshot()
    assert snap["buckets"]["overflow"] == 1
    assert snap["max_s"] == 100.0
    # Overflow quantile reports the last finite bound, never invents one.
    assert h.quantile(0.99) == 2.0


def test_histogram_empty_snapshot_is_zeroes():
    snap = Histogram().snapshot()
    assert snap["count"] == 0
    assert snap["p50_s"] == 0.0
    assert snap["p99_s"] == 0.0


def test_histogram_counts_are_integers():
    h = Histogram()
    h.observe(0.001)
    snap = h.snapshot()
    assert isinstance(snap["count"], int)
    assert all(isinstance(c, int) for c in snap["buckets"]["counts"])


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=(2.0, 1.0))


def test_default_buckets_cover_microseconds_to_seconds():
    assert DEFAULT_LATENCY_BUCKETS[0] <= 1e-5
    assert DEFAULT_LATENCY_BUCKETS[-1] >= 10.0


# ----------------------------------------------------------------------
# SlidingRate — the qps-decay regression (satellite bugfix)
# ----------------------------------------------------------------------
def test_sliding_rate_reflects_recent_traffic_only():
    clock = FakeClock()
    rate = SlidingRate(window_s=10.0, resolution_s=1.0, clock=clock)
    clock.advance(100.0)  # long idle warm-up, then traffic
    for _ in range(50):
        rate.record()
        clock.advance(0.1)
    # 50 events over 5 s of a 10 s window: the lifetime average would
    # report ~0.5/s (105 s uptime); the window reports the true rate.
    assert rate.rate() == pytest.approx(5.0, rel=0.3)


def test_sliding_rate_decays_to_zero_when_idle():
    clock = FakeClock()
    rate = SlidingRate(window_s=5.0, resolution_s=1.0, clock=clock)
    rate.record(10)
    clock.advance(1.0)
    assert rate.rate() > 0.0
    clock.advance(20.0)  # entire window ages out
    assert rate.rate() == 0.0


def test_sliding_rate_fresh_start_uses_uptime_not_window():
    clock = FakeClock()
    rate = SlidingRate(window_s=30.0, resolution_s=1.0, clock=clock)
    for _ in range(10):
        rate.record()
    clock.advance(2.0)
    # 10 events in 2 s of uptime: ~5/s, not 10/30 diluted by the window.
    assert rate.rate() == pytest.approx(5.0, rel=0.1)


def test_sliding_rate_validates_geometry():
    with pytest.raises(ValueError):
        SlidingRate(window_s=1.0, resolution_s=2.0)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_get_or_create_is_stable_per_name_and_labels():
    reg = Registry()
    a = reg.counter("hits", stage="kernel")
    b = reg.counter("hits", stage="kernel")
    c = reg.counter("hits", stage="transfer")
    assert a is b
    assert a is not c


def test_registry_snapshot_renders_labels_and_values():
    reg = Registry()
    reg.counter("repro_hits_total").inc(3)
    reg.gauge("repro_depth", device=0).set(7)
    reg.histogram("repro_lat_seconds").observe(0.01)
    snap = reg.snapshot()
    assert snap["repro_hits_total"] == 3
    assert snap["repro_depth"]["device=0"] == 7
    assert snap["repro_lat_seconds"]["count"] == 1


def test_registry_collectors_run_before_snapshot():
    reg = Registry()
    state = {"value": 0}
    reg.register_collector(lambda: reg.gauge("live").set(state["value"]))
    state["value"] = 42
    assert reg.snapshot()["live"] == 42


def test_counter_and_gauge_primitives():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5
    g = Gauge()
    g.set(1.5)
    assert g.value == 1.5
