"""The span tracer: ring bounds, disabled-path no-ops, cursor reads."""

import threading

import pytest

from repro.obs.trace import STAGES, Span, Tracer, stage_summary


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable(capacity=64)
    yield t
    t.disable()


def test_disabled_tracer_records_nothing():
    t = Tracer()
    assert not t.is_enabled()
    with t.span("kernel", rows=10):
        pass
    t.record("transfer", 0.0, 1.0, {"nbytes": 4})
    assert t.count == 0
    assert t.drain() == []


def test_span_context_manager_records_duration_and_attrs(tracer):
    with tracer.span("kernel", rows=7):
        pass
    (span,) = tracer.drain()
    assert span.name == "kernel"
    assert span.duration_s >= 0.0
    assert span.attrs["rows"] == 7


def test_ring_buffer_is_bounded(tracer):
    for i in range(200):
        tracer.record("kernel", float(i), 0.001, {})
    assert len(tracer.recent(1000)) == 64  # capacity
    assert tracer.count == 200  # monotonic total survives eviction


def test_since_cursor_returns_only_new_spans(tracer):
    tracer.record("kernel", 0.0, 0.1, {})
    cursor, spans = tracer.since(0)
    assert [s.name for s in spans] == ["kernel"]
    cursor, spans = tracer.since(cursor)
    assert spans == []
    tracer.record("transfer", 1.0, 0.2, {})
    cursor, spans = tracer.since(cursor)
    assert [s.name for s in spans] == ["transfer"]


def test_since_reports_evicted_spans_best_effort(tracer):
    for i in range(100):
        tracer.record("kernel", float(i), 0.001, {})
    # Cursor 0 predates the ring: we get what survived, not an error.
    cursor, spans = tracer.since(0)
    assert len(spans) == 64
    assert cursor == 100


def test_merge_accepts_tuples_from_pipe_protocol(tracer):
    tracer.merge([("kernel", 1.0, 0.5, {"worker": 3})])
    (span,) = tracer.drain()
    assert isinstance(span, Span)
    assert span.attrs["worker"] == 3


def test_span_records_even_when_body_raises(tracer):
    with pytest.raises(ValueError):
        with tracer.span("kernel"):
            raise ValueError("boom")
    assert tracer.count == 1


def test_enable_is_idempotent_and_clear_resets(tracer):
    tracer.record("kernel", 0.0, 0.1, {})
    tracer.enable(capacity=64)  # re-enable keeps existing spans
    assert tracer.count == 1
    tracer.disable()
    assert not tracer.is_enabled()
    tracer.record("kernel", 0.0, 0.1, {})  # ignored while disabled
    assert tracer.count == 1
    tracer.clear()
    assert tracer.count == 0


def test_concurrent_recording_is_threadsafe(tracer):
    def worker():
        for _ in range(500):
            tracer.record("kernel", 0.0, 0.001, {})

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert tracer.count == 2000


def test_stage_summary_aggregates_per_name():
    spans = [
        Span("kernel", 0.0, 0.2, {}),
        Span("kernel", 1.0, 0.4, {}),
        Span("transfer", 0.0, 0.1, {}),
    ]
    summary = stage_summary(spans)
    assert summary["kernel"]["count"] == 2
    assert summary["kernel"]["total_s"] == pytest.approx(0.6)
    assert summary["kernel"]["mean_s"] == pytest.approx(0.3)
    assert summary["transfer"]["max_s"] == pytest.approx(0.1)


def test_canonical_stage_names_are_stable():
    assert STAGES == ("pre_process", "kernel", "transfer", "post_process")
