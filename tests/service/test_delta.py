"""Delta-store semantics vs a freshly consolidated reference engine.

The acceptance bar for the live-update path: for ANY interleaving of
subscribes and unsubscribes over ANY frozen starting index, the served
answer (frozen result + delta overlay) must be bit-identical to the
answer of an engine consolidated from scratch over the final multiset
of associations.  Hypothesis drives the interleavings.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bloom.hashing import TagHasher
from repro.core.config import TagMatchConfig
from repro.core.engine import TagMatch
from repro.service.delta import DeltaStore, apply_delta

CONFIG = TagMatchConfig(max_partition_size=8, num_gpus=1, batch_timeout_s=None)
HASHER = TagHasher(
    width=CONFIG.width, num_hashes=CONFIG.num_hashes, seed=CONFIG.seed
)

tag_names = st.integers(0, 11).map(lambda i: f"t{i}")
tag_sets = st.sets(tag_names, min_size=1, max_size=4).map(lambda s: tuple(sorted(s)))
assoc = st.tuples(tag_sets, st.integers(1, 6))


def _encode(tags) -> np.ndarray:
    return np.array(HASHER.encode_set(tags), dtype=np.uint64)


def _fresh_engine(associations) -> TagMatch:
    engine = TagMatch(CONFIG)
    for tags, key in associations:
        engine.add_set(tags, key=key)
    engine.consolidate()
    return engine


def _oracle_results(associations, query_blocks, unique):
    """Answer queries with an engine consolidated from scratch."""
    if not associations:
        return [np.empty(0, dtype=np.int64) for _ in range(len(query_blocks))]
    with _fresh_engine(associations) as engine:
        return list(engine.match_stream(query_blocks, unique=unique).results)


def _served_results(frozen_engine, delta, query_blocks, unique):
    run = frozen_engine.match_stream(query_blocks, unique=False)
    return apply_delta(
        run.results, query_blocks, delta.view(), [unique] * len(query_blocks)
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    initial=st.lists(assoc, min_size=1, max_size=8),
    ops=st.lists(
        st.tuples(st.sampled_from(["sub", "unsub"]), assoc), max_size=12
    ),
    queries=st.lists(tag_sets, min_size=1, max_size=4),
    unique=st.booleans(),
)
def test_delta_overlay_matches_fresh_engine(initial, ops, queries, unique):
    frozen = _fresh_engine(initial)
    try:
        delta = DeltaStore(HASHER.num_blocks)
        delta.rebase(frozen.database.blocks, frozen.database.keys)
        reference = list(initial)
        for op, (tags, key) in ops:
            if op == "sub":
                delta.subscribe(_encode(tags), key)
                reference.append((tags, key))
            else:
                removed = delta.unsubscribe(_encode(tags), key)
                assert removed == ((tags, key) in reference)
                if removed:
                    reference.remove((tags, key))
        query_blocks = np.vstack([_encode(q) for q in queries])
        served = _served_results(frozen, delta, query_blocks, unique)
        expected = _oracle_results(reference, query_blocks, unique)
        for got, want in zip(served, expected):
            assert np.array_equal(np.sort(got), np.sort(want))
    finally:
        frozen.close()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    initial=st.lists(assoc, min_size=1, max_size=6),
    before=st.lists(st.tuples(st.sampled_from(["sub", "unsub"]), assoc), max_size=6),
    during=st.lists(st.tuples(st.sampled_from(["sub", "unsub"]), assoc), max_size=6),
    queries=st.lists(tag_sets, min_size=1, max_size=3),
)
def test_fold_protocol_preserves_answers(initial, before, during, queries):
    """Mutations racing a fold must survive the swap unchanged."""
    frozen = _fresh_engine(initial)
    engines = [frozen]
    try:
        delta = DeltaStore(HASHER.num_blocks)
        delta.rebase(frozen.database.blocks, frozen.database.keys)
        reference = list(initial)

        def apply(op, tags, key):
            if op == "sub":
                delta.subscribe(_encode(tags), key)
                reference.append((tags, key))
            elif delta.unsubscribe(_encode(tags), key):
                reference.remove((tags, key))

        for op, (tags, key) in before:
            apply(op, tags, key)
        captured = delta.mark_fold()
        for op, (tags, key) in during:
            apply(op, tags, key)
        # Rebuild exactly as MatchServer._rebuild does, from the captured view.
        blocks = (
            np.vstack([frozen.database.blocks, captured.add_blocks])
            if captured.add_keys.size
            else frozen.database.blocks
        )
        keys = (
            np.concatenate([frozen.database.keys, captured.add_keys])
            if captured.add_keys.size
            else frozen.database.keys
        )
        rebuilt = TagMatch(CONFIG)
        engines.append(rebuilt)
        if len(blocks):
            rebuilt.add_signatures(blocks, keys)
        for row, key in zip(captured.tomb_blocks, captured.tomb_keys):
            rebuilt.remove_signature(row, int(key))
        rebuilt.consolidate()
        delta.complete_fold(rebuilt.database.blocks, rebuilt.database.keys)

        query_blocks = np.vstack([_encode(q) for q in queries])
        served = _served_results(rebuilt, delta, query_blocks, unique=False)
        expected = _oracle_results(reference, query_blocks, unique=False)
        for got, want in zip(served, expected):
            assert np.array_equal(np.sort(got), np.sort(want))
    finally:
        for engine in engines:
            engine.close()


def test_unsubscribe_prefers_live_delta_add():
    frozen = _fresh_engine([(("a", "b"), 1)])
    try:
        delta = DeltaStore(HASHER.num_blocks)
        delta.rebase(frozen.database.blocks, frozen.database.keys)
        row = _encode(("a", "b"))
        delta.subscribe(row, 1)
        assert delta.unsubscribe(row, 1)  # deletes the delta add
        view = delta.view()
        assert view.add_keys.size == 0 and view.tomb_keys.size == 0
        assert delta.unsubscribe(row, 1)  # tombstones the frozen copy
        assert delta.view().tomb_keys.size == 1
        assert not delta.unsubscribe(row, 1)  # nothing left to remove
    finally:
        frozen.close()


def test_double_fold_is_rejected():
    frozen = _fresh_engine([(("a",), 1)])
    try:
        delta = DeltaStore(HASHER.num_blocks)
        delta.rebase(frozen.database.blocks, frozen.database.keys)
        delta.mark_fold()
        with pytest.raises(RuntimeError):
            delta.mark_fold()
        delta.abort_fold()
        delta.mark_fold()  # released
    finally:
        frozen.close()
