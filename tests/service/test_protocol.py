"""Wire-protocol framing: round-trips, caps, and EOF behaviour."""

import asyncio

import pytest

from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    read_frame,
)


def _reader_with(data: bytes, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


def test_encode_decode_round_trip():
    message = {"id": 3, "verb": "pub", "tags": ["a", "b"], "unique": False}
    frame = encode_frame(message)
    length = int.from_bytes(frame[:4], "big")
    assert length == len(frame) - 4
    assert decode_frame(frame[4:]) == message


def test_decode_rejects_non_object():
    with pytest.raises(ProtocolError):
        decode_frame(b"[1, 2, 3]")
    with pytest.raises(ProtocolError):
        decode_frame(b"\xff\xfe not json")


def test_read_frame_round_trip():
    async def run():
        first = encode_frame({"id": 0, "verb": "ping"})
        second = encode_frame({"id": 1, "verb": "stats"})
        reader = _reader_with(first + second)
        assert await read_frame(reader) == {"id": 0, "verb": "ping"}
        assert await read_frame(reader) == {"id": 1, "verb": "stats"}
        assert await read_frame(reader) is None  # clean EOF

    asyncio.run(run())


def test_read_frame_clean_eof_is_none():
    async def run():
        assert await read_frame(_reader_with(b"")) is None

    asyncio.run(run())


def test_read_frame_mid_header_is_error():
    async def run():
        with pytest.raises(ProtocolError):
            await read_frame(_reader_with(b"\x00\x00"))

    asyncio.run(run())


def test_read_frame_mid_body_is_error():
    async def run():
        frame = encode_frame({"id": 0, "verb": "ping"})
        with pytest.raises(ProtocolError):
            await read_frame(_reader_with(frame[:-1]))

    asyncio.run(run())


def test_read_frame_enforces_cap():
    async def run():
        huge = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            await read_frame(_reader_with(huge, eof=False))
        small_cap = encode_frame({"id": 0, "verb": "ping", "pad": "x" * 64})
        with pytest.raises(ProtocolError):
            await read_frame(_reader_with(small_cap), max_bytes=16)

    asyncio.run(run())
