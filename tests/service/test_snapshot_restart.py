"""Snapshot → serve → live deltas → restart: no association lost.

The durability acceptance test: a server started from a snapshot,
mutated live, and shut down with ``snapshot_path`` must restart into
exactly the state a freshly consolidated engine over the final
association multiset would have — including with the process backend.
"""

import asyncio

import numpy as np
import pytest

from repro.core.config import ServiceConfig, TagMatchConfig
from repro.core.engine import TagMatch
from repro.service.protocol import ServiceClient
from repro.service.server import MatchServer

INITIAL = [
    (("news", "sports"), 1),
    (("news", "sports"), 1),
    (("news",), 2),
    (("cats", "memes"), 3),
]
QUERIES = [
    ["news", "sports", "cats"],
    ["news"],
    ["cats", "memes"],
    ["absent"],
]


def _engine_config(backend: str) -> TagMatchConfig:
    return TagMatchConfig(
        max_partition_size=8,
        num_gpus=1,
        batch_timeout_s=None,
        backend=backend,
        backend_workers=2 if backend == "process" else None,
    )


def _build(associations, backend: str) -> TagMatch:
    engine = TagMatch(_engine_config(backend))
    for tags, key in associations:
        engine.add_set(tags, key=key)
    engine.consolidate()
    return engine


def _service_config() -> ServiceConfig:
    return ServiceConfig(
        port=0,
        batch_deadline_s=0.005,
        min_deadline_s=0.001,
        max_deadline_s=0.05,
        reconsolidate_threshold=0,
    )


async def _mutate(client: ServiceClient, reference: list) -> None:
    """Live updates applied both to the server and the reference multiset."""
    await client.subscribe(["cats"], key=9)
    reference.append((("cats",), 9))
    await client.subscribe(["news", "finance"], key=10)
    reference.append((("finance", "news"), 10))
    assert await client.unsubscribe(["news", "sports"], key=1)  # tombstone
    reference.remove((("news", "sports"), 1))
    assert await client.unsubscribe(["cats"], key=9)  # delete live add
    reference.remove((("cats",), 9))
    assert not await client.unsubscribe(["no", "such"], key=99)


async def _query_all(client: ServiceClient) -> list:
    return [sorted((await client.publish(q))[0]) for q in QUERIES]


@pytest.mark.parametrize("backend", ["inline", "process"])
def test_snapshot_serve_mutate_restart_round_trip(backend, tmp_path):
    first = tmp_path / "first.npz"
    final = tmp_path / "final.npz"

    async def serve_and_mutate():
        engine = TagMatch.load(str(first))
        server = MatchServer(engine, _service_config(), snapshot_path=str(final))
        await server.start()
        reference = list(INITIAL)
        async with await ServiceClient.connect("127.0.0.1", server.port) as client:
            await _mutate(client, reference)
            live = await _query_all(client)
        # Shutdown folds the delta and saves the final snapshot.
        await server.shutdown()
        return reference, live

    async def serve_from_restart():
        engine = TagMatch.load(str(final))
        assert engine.epoch >= 1
        server = MatchServer(engine, _service_config())
        await server.start()
        async with await ServiceClient.connect("127.0.0.1", server.port) as client:
            restarted = await _query_all(client)
        await server.shutdown()
        return restarted

    builder = _build(INITIAL, backend)
    builder.save(str(first))
    builder.close()

    reference, live = asyncio.run(serve_and_mutate())
    restarted = asyncio.run(serve_from_restart())

    with _build(reference, backend) as fresh:
        expected = [
            sorted(
                fresh.match(
                    set(q)
                ).tolist()
            )
            for q in QUERIES
        ]
    assert live == expected
    assert restarted == expected


def test_final_snapshot_equals_fresh_engine_database(tmp_path):
    """The folded snapshot's association table is the reference multiset."""
    first = tmp_path / "first.npz"
    final = tmp_path / "final.npz"
    builder = _build(INITIAL, "inline")
    builder.save(str(first))
    builder.close()

    async def run():
        engine = TagMatch.load(str(first))
        server = MatchServer(engine, _service_config(), snapshot_path=str(final))
        await server.start()
        reference = list(INITIAL)
        async with await ServiceClient.connect("127.0.0.1", server.port) as client:
            await _mutate(client, reference)
        await server.shutdown()
        return reference

    reference = asyncio.run(run())
    restored = TagMatch.load(str(final))
    try:
        with _build(reference, "inline") as fresh:
            got = sorted(
                zip(
                    (r.tobytes() for r in restored.database.blocks),
                    restored.database.keys.tolist(),
                )
            )
            want = sorted(
                zip(
                    (r.tobytes() for r in fresh.database.blocks),
                    fresh.database.keys.tolist(),
                )
            )
            assert got == want
            q = np.array(
                [restored.hasher.encode_set(["news", "sports", "cats"])],
                dtype=np.uint64,
            )
            a = restored.match_stream(q, unique=False).results[0]
            b = fresh.match_stream(q, unique=False).results[0]
            assert np.array_equal(np.sort(a), np.sort(b))
    finally:
        restored.close()
