"""Duplicate-query memoization at the serving layer.

The memo may only cache frozen-index results; the live delta overlay is
applied per request on top.  These tests pin that contract: a memo-on
server answers every publish identically to a memo-off server across
subscribe/unsubscribe churn, hits accumulate on repeated signatures, and
a reconsolidation (epoch bump) invalidates without explicit flushes.
"""

import asyncio

from repro.core.config import ServiceConfig, TagMatchConfig
from repro.core.engine import TagMatch
from repro.service.protocol import ServiceClient
from repro.service.server import MatchServer

ASSOCIATIONS = [(("a", "b"), 1), (("a", "b"), 1), (("b", "c"), 2), (("d",), 3)]


def _engine(query_memo_size: int) -> TagMatch:
    engine = TagMatch(
        TagMatchConfig(
            max_partition_size=8,
            num_gpus=1,
            batch_timeout_s=None,
            query_memo_size=query_memo_size,
        )
    )
    for tags, key in ASSOCIATIONS:
        engine.add_set(tags, key=key)
    engine.consolidate()
    return engine


async def _serve(query_memo_size: int, **overrides):
    defaults = dict(
        port=0,
        batch_deadline_s=0.005,
        min_deadline_s=0.001,
        max_deadline_s=0.05,
        reconsolidate_threshold=0,
    )
    defaults.update(overrides)
    server = MatchServer(_engine(query_memo_size), ServiceConfig(**defaults))
    await server.start()
    client = await ServiceClient.connect("127.0.0.1", server.port)
    return server, client


def test_memo_on_matches_memo_off_through_delta_churn():
    async def run():
        on_server, on = await _serve(query_memo_size=64)
        off_server, off = await _serve(query_memo_size=0)
        try:
            publishes = [["a", "b"], ["b", "c"], ["d"], ["a", "b"], ["z"]]

            async def both(coro_factory):
                return await asyncio.gather(coro_factory(on), coro_factory(off))

            async def check_all():
                for tags in publishes:
                    (k1, _), (k2, _) = await both(lambda c, t=tags: c.publish(t))
                    assert sorted(k1) == sorted(k2), tags
                    (k1, _), (k2, _) = await both(
                        lambda c, t=tags: c.publish(t, unique=True)
                    )
                    assert sorted(k1) == sorted(k2), tags

            await check_all()  # cold: everything misses + fills
            await check_all()  # warm: pure memo hits must still agree

            # Delta churn: the memo holds frozen results, the overlay must
            # still reflect every live add/remove.
            await both(lambda c: c.subscribe(["a"], key=7))
            await check_all()
            await both(lambda c: c.unsubscribe(["a", "b"], key=1))
            await check_all()
            await both(lambda c: c.unsubscribe(["a"], key=7))
            await check_all()

            stats = await on.stats()
            assert stats["memo"] is not None
            assert stats["memo"]["hits"] > 0
            assert stats["memo"]["size"] > 0
            off_stats = await off.stats()
            assert off_stats["memo"] is None
        finally:
            await on.close()
            await off.close()
            await on_server.shutdown()
            await off_server.shutdown()

    asyncio.run(run())


def test_repeated_signature_hits_accumulate():
    async def run():
        server, client = await _serve(query_memo_size=64)
        try:
            for _ in range(5):
                keys, _ = await client.publish(["a", "b"])
                assert sorted(keys) == [1, 1]
            stats = (await client.stats())["memo"]
            assert stats["hits"] >= 4
            assert stats["misses"] >= 1
        finally:
            await client.close()
            await server.shutdown()

    asyncio.run(run())


def test_reconsolidation_invalidates_memo_by_epoch():
    async def run():
        server, client = await _serve(query_memo_size=64)
        try:
            keys, epoch0 = await client.publish(["a", "b"])
            assert sorted(keys) == [1, 1]
            await client.subscribe(["a", "b"], key=9)
            keys, _ = await client.publish(["a", "b"])
            assert sorted(keys) == [1, 1, 9]

            # Folding the delta bumps the epoch; the stale frozen entry
            # for this signature must not resurface.
            epoch1 = await client.reconsolidate()
            assert epoch1 > epoch0
            for _ in range(2):  # miss-then-hit against the new epoch
                keys, epoch = await client.publish(["a", "b"])
                assert sorted(keys) == [1, 1, 9]
                assert epoch == epoch1
        finally:
            await client.close()
            await server.shutdown()

    asyncio.run(run())
