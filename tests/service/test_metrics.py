"""ServiceMetrics: windowed qps (PR 5 regression), stages, registry sync."""

import pytest

from repro.obs.trace import STAGES, Span
from repro.service.metrics import ServiceMetrics


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def snap(metrics, **over):
    defaults = dict(
        epoch=1, delta_size=0, inflight=0, deadline_s=0.01, connections=0
    )
    defaults.update(over)
    return metrics.snapshot(**defaults)


# ----------------------------------------------------------------------
# Regression (PR 5): qps must not decay with idle uptime
# ----------------------------------------------------------------------
def test_qps_survives_idle_periods():
    clock = FakeClock()
    m = ServiceMetrics(rate_window_s=10.0, clock=clock)
    clock.advance(3600.0)  # an hour of idle before any traffic
    for _ in range(50):
        m.record_publish(0.002)
        clock.advance(0.1)
    stats = snap(m)
    # The windowed rate sees 50 publishes over 5s; the seed's lifetime
    # average reported ~0.014/s after the idle hour.
    assert stats["qps"] == pytest.approx(5.0, rel=0.3)
    assert stats["lifetime_qps"] < 0.1


def test_qps_decays_to_zero_after_traffic_stops():
    clock = FakeClock()
    m = ServiceMetrics(rate_window_s=5.0, clock=clock)
    for _ in range(10):
        m.record_publish(0.001)
    assert snap(m)["qps"] > 0.0
    clock.advance(60.0)
    assert snap(m)["qps"] == 0.0
    assert snap(m)["publishes"] == 10  # the counter itself never decays


# ----------------------------------------------------------------------
# Latency histogram replaces the reservoir
# ----------------------------------------------------------------------
def test_latency_percentiles_come_from_histogram():
    m = ServiceMetrics()
    for _ in range(99):
        m.record_publish(0.002)
    m.record_publish(1.9)
    lat = snap(m)["latency"]
    assert 1.0 <= lat["p50_ms"] <= 2.5
    assert lat["p99_ms"] >= lat["p90_ms"] >= lat["p50_ms"]
    assert lat["max_ms"] == pytest.approx(1900.0)


# ----------------------------------------------------------------------
# Stage histograms from ingested spans
# ----------------------------------------------------------------------
def test_snapshot_always_exposes_the_four_canonical_stages():
    stages = snap(ServiceMetrics())["stages"]
    for name in STAGES:
        assert stages[name]["count"] == 0


def test_ingest_spans_populates_stage_histograms():
    m = ServiceMetrics()
    m.ingest_spans(
        [
            Span("kernel", 0.0, 0.004, {}),
            Span("kernel", 0.0, 0.006, {}),
            Span("transfer", 0.0, 0.001, {}),
            Span("stream_op", 0.0, 0.002, {}),  # non-canonical: auto-added
        ]
    )
    stages = snap(m)["stages"]
    assert stages["kernel"]["count"] == 2
    assert stages["kernel"]["total_s"] == pytest.approx(0.010)
    assert stages["kernel"]["p99_ms"] > 0.0
    assert stages["transfer"]["count"] == 1
    assert stages["stream_op"]["count"] == 1


# ----------------------------------------------------------------------
# Registry mirror: stats verb and Prometheus can never disagree
# ----------------------------------------------------------------------
def test_registry_mirrors_attribute_counters():
    m = ServiceMetrics()
    m.subscribes += 3
    m.overloads += 1
    m.record_batch(10, "timeout")
    m.record_publish(0.001)
    reg = m.registry.snapshot()
    assert reg["repro_subscribes_total"] == 3
    assert reg["repro_overloads_total"] == 1
    assert reg["repro_batches_total"] == 1
    assert reg["repro_publishes_total"] == 1
    assert reg["repro_flushes_total"]["reason=timeout"] == 1
    # Render twice: the delta-sync must not double count.
    assert m.registry.snapshot()["repro_subscribes_total"] == 3


def test_snapshot_keeps_seed_keys_and_adds_device_section():
    m = ServiceMetrics()
    stats = snap(m, device={"0": {"kernel_s": 0.0, "launches": 4}}, memo=None)
    for key in (
        "uptime_s",
        "qps",
        "publishes",
        "overloads",
        "batches",
        "batch_occupancy",
        "flush_reasons",
        "latency",
        "epoch",
        "delta_size",
        "reconsolidations",
        "inflight",
        "connections",
        "memo",
    ):
        assert key in stats
    assert stats["device"]["0"]["launches"] == 4
