"""Observability acceptance: stats v2, trace verb, Prometheus endpoint.

The acceptance criterion for the PR: a running ``repro serve`` exposes
per-stage latency histograms (pre-process, kernel, transfer,
post-process) both through the ``stats`` verb and through the metrics
endpoint — and the memoized publish path keeps working now that cached
arrays are frozen.
"""

import asyncio
import urllib.request

from repro.core.config import ServiceConfig, TagMatchConfig
from repro.obs import trace
from repro.obs.trace import STAGES
from repro.service.protocol import ServiceClient
from repro.service.server import MatchServer

ASSOCIATIONS = [(("a", "b"), 1), (("b", "c"), 2), (("d",), 3)]


def _engine(query_memo_size: int = 0):
    from repro.core.engine import TagMatch

    engine = TagMatch(
        TagMatchConfig(
            max_partition_size=8,
            num_gpus=1,
            batch_timeout_s=None,
            query_memo_size=query_memo_size,
        )
    )
    for tags, key in ASSOCIATIONS:
        engine.add_set(tags, key=key)
    engine.consolidate()
    return engine


async def _serve(query_memo_size: int = 0, **overrides):
    defaults = dict(
        port=0,
        batch_deadline_s=0.005,
        min_deadline_s=0.001,
        max_deadline_s=0.05,
        reconsolidate_threshold=0,
    )
    defaults.update(overrides)
    server = MatchServer(_engine(query_memo_size), ServiceConfig(**defaults))
    await server.start()
    client = await ServiceClient.connect("127.0.0.1", server.port)
    return server, client


def test_stats_exposes_per_stage_latency_histograms():
    async def run():
        server, client = await _serve()
        try:
            for _ in range(4):
                await client.publish(["a", "b"])
            stats = await client.stats()
            stages = stats["stages"]
            for name in STAGES:
                assert name in stages, f"missing stage {name}"
            for name in ("pre_process", "kernel", "transfer", "post_process"):
                assert stages[name]["count"] > 0, f"no spans for {name}"
                assert stages[name]["p99_ms"] >= stages[name]["p50_ms"] >= 0.0
            # Device clocks ride along, with integral launch counts.
            dev = stats["device"]["0"]
            assert isinstance(dev["launches"], int)
            assert dev["launches"] > 0
            assert stats["qps"] > 0.0
        finally:
            await client.close()
            await server.shutdown()

    asyncio.run(run())


def test_trace_verb_returns_stage_summary():
    async def run():
        server, client = await _serve()
        try:
            await client.publish(["a", "b"])
            summary = await client.trace(limit=512)
            assert summary["enabled"] is True
            assert summary["span_count"] > 0
            assert summary["window"] > 0
            kernel = summary["stages"]["kernel"]
            assert kernel["count"] >= 1
            assert kernel["total_s"] > 0.0
            assert "p50_ms" in kernel  # percentile columns merged in
        finally:
            await client.close()
            await server.shutdown()

    asyncio.run(run())


def test_metrics_endpoint_serves_prometheus_exposition():
    async def run():
        server, client = await _serve(metrics_port=0)
        try:
            for _ in range(3):
                await client.publish(["b", "c"])
            assert server.metrics_port is not None
            url = f"http://127.0.0.1:{server.metrics_port}/metrics"
            body = await asyncio.to_thread(
                lambda: urllib.request.urlopen(url, timeout=5).read().decode()
            )
            assert "# TYPE repro_stage_seconds histogram" in body
            for name in STAGES:
                assert f'repro_stage_seconds_count{{stage="{name}"}}' in body
            assert "repro_publishes_total 3" in body
            assert "repro_publish_latency_seconds_count 3" in body
            assert 'repro_device_launches{device="0"}' in body
        finally:
            await client.close()
            await server.shutdown()

    asyncio.run(run())


def test_metrics_endpoint_disabled_by_default():
    async def run():
        server, client = await _serve()
        try:
            assert server.metrics_port is None
        finally:
            await client.close()
            await server.shutdown()

    asyncio.run(run())


def test_trace_disabled_server_still_answers():
    async def run():
        # The tracer is process-global: scrub state left by earlier
        # tests so cursor-0 ingestion cannot see their spans.
        trace.disable()
        trace.clear()
        server, client = await _serve(trace=False)
        try:
            await client.publish(["a", "b"])
            stats = await client.stats()
            assert stats["stages"]["kernel"]["count"] == 0
            summary = await client.trace()
            assert summary["enabled"] is False
        finally:
            await client.close()
            await server.shutdown()

    asyncio.run(run())


def test_memoized_publishes_survive_frozen_cache_and_overlay():
    """Regression companion to the QueryMemo writeable=False fix: the
    serving path (memo hit -> delta overlay -> reply) must keep working
    with frozen cached arrays, across live subscribes."""

    async def run():
        server, client = await _serve(query_memo_size=64)
        try:
            first, _ = await client.publish(["a", "b"])
            assert sorted(first) == [1]
            # Hit the memo repeatedly; overlay a live subscribe on top.
            await client.subscribe(["a"], key=9)
            for _ in range(3):
                keys, _ = await client.publish(["a", "b"])
                assert sorted(keys) == [1, 9]
            keys, _ = await client.publish(["a", "b"], unique=True)
            assert sorted(keys) == [1, 9]
            stats = await client.stats()
            assert stats["memo"]["hits"] >= 3
        finally:
            await client.close()
            await server.shutdown()

    asyncio.run(run())
