"""The AIMD ingress-deadline controller state machine.

Covers every transition of :class:`AdaptiveDeadline.observe` — full,
busy timeout, starved timeout, shutdown — plus the min/max clamps and
the PR 5 regression: non-steady-state flushes must not adapt.
"""

import asyncio

import numpy as np
import pytest

from repro.service.batcher import AdaptiveDeadline, IngressBatcher


def make(initial=0.010, lo=0.001, hi=0.100):
    return AdaptiveDeadline(initial, lo, hi)


# ----------------------------------------------------------------------
# Steady-state transitions
# ----------------------------------------------------------------------
def test_full_flush_shrinks_multiplicatively():
    d = make()
    d.observe("full", occupancy=64, batch_size=64)
    assert d.current_s == pytest.approx(0.010 * 0.95)


def test_busy_timeout_grows_multiplicatively():
    d = make()
    # Occupancy >= 50% of the batch: a slightly longer wait would fill.
    d.observe("timeout", occupancy=32, batch_size=64)
    assert d.current_s == pytest.approx(0.010 * 1.25)


def test_starved_timeout_shrinks():
    d = make()
    # Mostly-empty timeout flush: traffic too light for batching to pay.
    d.observe("timeout", occupancy=3, batch_size=64)
    assert d.current_s == pytest.approx(0.010 * 0.8)


def test_busy_fraction_boundary_is_inclusive():
    d = make()
    d.observe("timeout", occupancy=int(64 * AdaptiveDeadline.BUSY_FRACTION), batch_size=64)
    assert d.current_s > 0.010  # exactly at the fraction counts as busy


def test_full_flush_clamps_at_min():
    d = make(initial=0.001, lo=0.001, hi=0.100)
    d.observe("full", occupancy=64, batch_size=64)
    assert d.current_s == 0.001


def test_busy_timeout_clamps_at_max():
    d = make(initial=0.100, lo=0.001, hi=0.100)
    d.observe("timeout", occupancy=64, batch_size=64)
    assert d.current_s == 0.100


def test_converges_into_bounds_under_sustained_pressure():
    d = make()
    for _ in range(200):
        d.observe("timeout", occupancy=60, batch_size=64)
    assert d.current_s == d.max_s
    for _ in range(200):
        d.observe("timeout", occupancy=1, batch_size=64)
    assert d.current_s == d.min_s


# ----------------------------------------------------------------------
# Regression (PR 5): non-steady-state reasons must not adapt
# ----------------------------------------------------------------------
def test_shutdown_flush_does_not_mutate_deadline():
    d = make()
    # A shutdown drain is almost always nearly empty; before the fix it
    # took the "starved" branch and shrank the deadline by 0.8x.
    d.observe("shutdown", occupancy=1, batch_size=64)
    assert d.current_s == 0.010
    d.observe("shutdown", occupancy=64, batch_size=64)
    assert d.current_s == 0.010


def test_unknown_reasons_are_ignored_too():
    d = make()
    d.observe("drain", occupancy=0, batch_size=64)
    assert d.current_s == 0.010


def test_steady_reasons_set_is_full_and_timeout():
    assert AdaptiveDeadline.STEADY_REASONS == frozenset({"full", "timeout"})


def test_flush_now_leaves_deadline_unchanged_end_to_end():
    """IngressBatcher.flush_now("shutdown") reaches observe() — and the
    controller must come out untouched (the original bug's call path)."""

    async def run() -> float:
        flushed = []
        deadline = make()
        batcher = IngressBatcher(
            lambda batch, reason: flushed.append(reason), 64, 3, deadline
        )
        batcher.add(np.zeros(3, dtype=np.uint64), ticket=object())
        batcher.flush_now("shutdown")
        batcher.close()
        assert flushed == ["shutdown"]
        return deadline.current_s

    assert asyncio.run(run()) == 0.010
