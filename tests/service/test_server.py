"""End-to-end server tests: live updates, overload, epoch swaps, drain.

No pytest-asyncio in the image, so each test drives its own loop with
``asyncio.run``.
"""

import asyncio

import pytest

from repro.core.config import ServiceConfig, TagMatchConfig
from repro.core.engine import TagMatch
from repro.service.protocol import OverloadedError, ServiceClient
from repro.service.server import MatchServer

ENGINE_CONFIG = TagMatchConfig(max_partition_size=8, num_gpus=1, batch_timeout_s=None)


def _engine(associations) -> TagMatch:
    engine = TagMatch(ENGINE_CONFIG)
    for tags, key in associations:
        engine.add_set(tags, key=key)
    engine.consolidate()
    return engine


def _config(**overrides) -> ServiceConfig:
    defaults = dict(
        port=0,
        batch_deadline_s=0.005,
        min_deadline_s=0.001,
        max_deadline_s=0.05,
        reconsolidate_threshold=0,  # no background rebuilds unless asked
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def _serve(associations, **overrides):
    server = MatchServer(_engine(associations), _config(**overrides))
    await server.start()
    client = await ServiceClient.connect("127.0.0.1", server.port)
    return server, client


def test_live_subscribe_unsubscribe_and_multiset_semantics():
    async def run():
        server, client = await _serve(
            [(("a", "b"), 1), (("a", "b"), 1), (("c",), 2)]
        )
        try:
            keys, epoch0 = await client.publish(["a", "b"])
            assert sorted(keys) == [1, 1]

            await client.subscribe(["a"], key=7)
            keys, _ = await client.publish(["a", "b"])
            assert sorted(keys) == [1, 1, 7]
            keys, _ = await client.publish(["a", "b"], unique=True)
            assert sorted(keys) == [1, 7]

            # Tombstones remove exactly one instance each.
            assert await client.unsubscribe(["a", "b"], key=1)
            keys, _ = await client.publish(["a", "b"])
            assert sorted(keys) == [1, 7]
            assert await client.unsubscribe(["a", "b"], key=1)
            keys, _ = await client.publish(["a", "b"])
            assert sorted(keys) == [7]
            assert not await client.unsubscribe(["a", "b"], key=1)

            # Removing a live delta add deletes it outright.
            assert await client.unsubscribe(["a"], key=7)
            keys, _ = await client.publish(["a", "b"])
            assert keys == []

            stats = await client.stats()
            assert stats["delta_size"] == 2  # two tombstones remain
            assert stats["publishes"] >= 5

            # Reconsolidate folds the delta and bumps the epoch.
            epoch1 = await client.reconsolidate()
            assert epoch1 > epoch0
            stats = await client.stats()
            assert stats["delta_size"] == 0
            assert stats["reconsolidations"] == 1
            keys, epoch = await client.publish(["a", "b"])
            assert keys == [] and epoch == epoch1
            keys, _ = await client.publish(["c"])
            assert keys == [2]
        finally:
            await client.close()
            await server.shutdown()

    asyncio.run(run())


def test_overload_rejects_with_bounded_latency():
    async def run():
        # max_inflight=2 and a long deadline: the first publishes sit in
        # the batcher, the rest must bounce immediately.
        server, client = await _serve(
            [(("a",), 1)],
            max_inflight=2,
            ingress_batch_size=256,
            batch_deadline_s=0.1,
            max_deadline_s=0.2,
        )
        try:
            outcomes = await asyncio.gather(
                *(client.publish(["a"]) for _ in range(12)),
                return_exceptions=True,
            )
            rejected = [o for o in outcomes if isinstance(o, OverloadedError)]
            served = [o for o in outcomes if isinstance(o, tuple)]
            assert len(rejected) >= 1
            assert len(served) >= 2
            assert len(rejected) + len(served) == 12
            for keys, _ in served:
                assert keys == [1]
            stats = await client.stats()
            assert stats["overloads"] == len(rejected)
        finally:
            await client.close()
            await server.shutdown()

    asyncio.run(run())


def test_reconsolidation_swaps_epochs_under_load():
    async def run():
        server, client = await _serve(
            [(("a",), 1)],
            reconsolidate_threshold=4,
            reconsolidate_interval_s=0.01,
        )
        try:
            epochs = set()
            key = 100
            for round_no in range(6):
                for _ in range(4):
                    key += 1
                    await client.subscribe(["a", f"r{round_no}"], key=key)
                keys, epoch = await client.publish(["a"])
                epochs.add(epoch)
                assert 1 in keys  # frozen association never disappears
                await asyncio.sleep(0.03)
            stats = await client.stats()
            assert stats["reconsolidations"] >= 1
            assert len(epochs) >= 2  # a swap was observed mid-stream
            assert stats["errors"] == 0
            # Every subscription survived the swaps.
            keys, _ = await client.publish(["a"] + [f"r{i}" for i in range(6)])
            assert len(keys) == 1 + 24
        finally:
            await client.close()
            await server.shutdown()

    asyncio.run(run())


def test_graceful_shutdown_drains_pending_publishes():
    async def run():
        server, client = await _serve(
            [(("a",), 1)],
            ingress_batch_size=256,
            batch_deadline_s=0.1,
            max_deadline_s=0.2,
        )
        try:
            pending = asyncio.get_running_loop().create_task(client.publish(["a"]))
            await asyncio.sleep(0.01)  # let it land in the batcher
            await server.shutdown()
            keys, _ = await pending
            assert keys == [1]
        finally:
            await client.close()

    asyncio.run(run())


def test_unconsolidated_engine_is_rejected():
    engine = TagMatch(ENGINE_CONFIG)
    engine.add_set({"a"}, key=1)
    with pytest.raises(Exception):
        MatchServer(engine, _config())
    engine.close()


def test_bad_requests_get_error_replies_not_disconnects():
    async def run():
        server, client = await _serve([(("a",), 1)])
        try:
            reply = await client.request("pub", tags=[])
            assert reply["ok"] is False and "bad_request" in reply["error"]
            reply = await client.request("frobnicate")
            assert reply["ok"] is False
            reply = await client.request("sub", tags=["x"])  # missing key
            assert reply["ok"] is False
            await client.ping()  # connection still healthy
        finally:
            await client.close()
            await server.shutdown()

    asyncio.run(run())
