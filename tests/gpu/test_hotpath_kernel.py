"""Kernel hot-path units: prefix edge cases, fused launches, arenas.

Covers the Algorithm 4 ``block_prefixes`` corner shapes (partitions
smaller than one thread block, all-identical rows, trailing partial
blocks, single-row partitions), the fused multi-partition launch path of
``subset_match_kernel``, the :class:`ResultArena` reuse contract, and
the early-exit / preallocated-output variants of ``containment_matrix``.
"""

import numpy as np
import pytest

from repro.bloom.array import SignatureArray
from repro.bloom.filter import BloomSignature
from repro.bloom.ops import containment_matrix
from repro.errors import ValidationError
from repro.gpu.kernels import (
    ResultArena,
    block_prefixes,
    block_prefixes_ranges,
    subset_match_kernel,
    uniform_block_offsets,
)

WIDTH = 192


def sorted_blocks(rows):
    arr = SignatureArray.from_signatures(
        [BloomSignature.from_bits(r, width=WIDTH) for r in rows]
    )
    return arr.blocks[arr.lex_sort_order()]


class TestBlockPrefixEdges:
    def test_partition_smaller_than_one_thread_block(self):
        sets = sorted_blocks([[1, 2], [1, 3], [2, 5]])
        prefixes = block_prefixes(sets, thread_block_size=64)
        assert prefixes.shape == (1, sets.shape[1])
        # The single block's prefix is contained in every row.
        assert not np.any(prefixes[0] & ~sets)

    def test_all_identical_rows_prefix_is_the_row(self):
        row = sorted_blocks([[3, 7, 11]])[0]
        sets = np.tile(row, (10, 1))
        prefixes = block_prefixes(sets, thread_block_size=4)
        # first == last in every block, so the full row is the prefix.
        for tb in range(prefixes.shape[0]):
            np.testing.assert_array_equal(prefixes[tb], row)

    def test_trailing_partial_block(self):
        sets = sorted_blocks([[i, i + 1] for i in range(7)])
        prefixes = block_prefixes(sets, thread_block_size=3)
        assert prefixes.shape[0] == 3  # 3 + 3 + 1 rows
        # The trailing single-row block's prefix is that row itself.
        np.testing.assert_array_equal(prefixes[2], sets[6])

    def test_single_row_partitions(self):
        sets = sorted_blocks([[5, 9]])
        prefixes = block_prefixes(sets, thread_block_size=1024)
        np.testing.assert_array_equal(prefixes, sets)

    def test_every_block_size_one(self):
        sets = sorted_blocks([[1], [2], [3], [4]])
        prefixes = block_prefixes(sets, thread_block_size=1)
        np.testing.assert_array_equal(prefixes, sets)

    def test_ranges_respect_member_boundaries(self):
        """Explicit ranges never mix rows across members, so per-member
        prefixes equal the uniform prefixes of each member alone."""
        a = sorted_blocks([[1, 2], [1, 5], [2, 9]])
        b = sorted_blocks([[7], [7, 8]])
        cat = np.vstack([a, b])
        bounds = np.array([0, 2, 3, 5], dtype=np.int64)  # a split 2+1, b whole
        got = block_prefixes_ranges(cat, bounds[:-1], bounds[1:])
        expected = np.vstack([block_prefixes(a, 2), block_prefixes(b, 2)])
        np.testing.assert_array_equal(got, expected)

    def test_uniform_offsets(self):
        np.testing.assert_array_equal(
            uniform_block_offsets(7, 3), np.array([0, 3, 6, 7])
        )
        np.testing.assert_array_equal(uniform_block_offsets(0, 3), np.array([0]))


class TestFusedKernel:
    def _members(self):
        a = sorted_blocks([[1, 2], [1, 3], [2, 4], [3, 9]])
        b = sorted_blocks([[5], [5, 6], [6, 7]])
        c = sorted_blocks([[8, 9]])
        return [a, b, c]

    def test_fused_launch_equals_member_launches(self):
        members = self._members()
        queries = sorted_blocks(
            [[1, 2, 3, 4], [5, 6, 7], [8, 9], [1, 5, 8], list(range(10))]
        )
        tbs = 2
        cat = np.vstack(members)
        ids = np.arange(cat.shape[0], dtype=np.uint32)
        bounds = [0]
        mob = []
        commons = np.zeros((len(members), cat.shape[1]), dtype=np.uint64)
        base = 0
        for local, m in enumerate(members):
            offs = uniform_block_offsets(m.shape[0], tbs)
            bounds.extend((offs[1:] + base).tolist())
            mob.extend([local] * (offs.shape[0] - 1))
            commons[local] = np.bitwise_and.reduce(m, axis=0)
            base += m.shape[0]
        fused = subset_match_kernel(
            cat,
            ids,
            queries,
            thread_block_size=tbs,
            block_offsets=np.array(bounds, dtype=np.int64),
            member_commons=commons,
            member_of_block=np.array(mob, dtype=np.int64),
            coarse=True,
        )
        got = set(zip(fused.query_ids.tolist(), fused.set_ids.tolist()))

        expected = set()
        offset = 0
        for m in members:
            mids = np.arange(offset, offset + m.shape[0], dtype=np.uint32)
            res = subset_match_kernel(m, mids, queries, thread_block_size=tbs)
            expected |= set(zip(res.query_ids.tolist(), res.set_ids.tolist()))
            offset += m.shape[0]
        assert got == expected
        assert fused.stats.num_members == 3

    def test_coarse_filter_does_not_change_results(self):
        sets = sorted_blocks([[1, 2], [1, 3], [4, 5], [4, 6], [7]])
        ids = np.arange(sets.shape[0], dtype=np.uint32)
        queries = sorted_blocks([[1, 2, 3], [4, 5, 6], [9]])
        plain = subset_match_kernel(sets, ids, queries, thread_block_size=2)
        coarse = subset_match_kernel(
            sets, ids, queries, thread_block_size=2, coarse=True
        )
        assert set(zip(plain.query_ids.tolist(), plain.set_ids.tolist())) == set(
            zip(coarse.query_ids.tolist(), coarse.set_ids.tolist())
        )

    def test_bad_block_offsets_rejected(self):
        sets = sorted_blocks([[1], [2]])
        ids = np.arange(2, dtype=np.uint32)
        queries = sorted_blocks([[1]])
        with pytest.raises(ValidationError):
            subset_match_kernel(
                sets, ids, queries, block_offsets=np.array([0, 1], dtype=np.int64)
            )


class TestResultArena:
    def test_reuse_across_invocations(self):
        sets = sorted_blocks([[1, 2], [1, 3], [2, 4]])
        ids = np.arange(3, dtype=np.uint32)
        queries = sorted_blocks([[1, 2, 3, 4]])
        arena = ResultArena(capacity_pairs=1)
        first = subset_match_kernel(sets, ids, queries, arena=arena)
        pairs_first = set(zip(first.query_ids.tolist(), first.set_ids.tolist()))
        second = subset_match_kernel(sets, ids, queries, arena=arena)
        pairs_second = set(zip(second.query_ids.tolist(), second.set_ids.tolist()))
        assert pairs_first == pairs_second
        assert arena.invocations == 2

    def test_growth_preserves_earlier_pairs(self):
        arena = ResultArena(capacity_pairs=2)
        arena.begin()
        q1, s1 = arena.append_slots(2)
        q1[:] = [1, 2]
        s1[:] = [10, 20]
        q2, s2 = arena.append_slots(3)  # forces growth
        q2[:] = [3, 4, 5]
        s2[:] = [30, 40, 50]
        np.testing.assert_array_equal(arena.query_ids(), [1, 2, 3, 4, 5])
        np.testing.assert_array_equal(arena.set_ids(), [10, 20, 30, 40, 50])
        assert arena.capacity_pairs >= 5

    def test_pack_matches_fresh_allocation(self):
        from repro.gpu.packing import pack_results

        arena = ResultArena(capacity_pairs=4)
        # Two rounds with different counts: the second (smaller) round
        # must not leak stale padding bytes from the first.
        for n in (7, 3):
            arena.begin()
            q, s = arena.append_slots(n)
            q[:] = np.arange(n, dtype=np.uint8)
            s[:] = np.arange(n, dtype=np.uint32) * 3
            fresh = pack_results(
                np.arange(n, dtype=np.uint8), np.arange(n, dtype=np.uint32) * 3
            )
            np.testing.assert_array_equal(arena.pack(), fresh)

    def test_bool_scratch_reshaped_per_request(self):
        arena = ResultArena()
        a = arena.bools("survive", 2, 3)
        assert a.shape == (2, 3)
        b = arena.bools("survive", 3, 4)
        assert b.shape == (3, 4)


class TestContainmentMatrixOut:
    def test_out_buffer_result_identical(self):
        subs = sorted_blocks([[1], [2], [1, 2]])
        supers = sorted_blocks([[1, 2], [3]])
        fresh = containment_matrix(subs, supers)
        out = np.empty((5, 4), dtype=bool)  # oversized on purpose
        view = containment_matrix(subs, supers, out=out)
        assert view.shape == fresh.shape
        np.testing.assert_array_equal(view, fresh)

    def test_undersized_out_rejected(self):
        subs = sorted_blocks([[1], [2]])
        supers = sorted_blocks([[1, 2]])
        with pytest.raises(ValidationError):
            containment_matrix(subs, supers, out=np.empty((1, 1), dtype=bool))

    def test_all_mismatch_early_exit_still_correct(self):
        # Every pair mismatches in word 0, exercising the saturation
        # early-exit before later words are touched.
        subs = sorted_blocks([[0], [1]])
        supers = sorted_blocks([[50], [51]])
        got = containment_matrix(subs, supers)
        assert not got.any()
