"""Tests for the §3.3.2 even/odd double-buffered transfer protocol."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.gpu.device import Device
from repro.gpu.doublebuffer import LENGTH_SLOT_BYTES, DoubleBufferedResults
from repro.gpu.packing import pack_results, packed_size, unpack_results


@pytest.fixture
def device():
    dev = Device(num_streams=1)
    yield dev
    dev.close()


def make_payload(n, offset=0):
    q = np.arange(n, dtype=np.uint8)
    s = (np.arange(n, dtype=np.uint32) + offset) * 10
    return pack_results(q, s), q, s


class TestProtocol:
    def test_first_push_delivers_nothing(self, device):
        db = DoubleBufferedResults(device, capacity_pairs=16)
        packed, _, _ = make_payload(3)
        assert db.push(packed, 3, meta="batch-0") is None
        assert db.pending_cycles == 1

    def test_second_push_delivers_first(self, device):
        db = DoubleBufferedResults(device, capacity_pairs=16)
        p0, q0, s0 = make_payload(3)
        p1, _, _ = make_payload(5, offset=100)
        db.push(p0, 3, meta="batch-0")
        delivered = db.push(p1, 5, meta="batch-1")
        assert delivered is not None
        assert delivered.meta == "batch-0"
        q, s = unpack_results(delivered.packed, delivered.num_pairs)
        np.testing.assert_array_equal(q, q0)
        np.testing.assert_array_equal(s, s0)

    def test_flush_delivers_trailing_cycle(self, device):
        db = DoubleBufferedResults(device, capacity_pairs=16)
        p0, _, _ = make_payload(2)
        p1, q1, s1 = make_payload(4, offset=7)
        db.push(p0, 2, meta=0)
        db.push(p1, 4, meta=1)
        last = db.flush()
        assert last.meta == 1
        q, s = unpack_results(last.packed, last.num_pairs)
        np.testing.assert_array_equal(q, q1)
        np.testing.assert_array_equal(s, s1)
        assert db.flush() is None

    def test_long_alternation_preserves_all_cycles(self, device):
        db = DoubleBufferedResults(device, capacity_pairs=64)
        delivered = []
        for cycle in range(20):
            packed, _, _ = make_payload(cycle % 7, offset=cycle)
            out = db.push(packed, cycle % 7, meta=cycle)
            if out is not None:
                delivered.append(out)
        tail = db.flush()
        delivered.append(tail)
        assert [d.meta for d in delivered] == list(range(20))
        for d in delivered:
            q, s = unpack_results(d.packed, d.num_pairs)
            _, eq, es = make_payload(d.meta % 7, offset=d.meta)
            np.testing.assert_array_equal(q, eq)
            np.testing.assert_array_equal(s, es)

    def test_empty_cycles_flow_through(self, device):
        db = DoubleBufferedResults(device, capacity_pairs=8)
        empty, _, _ = make_payload(0)
        db.push(empty, 0, meta="a")
        out = db.push(empty, 0, meta="b")
        assert out.meta == "a"
        assert out.num_pairs == 0


class TestTransferAccounting:
    def test_transfer_size_is_minimal(self, device):
        """Each copy-out moves header + exactly the known result size."""
        db = DoubleBufferedResults(device, capacity_pairs=1024)
        before = device.transfers.dtoh_bytes
        p0, _, _ = make_payload(3)
        p1, _, _ = make_payload(10)
        db.push(p0, 3, meta=0)
        db.push(p1, 10, meta=1)  # delivers cycle 0
        moved = device.transfers.dtoh_bytes - before
        assert moved == LENGTH_SLOT_BYTES + packed_size(3)

    def test_one_copy_op_per_delivered_cycle(self, device):
        db = DoubleBufferedResults(device, capacity_pairs=16)
        p, _, _ = make_payload(1)
        db.push(p, 1, meta=0)
        db.push(p, 1, meta=1)
        db.flush()
        assert device.transfers.dtoh_ops == 2


class TestCapacity:
    def test_grows_on_demand(self, device):
        db = DoubleBufferedResults(device, capacity_pairs=2)
        packed, q, s = make_payload(50)
        db.push(packed, 50, meta=0)
        out = db.flush()
        uq, us = unpack_results(out.packed, 50)
        np.testing.assert_array_equal(uq, q)
        np.testing.assert_array_equal(us, s)
        assert db.capacity_pairs >= 50

    def test_mismatched_payload_rejected(self, device):
        db = DoubleBufferedResults(device, capacity_pairs=8)
        packed, _, _ = make_payload(3)
        with pytest.raises(DeviceError):
            db.push(packed, 4, meta=0)

    def test_zero_capacity_rejected(self, device):
        with pytest.raises(DeviceError):
            DoubleBufferedResults(device, capacity_pairs=0)

    def test_free_releases_device_memory(self, device):
        db = DoubleBufferedResults(device, capacity_pairs=8)
        assert device.ledger.allocated_bytes > 0
        db.free()
        assert device.ledger.allocated_bytes == 0
