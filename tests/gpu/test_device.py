"""Tests for the simulated device: memory, transfers, stream pool."""

import numpy as np
import pytest

from repro.errors import CapacityError, DeviceError, StreamError
from repro.gpu.device import Device
from repro.gpu.memory import MemoryLedger
from repro.gpu.timing import CostModel


@pytest.fixture
def device():
    dev = Device(device_id=0, memory_capacity=1 << 20, num_streams=2)
    yield dev
    dev.close()


class TestMemoryLedger:
    def test_tracks_allocations(self):
        ledger = MemoryLedger(100)
        ledger.allocate(60)
        assert ledger.allocated_bytes == 60
        ledger.free(10)
        assert ledger.allocated_bytes == 50

    def test_capacity_enforced(self):
        ledger = MemoryLedger(100)
        ledger.allocate(80)
        with pytest.raises(CapacityError):
            ledger.allocate(30)

    def test_peak_tracked(self):
        ledger = MemoryLedger(100)
        ledger.allocate(70)
        ledger.free(50)
        ledger.allocate(10)
        assert ledger.peak_bytes == 70

    def test_over_free_rejected(self):
        ledger = MemoryLedger(100)
        ledger.allocate(10)
        with pytest.raises(DeviceError):
            ledger.free(20)

    def test_zero_capacity_rejected(self):
        with pytest.raises(DeviceError):
            MemoryLedger(0)


class TestBuffers:
    def test_htod_copies_and_charges(self, device):
        host = np.arange(16, dtype=np.uint64)
        buf = device.htod(host)
        np.testing.assert_array_equal(buf.array(), host)
        assert device.ledger.allocated_bytes == host.nbytes
        assert device.transfers.htod_bytes == host.nbytes
        assert device.clock.transfer_s > 0

    def test_htod_is_a_copy(self, device):
        host = np.zeros(4, dtype=np.uint64)
        buf = device.htod(host)
        host[0] = 99
        assert buf.array()[0] == 0

    def test_dtoh_roundtrip(self, device):
        host = np.arange(8, dtype=np.uint32)
        buf = device.htod(host)
        back = device.dtoh(buf)
        np.testing.assert_array_equal(back, host)
        assert device.transfers.dtoh_bytes == host.nbytes

    def test_dtoh_partial_accounting(self, device):
        buf = device.htod(np.zeros(100, dtype=np.uint8))
        device.dtoh(buf, nbytes=10)
        assert device.transfers.dtoh_bytes == 10

    def test_free_returns_memory(self, device):
        buf = device.htod(np.zeros(100, dtype=np.uint8))
        buf.free()
        assert device.ledger.allocated_bytes == 0

    def test_use_after_free(self, device):
        buf = device.htod(np.zeros(4, dtype=np.uint8))
        buf.free()
        with pytest.raises(DeviceError):
            buf.array()
        with pytest.raises(DeviceError):
            buf.free()

    def test_capacity_error_on_oversized(self, device):
        with pytest.raises(CapacityError):
            device.allocate((1 << 21,), np.uint8)

    def test_foreign_buffer_rejected(self, device):
        with Device(device_id=1, num_streams=1) as other:
            buf = other.htod(np.zeros(4, dtype=np.uint8))
            with pytest.raises(DeviceError):
                device.dtoh(buf)


class TestStreamPool:
    def test_acquire_release_cycle(self, device):
        s1 = device.acquire_stream()
        s2 = device.acquire_stream()
        assert s1 is not s2
        with pytest.raises(StreamError):
            device.acquire_stream(timeout=0.05)
        device.release_stream(s1)
        s3 = device.acquire_stream()
        assert s3 is s1

    def test_context_manager_releases(self, device):
        with device.stream() as s:
            assert s is not None
        # Both streams available again.
        a = device.acquire_stream(timeout=0.1)
        b = device.acquire_stream(timeout=0.1)
        device.release_stream(a)
        device.release_stream(b)

    def test_release_foreign_stream_rejected(self, device):
        with Device(device_id=1, num_streams=1) as other:
            foreign = other.acquire_stream()
            with pytest.raises(StreamError):
                device.release_stream(foreign)

    def test_closed_device_rejects_work(self):
        dev = Device(num_streams=1)
        dev.close()
        with pytest.raises(DeviceError):
            dev.htod(np.zeros(1, dtype=np.uint8))
        with pytest.raises(DeviceError):
            dev.acquire_stream()

    def test_num_streams_validated(self):
        with pytest.raises(DeviceError):
            Device(num_streams=0)


class TestCostModel:
    def test_transfer_time_is_latency_plus_bandwidth(self):
        cost = CostModel(pcie_latency_s=1e-5, pcie_bandwidth_bytes_per_s=1e9)
        assert cost.transfer_time(1_000_000) == pytest.approx(1e-5 + 1e-3)

    def test_kernel_time_folds_threads_onto_lanes(self):
        cost = CostModel(parallel_lanes=100, subset_check_s=1e-9, kernel_launch_overhead_s=0)
        one_wave = cost.kernel_time(threads=100, checks_per_thread=10)
        two_waves = cost.kernel_time(threads=101, checks_per_thread=10)
        assert two_waves == pytest.approx(2 * one_wave)

    def test_launch_overhead_floor(self):
        cost = CostModel()
        assert cost.kernel_time(1, 0) >= cost.kernel_launch_overhead_s

    def test_clock_accumulates(self, device):
        device.clock.add_kernel(0.5)
        device.clock.add_atomic(0.25)
        assert device.clock.total_s == pytest.approx(0.75 + device.clock.transfer_s)

    def test_clock_reset(self, device):
        device.clock.add_kernel(1.0)
        device.clock.reset()
        assert device.clock.total_s == 0.0

    def test_clock_snapshot(self, device):
        device.clock.add_random_access(0.125)
        snap = device.clock.snapshot()
        assert snap["random_access_s"] == 0.125

    def test_clock_snapshot_launches_stay_integral(self, device):
        # Regression (PR 5): snapshot() used to coerce the launch count
        # to float, so JSON consumers saw "launches": 3.0 and the bench
        # schema check could not distinguish counters from durations.
        device.clock.add_kernel(1e-6)
        device.clock.add_kernel(1e-6)
        snap = device.clock.snapshot()
        assert snap["launches"] == 2
        assert isinstance(snap["launches"], int)
        assert not isinstance(snap["launches"], bool)
