"""Tests for the SPMD subset-match kernel (Algorithms 3–4)."""

import numpy as np
import pytest

from repro.bloom.array import SignatureArray
from repro.bloom.filter import BloomSignature
from repro.errors import ValidationError
from repro.gpu.kernels import block_prefixes, subset_match_kernel
from repro.gpu.timing import CostModel, DeviceClock


def sorted_sets(bit_lists, width=192):
    arr = SignatureArray.from_signatures(
        [BloomSignature.from_bits(bits, width=width) for bits in bit_lists]
    )
    order = arr.lex_sort_order()
    return arr.blocks[order], order


def brute_force(sets, queries):
    pairs = set()
    for si, srow in enumerate(sets):
        for qi, qrow in enumerate(queries):
            if not np.any(srow & ~qrow):
                pairs.add((qi, si))
    return pairs


def kernel_pairs(result):
    return set(zip(result.query_ids.tolist(), result.set_ids.tolist()))


class TestBlockPrefixes:
    def test_identical_rows_share_full_prefix(self):
        sets, _ = sorted_sets([[1, 5], [1, 5], [1, 5]])
        prefixes = block_prefixes(sets, thread_block_size=4)
        np.testing.assert_array_equal(prefixes[0], sets[0])

    def test_prefix_is_subset_of_all_rows_in_block(self):
        rng = np.random.default_rng(7)
        bit_lists = [sorted(rng.choice(192, size=12, replace=False)) for _ in range(64)]
        sets, _ = sorted_sets(bit_lists)
        for bs in (4, 16, 64):
            prefixes = block_prefixes(sets, thread_block_size=bs)
            for tb in range(prefixes.shape[0]):
                chunk = sets[tb * bs : (tb + 1) * bs]
                assert not np.any(prefixes[tb] & ~chunk), (
                    "prefix must be contained in every set of its block"
                )

    def test_prefix_stops_at_first_differing_bit(self):
        # 1100... and 1010...: common prefix is just bit 0.
        a = BloomSignature.from_bits([0, 2], width=192)
        b = BloomSignature.from_bits([0, 1], width=192)
        sets = SignatureArray.from_signatures(sorted([a, b])).blocks
        prefixes = block_prefixes(sets, thread_block_size=2)
        expected = BloomSignature.from_bits([0], width=192)
        assert tuple(int(w) for w in prefixes[0]) == expected.blocks

    def test_disjoint_leading_bit_gives_empty_prefix(self):
        a = BloomSignature.from_bits([0], width=192)
        b = BloomSignature.from_bits([1], width=192)
        sets = SignatureArray.from_signatures(sorted([a, b])).blocks
        prefixes = block_prefixes(sets, thread_block_size=2)
        assert not prefixes[0].any()

    def test_tail_block_uses_actual_last_row(self):
        sets, _ = sorted_sets([[3], [3], [3, 7], [5]])
        prefixes = block_prefixes(sets, thread_block_size=3)
        assert prefixes.shape[0] == 2
        # Last block has a single row: prefix is the row itself.
        np.testing.assert_array_equal(prefixes[1], sets[3])


class TestKernelCorrectness:
    def test_matches_brute_force_small(self):
        sets, _ = sorted_sets([[1], [1, 2], [3], [1, 2, 3], [9]])
        queries, _ = sorted_sets([[1, 2], [3, 9], [1, 2, 3, 4]])
        ids = np.arange(len(sets), dtype=np.uint32)
        result = subset_match_kernel(sets, ids, queries, thread_block_size=2)
        assert kernel_pairs(result) == brute_force(sets, queries)

    @pytest.mark.parametrize("prefilter", [True, False])
    @pytest.mark.parametrize("block_size", [1, 3, 64, 1024])
    def test_matches_brute_force_random(self, prefilter, block_size):
        rng = np.random.default_rng(42)
        bit_lists = [
            sorted(rng.choice(64, size=rng.integers(1, 8), replace=False))
            for _ in range(200)
        ]
        sets, _ = sorted_sets(bit_lists)
        queries = np.stack(
            [
                SignatureArray.from_signatures(
                    [BloomSignature.from_bits(
                        rng.choice(64, size=12, replace=False), width=192
                    )]
                ).blocks[0]
                for _ in range(20)
            ]
        )
        ids = np.arange(len(sets), dtype=np.uint32)
        result = subset_match_kernel(
            sets, ids, queries, thread_block_size=block_size, prefilter=prefilter
        )
        assert kernel_pairs(result) == brute_force(sets, queries)

    def test_global_set_ids_reported(self):
        sets, _ = sorted_sets([[1], [2]])
        ids = np.array([100, 200], dtype=np.uint32)
        queries, _ = sorted_sets([[1, 2]])
        result = subset_match_kernel(sets, ids, queries)
        assert set(result.set_ids.tolist()) == {100, 200}

    def test_empty_partition(self):
        result = subset_match_kernel(
            np.empty((0, 3), dtype=np.uint64),
            np.empty(0, dtype=np.uint32),
            np.zeros((2, 3), dtype=np.uint64),
        )
        assert result.query_ids.size == 0
        assert result.stats.num_threads == 0

    def test_empty_batch(self):
        sets, _ = sorted_sets([[1]])
        result = subset_match_kernel(
            sets, np.zeros(1, dtype=np.uint32), np.empty((0, 3), dtype=np.uint64)
        )
        assert result.set_ids.size == 0

    def test_batch_over_256_rejected(self):
        sets, _ = sorted_sets([[1]])
        with pytest.raises(ValidationError):
            subset_match_kernel(
                sets, np.zeros(1, dtype=np.uint32), np.zeros((257, 3), dtype=np.uint64)
            )

    def test_mismatched_ids_rejected(self):
        sets, _ = sorted_sets([[1], [2]])
        with pytest.raises(ValidationError):
            subset_match_kernel(sets, np.zeros(1, dtype=np.uint32), np.zeros((1, 3), np.uint64))


class TestPrefilterBehaviour:
    def test_prefilter_skips_unmatchable_blocks(self):
        # All sets share bit 0; a query without bit 0 must be filtered
        # from every thread block.
        sets, _ = sorted_sets([[0, i] for i in range(1, 40)])
        ids = np.arange(len(sets), dtype=np.uint32)
        query = SignatureArray.from_signatures(
            [BloomSignature.from_bits([5, 6, 7], width=192)]
        ).blocks
        result = subset_match_kernel(sets, ids, query, thread_block_size=8)
        assert result.stats.surviving_query_slots == 0
        assert result.query_ids.size == 0

    def test_prefilter_keeps_matching_queries(self):
        sets, _ = sorted_sets([[0, 1], [0, 2]])
        ids = np.arange(2, dtype=np.uint32)
        query = SignatureArray.from_signatures(
            [BloomSignature.from_bits([0, 1, 2], width=192)]
        ).blocks
        result = subset_match_kernel(sets, ids, query, thread_block_size=2)
        assert result.stats.surviving_query_slots == 1
        assert result.query_ids.size == 2

    def test_prefilter_never_changes_results(self):
        rng = np.random.default_rng(3)
        bit_lists = [
            sorted(rng.choice(48, size=rng.integers(1, 6), replace=False))
            for _ in range(300)
        ]
        sets, _ = sorted_sets(bit_lists)
        ids = np.arange(len(sets), dtype=np.uint32)
        queries = np.stack(
            [
                SignatureArray.from_signatures(
                    [BloomSignature.from_bits(
                        rng.choice(48, size=10, replace=False), width=192
                    )]
                ).blocks[0]
                for _ in range(10)
            ]
        )
        with_pf = subset_match_kernel(sets, ids, queries, thread_block_size=16)
        without = subset_match_kernel(
            sets, ids, queries, thread_block_size=16, prefilter=False
        )
        assert kernel_pairs(with_pf) == kernel_pairs(without)
        assert with_pf.stats.surviving_query_slots <= without.stats.surviving_query_slots

    def test_prefilter_ratio_stat(self):
        sets, _ = sorted_sets([[0, 1], [0, 2]])
        ids = np.arange(2, dtype=np.uint32)
        queries, _ = sorted_sets([[5]])
        result = subset_match_kernel(sets, ids, queries, thread_block_size=2)
        assert result.stats.prefilter_ratio == 1.0


class TestKernelAccounting:
    def test_simulated_time_charged_to_clock(self):
        sets, _ = sorted_sets([[1], [2], [3]])
        ids = np.arange(3, dtype=np.uint32)
        queries, _ = sorted_sets([[1, 2, 3]])
        clock = DeviceClock()
        result = subset_match_kernel(
            sets, ids, queries, cost_model=CostModel(), clock=clock
        )
        assert result.stats.simulated_time_s > 0
        assert clock.kernel_s == pytest.approx(result.stats.simulated_time_s)

    def test_no_cost_model_means_zero_simulated_time(self):
        sets, _ = sorted_sets([[1]])
        result = subset_match_kernel(sets, np.zeros(1, np.uint32), sets)
        assert result.stats.simulated_time_s == 0.0

    def test_pair_count_stat(self):
        sets, _ = sorted_sets([[1], [2]])
        queries, _ = sorted_sets([[1, 2]])
        result = subset_match_kernel(sets, np.arange(2, dtype=np.uint32), queries)
        assert result.stats.num_pairs == 2
