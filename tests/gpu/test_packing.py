"""Tests for the §3.3.1 packed result layout."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.gpu.packing import (
    GROUP,
    naive_aligned_size,
    pack_results,
    packed_size,
    unpack_results,
)


class TestPackedSize:
    def test_zero_pairs(self):
        assert packed_size(0) == 0

    def test_full_group(self):
        assert packed_size(4) == 20

    def test_two_full_groups(self):
        assert packed_size(8) == 40

    def test_partial_group_reserves_query_bytes(self):
        # 1 pair: 4 query-id bytes (3 wasted) + 4 set-id bytes.
        assert packed_size(1) == 8
        assert packed_size(2) == 12
        assert packed_size(3) == 16

    def test_worst_case_loss_is_three_bytes(self):
        """The paper: 'a worst-case total loss of only three bytes'."""
        for n in range(1, 100):
            ideal = n * 5  # 1 query byte + 4 set-id bytes per pair
            assert 0 <= packed_size(n) - ideal <= 3

    def test_saves_38_percent_vs_aligned(self):
        n = 10_000
        saving = 1 - packed_size(n) / naive_aligned_size(n)
        assert saving == pytest.approx(0.375, abs=0.01)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            packed_size(-1)
        with pytest.raises(ValidationError):
            naive_aligned_size(-1)


class TestRoundtrip:
    def test_empty(self):
        q, s = unpack_results(pack_results(np.array([], np.uint8), np.array([], np.uint32)), 0)
        assert q.size == 0 and s.size == 0

    def test_exact_group(self):
        q = np.array([1, 2, 3, 4], dtype=np.uint8)
        s = np.array([10, 20, 30, 40], dtype=np.uint32)
        packed = pack_results(q, s)
        q2, s2 = unpack_results(packed, 4)
        np.testing.assert_array_equal(q, q2)
        np.testing.assert_array_equal(s, s2)

    def test_group_byte_layout(self):
        q = np.array([1, 2, 3, 4], dtype=np.uint8)
        s = np.array([0x01020304, 0, 0, 0], dtype=np.uint32)
        packed = pack_results(q, s)
        # Four query bytes first ...
        np.testing.assert_array_equal(packed[:4], [1, 2, 3, 4])
        # ... then s1 little-endian.
        np.testing.assert_array_equal(packed[4:8], [0x04, 0x03, 0x02, 0x01])

    def test_large_set_ids_survive(self):
        q = np.zeros(5, dtype=np.uint8)
        s = np.array([2**32 - 1, 2**31, 7, 123456789, 0], dtype=np.uint32)
        q2, s2 = unpack_results(pack_results(q, s), 5)
        np.testing.assert_array_equal(s, s2)
        assert q2.dtype == np.uint8 and s2.dtype == np.uint32

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            pack_results(np.zeros(2, np.uint8), np.zeros(3, np.uint32))

    def test_undersized_buffer_rejected(self):
        packed = pack_results(np.zeros(4, np.uint8), np.zeros(4, np.uint32))
        with pytest.raises(ValidationError):
            unpack_results(packed, 8)


@given(
    pairs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=0, max_value=2**32 - 1),
        ),
        max_size=50,
    )
)
def test_roundtrip_property(pairs):
    q = np.array([p[0] for p in pairs], dtype=np.uint8)
    s = np.array([p[1] for p in pairs], dtype=np.uint32)
    packed = pack_results(q, s)
    assert packed.size == packed_size(len(pairs))
    q2, s2 = unpack_results(packed, len(pairs))
    np.testing.assert_array_equal(q, q2)
    np.testing.assert_array_equal(s, s2)


@given(n=st.integers(min_value=0, max_value=1000))
def test_packed_never_larger_than_aligned(n):
    assert packed_size(n) <= naive_aligned_size(n)
    if n >= GROUP:
        assert packed_size(n) < naive_aligned_size(n)
