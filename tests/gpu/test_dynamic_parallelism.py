"""Tests for the §4.5 GPU-only dynamic-parallelism design."""

import numpy as np
import pytest

from repro.bloom.array import SignatureArray
from repro.bloom.filter import BloomSignature
from repro.errors import ValidationError
from repro.gpu.device import Device
from repro.gpu.dynamic_parallelism import DevicePartition, DynamicParallelismMatcher


@pytest.fixture
def device():
    dev = Device(num_streams=1)
    yield dev
    dev.close()


def sig_blocks(bit_lists):
    arr = SignatureArray.from_signatures(
        [BloomSignature.from_bits(b, width=192) for b in bit_lists]
    )
    return arr.blocks


def make_partitions():
    """Two partitions: mask {0} and mask {1}."""
    p0_sets = sig_blocks(sorted([[0, 5], [0, 6]], key=lambda b: b))
    p1_sets = sig_blocks([[1, 7]])
    mask0 = sig_blocks([[0]])[0]
    mask1 = sig_blocks([[1]])[0]
    return [
        DevicePartition(mask=mask0, sets=p0_sets, ids=np.array([0, 1], np.uint32)),
        DevicePartition(mask=mask1, sets=p1_sets, ids=np.array([2], np.uint32)),
    ]


class TestCorrectness:
    def test_matches_across_partitions(self, device):
        matcher = DynamicParallelismMatcher(device, make_partitions())
        queries = sig_blocks([[0, 5], [1, 7], [0, 1, 5, 7], [9]])
        q_ids, s_ids, _ = matcher.match_batch(queries)
        pairs = set(zip(q_ids.tolist(), s_ids.tolist()))
        assert pairs == {(0, 0), (1, 2), (2, 0), (2, 2)}

    def test_brute_force_agreement(self, device):
        rng = np.random.default_rng(11)
        bit_lists = [
            sorted(rng.choice(32, size=rng.integers(1, 5), replace=False))
            for _ in range(60)
        ]
        all_sets = sig_blocks(bit_lists)
        # Split by bit 0 of block 0 into two "partitions" with empty masks.
        zero_mask = np.zeros(3, dtype=np.uint64)
        order = SignatureArray(all_sets).lex_sort_order()
        all_sets = all_sets[order]
        half = len(all_sets) // 2
        partitions = [
            DevicePartition(zero_mask, all_sets[:half], np.arange(half, dtype=np.uint32)),
            DevicePartition(
                zero_mask,
                all_sets[half:],
                np.arange(half, len(all_sets), dtype=np.uint32),
            ),
        ]
        matcher = DynamicParallelismMatcher(device, partitions)
        queries = sig_blocks(
            [sorted(rng.choice(32, size=10, replace=False)) for _ in range(8)]
        )
        q_ids, s_ids, _ = matcher.match_batch(queries)
        got = set(zip(q_ids.tolist(), s_ids.tolist()))
        expected = {
            (qi, si)
            for si, srow in enumerate(all_sets)
            for qi, qrow in enumerate(queries)
            if not np.any(srow & ~qrow)
        }
        assert got == expected

    def test_rejects_empty_partition_list(self, device):
        with pytest.raises(ValidationError):
            DynamicParallelismMatcher(device, [])

    def test_rejects_1d_queries(self, device):
        matcher = DynamicParallelismMatcher(device, make_partitions())
        with pytest.raises(ValidationError):
            matcher.match_batch(np.zeros(3, dtype=np.uint64))


class TestTimingModel:
    def test_selective_queries_cost_less(self, device):
        """§4.5: the design works well when most packets are filtered out
        in pre-process, poorly when many reach subset match."""
        matcher = DynamicParallelismMatcher(device, make_partitions())
        nonmatching = sig_blocks([[9, 10]] * 64)
        matching = sig_blocks([[0, 1, 5, 6, 7]] * 64)
        _, _, cheap = matcher.match_batch(nonmatching)
        _, _, expensive = matcher.match_batch(matching)
        assert expensive.total_s > cheap.total_s
        assert expensive.atomic_append_s > cheap.atomic_append_s
        assert expensive.random_access_s > cheap.random_access_s

    def test_clock_charged(self, device):
        matcher = DynamicParallelismMatcher(device, make_partitions())
        matcher.match_batch(sig_blocks([[0, 5]]))
        assert device.clock.total_s > 0

    def test_timing_components_sum(self, device):
        matcher = DynamicParallelismMatcher(device, make_partitions())
        _, _, t = matcher.match_batch(sig_blocks([[0, 5], [1, 7]]))
        assert t.total_s == pytest.approx(
            t.preprocess_kernel_s
            + t.atomic_append_s
            + t.random_access_s
            + t.child_kernels_s
            + t.result_transfer_s
        )

    def test_large_queue_splits_child_launches(self, device):
        """More than 256 queued queries for one partition must still work
        (child launches are split to respect 8-bit in-batch ids)."""
        partitions = make_partitions()
        matcher = DynamicParallelismMatcher(device, partitions)
        queries = sig_blocks([[0, 5]] * 300)
        q_ids, s_ids, _ = matcher.match_batch(queries)
        # every query matches set 0 exactly once
        assert (np.sort(np.unique(q_ids)) == np.arange(300)).all()
        assert set(s_ids.tolist()) == {0}
