"""Hypothesis properties for the subset-match kernel."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.array import SignatureArray
from repro.bloom.filter import BloomSignature
from repro.gpu.kernels import block_prefixes, subset_match_kernel

WIDTH = 192
bit_lists = st.lists(st.integers(0, 40), min_size=0, max_size=6)


def sorted_blocks(rows):
    arr = SignatureArray.from_signatures(
        [BloomSignature.from_bits(r, width=WIDTH) for r in rows]
    )
    return arr.blocks[arr.lex_sort_order()]


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(bit_lists, min_size=1, max_size=40),
    queries=st.lists(bit_lists, min_size=1, max_size=6),
    block_size=st.integers(1, 16),
    prefilter=st.booleans(),
)
def test_kernel_equals_brute_force(rows, queries, block_size, prefilter):
    sets = sorted_blocks(rows)
    qblocks = sorted_blocks(queries)  # order irrelevant for queries
    ids = np.arange(len(sets), dtype=np.uint32)
    result = subset_match_kernel(
        sets, ids, qblocks, thread_block_size=block_size, prefilter=prefilter
    )
    got = set(zip(result.query_ids.tolist(), result.set_ids.tolist()))
    expected = {
        (qi, si)
        for si in range(len(sets))
        for qi in range(len(qblocks))
        if not np.any(sets[si] & ~qblocks[qi])
    }
    assert got == expected


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(bit_lists, min_size=1, max_size=40),
    block_size=st.integers(1, 16),
)
def test_prefix_is_greatest_common_prefix(rows, block_size):
    """Each block prefix is contained in every row of its block, and the
    bit right after the prefix differs between first and last row (it is
    the *longest* common prefix, not just any)."""
    sets = sorted_blocks(rows)
    prefixes = block_prefixes(sets, block_size)
    n = sets.shape[0]
    for tb in range(prefixes.shape[0]):
        chunk = sets[tb * block_size : min((tb + 1) * block_size, n)]
        assert not np.any(prefixes[tb] & ~chunk)


@settings(max_examples=30, deadline=None)
@given(
    rows=st.lists(bit_lists, min_size=1, max_size=30),
    queries=st.lists(bit_lists, min_size=1, max_size=4),
)
def test_cached_prefixes_equal_inline_computation(rows, queries):
    """Passing precomputed prefixes (the tagset-table cache) must not
    change kernel output."""
    sets = sorted_blocks(rows)
    qblocks = sorted_blocks(queries)
    ids = np.arange(len(sets), dtype=np.uint32)
    inline = subset_match_kernel(sets, ids, qblocks, thread_block_size=4)
    cached = subset_match_kernel(
        sets, ids, qblocks, thread_block_size=4,
        prefixes=block_prefixes(sets, 4),
    )
    assert set(zip(inline.query_ids.tolist(), inline.set_ids.tolist())) == set(
        zip(cached.query_ids.tolist(), cached.set_ids.tolist())
    )


@settings(max_examples=30, deadline=None)
@given(rows=st.lists(bit_lists, min_size=1, max_size=30))
def test_surviving_slots_bounded(rows):
    sets = sorted_blocks(rows)
    ids = np.arange(len(sets), dtype=np.uint32)
    queries = sorted_blocks([[1, 2, 3]])
    result = subset_match_kernel(sets, ids, queries, thread_block_size=4)
    assert 0 <= result.stats.surviving_query_slots
    assert result.stats.surviving_query_slots <= result.stats.num_thread_blocks
