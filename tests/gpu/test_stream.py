"""Tests for FIFO streams and asynchronous ops."""

import threading
import time

import pytest

from repro.errors import StreamError
from repro.gpu.device import Device


@pytest.fixture
def device():
    dev = Device(num_streams=3)
    yield dev
    dev.close()


class TestFifoSemantics:
    def test_ops_run_in_order(self, device):
        """§3.3.2: operations within one stream execute in FIFO order."""
        stream = device.streams[0]
        order = []
        ops = [stream.enqueue(lambda i=i: order.append(i)) for i in range(50)]
        for op in ops:
            op.wait()
        assert order == list(range(50))

    def test_wait_returns_result(self, device):
        op = device.streams[0].enqueue(lambda: 41 + 1)
        assert op.wait() == 42

    def test_wait_reraises_device_error(self, device):
        def boom():
            raise RuntimeError("kernel fault")

        op = device.streams[0].enqueue(boom)
        with pytest.raises(RuntimeError, match="kernel fault"):
            op.wait()

    def test_error_does_not_kill_stream(self, device):
        stream = device.streams[0]
        stream.enqueue(lambda: 1 / 0)
        op = stream.enqueue(lambda: "alive")
        assert op.wait() == "alive"

    def test_done_flag(self, device):
        op = device.streams[0].enqueue(lambda: None)
        op.wait()
        assert op.done


class TestCrossStreamConcurrency:
    def test_streams_run_concurrently(self, device):
        """Ops in different streams may overlap (a blocked stream does
        not block its siblings)."""
        gate = threading.Event()
        slow = device.streams[0].enqueue(lambda: gate.wait(2.0))
        fast = device.streams[1].enqueue(lambda: "done")
        assert fast.wait(timeout=1.0) == "done"
        gate.set()
        slow.wait()

    def test_synchronize_waits_for_all_prior_ops(self, device):
        stream = device.streams[0]
        seen = []
        stream.enqueue(lambda: (time.sleep(0.05), seen.append(1)))
        stream.synchronize()
        assert seen == [1]

    def test_device_synchronize(self, device):
        seen = []
        for i, stream in enumerate(device.streams):
            stream.enqueue(lambda i=i: seen.append(i))
        device.synchronize()
        assert sorted(seen) == [0, 1, 2]


class TestLifecycle:
    def test_close_drains_pending(self, device):
        stream = device.streams[0]
        seen = []
        for i in range(10):
            stream.enqueue(lambda i=i: seen.append(i))
        stream.close()
        assert seen == list(range(10))

    def test_enqueue_after_close(self, device):
        stream = device.streams[0]
        stream.close()
        with pytest.raises(StreamError):
            stream.enqueue(lambda: None)

    def test_double_close_is_noop(self, device):
        stream = device.streams[0]
        stream.close()
        stream.close()
        assert stream.closed

    def test_wait_timeout(self, device):
        gate = threading.Event()
        blocked = device.streams[0].enqueue(lambda: gate.wait(5))
        late = device.streams[0].enqueue(lambda: None)
        with pytest.raises(StreamError, match="timed out"):
            late.wait(timeout=0.05)
        gate.set()
        blocked.wait()
