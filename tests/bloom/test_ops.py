"""Unit tests for the shared containment-matrix primitive."""

import numpy as np
import pytest

from repro.bloom.ops import containment_matrix
from repro.errors import ValidationError


def rows(*values):
    return np.array(values, dtype=np.uint64)


class TestContainmentMatrix:
    def test_basic(self):
        subs = rows([0b0011, 0, 0], [0b0100, 0, 0])
        supers = rows([0b0111, 0, 0], [0b0011, 0, 0])
        matrix = containment_matrix(subs, supers)
        assert matrix.tolist() == [[True, True], [True, False]]

    def test_zero_row_contained_everywhere(self):
        subs = rows([0, 0, 0])
        supers = rows([1, 2, 3], [0, 0, 0])
        assert containment_matrix(subs, supers).all()

    def test_multi_word_mismatch_detected(self):
        # mismatch only in the last word
        subs = rows([1, 1, 1])
        supers = rows([1, 1, 0])
        assert not containment_matrix(subs, supers)[0, 0]

    def test_empty_sides(self):
        empty = np.empty((0, 3), dtype=np.uint64)
        some = rows([1, 0, 0])
        assert containment_matrix(empty, some).shape == (0, 1)
        assert containment_matrix(some, empty).shape == (1, 0)

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            containment_matrix(np.zeros((2, 3), np.uint64), np.zeros((2, 2), np.uint64))
        with pytest.raises(ValidationError):
            containment_matrix(np.zeros(3, np.uint64), np.zeros((1, 3), np.uint64))

    def test_high_bit_handling(self):
        """Bit 63 of a word (sign bit of int64) must not confuse the check."""
        top = np.uint64(1) << np.uint64(63)
        subs = rows([top, 0, 0])
        supers = rows([top, 0, 0], [top >> np.uint64(1), 0, 0])
        matrix = containment_matrix(subs, supers)
        assert matrix.tolist() == [[True, False]]
