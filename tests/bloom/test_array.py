"""Unit tests for packed signature arrays."""

import numpy as np
import pytest

from repro.bloom.array import SignatureArray
from repro.bloom.filter import BloomSignature
from repro.bloom.hashing import TagHasher
from repro.errors import ValidationError


@pytest.fixture
def hasher():
    return TagHasher()


def sig_array(bit_lists, width=192):
    sigs = [BloomSignature.from_bits(bits, width=width) for bits in bit_lists]
    return SignatureArray.from_signatures(sigs)


class TestConstruction:
    def test_from_tag_sets(self, hasher):
        arr = SignatureArray.from_tag_sets([["a"], ["b", "c"]], hasher)
        assert len(arr) == 2
        assert arr.width == 192
        assert arr.num_blocks == 3

    def test_from_signatures_roundtrip(self, hasher):
        sigs = [BloomSignature.from_tags([t], hasher) for t in "abc"]
        arr = SignatureArray.from_signatures(sigs)
        assert arr.signatures() == sigs

    def test_from_signatures_rejects_empty(self):
        with pytest.raises(ValidationError):
            SignatureArray.from_signatures([])

    def test_from_signatures_rejects_mixed_width(self):
        with pytest.raises(ValidationError):
            SignatureArray.from_signatures(
                [BloomSignature.zero(192), BloomSignature.zero(128)]
            )

    def test_zeros(self):
        arr = SignatureArray.zeros(5, 192)
        assert len(arr) == 5
        assert not arr.blocks.any()

    def test_rejects_1d_blocks(self):
        with pytest.raises(ValidationError):
            SignatureArray(np.zeros(3, dtype=np.uint64))

    def test_nbytes(self):
        arr = SignatureArray.zeros(10, 192)
        assert arr.nbytes == 10 * 3 * 8


class TestSubsetOf:
    def test_matches_scalar_issubset(self, hasher):
        arr = SignatureArray.from_tag_sets(
            [["a"], ["a", "b"], ["c"], ["a", "b", "c"]], hasher
        )
        query = hasher.encode_set(["a", "b"])
        q = np.array(query, dtype=np.uint64)
        expected = [
            sig.issubset(BloomSignature(query, width=192))
            for sig in arr.signatures()
        ]
        assert arr.subset_of(q).tolist() == expected

    def test_zero_rows_match_any_query(self):
        arr = SignatureArray.zeros(3, 192)
        q = np.zeros(3, dtype=np.uint64)
        assert arr.subset_of(q).all()

    def test_block_count_mismatch(self):
        arr = SignatureArray.zeros(1, 192)
        with pytest.raises(ValidationError):
            arr.subset_of(np.zeros(2, dtype=np.uint64))

    def test_subset_of_each_matrix(self, hasher):
        rows = SignatureArray.from_tag_sets([["a"], ["b"]], hasher)
        queries = SignatureArray.from_tag_sets([["a", "x"], ["b", "y"]], hasher)
        matrix = rows.subset_of_each(queries)
        assert matrix.shape == (2, 2)
        assert matrix[0, 0] and matrix[1, 1]

    def test_subset_of_each_agrees_with_subset_of(self, hasher):
        rows = SignatureArray.from_tag_sets([["a"], ["a", "b"], ["c"]], hasher)
        queries = SignatureArray.from_tag_sets([["a", "b"], ["c", "d"]], hasher)
        matrix = rows.subset_of_each(queries)
        for j in range(2):
            np.testing.assert_array_equal(
                matrix[:, j], rows.subset_of(queries.blocks[j])
            )


class TestContains:
    def test_mask_containment(self):
        arr = sig_array([[1, 2, 3], [1, 2], [4]])
        mask = BloomSignature.from_bits([1, 2], width=192)
        got = arr.contains(np.array(mask.blocks, dtype=np.uint64))
        assert got.tolist() == [True, True, False]

    def test_zero_mask_contained_everywhere(self):
        arr = sig_array([[5], [99]])
        assert arr.contains(np.zeros(3, dtype=np.uint64)).all()


class TestOrderings:
    def test_lex_sort_matches_scalar_sort(self, hasher):
        arr = SignatureArray.from_tag_sets(
            [[t] for t in ["m", "a", "z", "k", "b"]], hasher
        )
        order = arr.lex_sort_order()
        sorted_sigs = [arr.row(i) for i in order]
        assert sorted_sigs == sorted(arr.signatures())

    def test_lex_sort_primary_key_is_block0(self):
        arr = sig_array([[70], [0]])  # bit 70 lives in block 1; bit 0 in block 0
        order = arr.lex_sort_order()
        # [70] has block0 == 0 so sorts before [0] whose block0 is huge.
        assert order.tolist() == [0, 1]


class TestBitStatistics:
    def test_leftmost_one_positions(self):
        arr = sig_array([[5, 100], [64], [191], []])
        np.testing.assert_array_equal(
            arr.leftmost_one_positions(), [5, 64, 191, 192]
        )

    def test_leftmost_matches_scalar(self, hasher):
        arr = SignatureArray.from_tag_sets([[t] for t in "abcdefg"], hasher)
        expected = [sig.leftmost_one() for sig in arr.signatures()]
        assert arr.leftmost_one_positions().tolist() == expected

    def test_popcounts(self):
        arr = sig_array([[1, 2, 3], [], [0, 191]])
        assert arr.popcounts().tolist() == [3, 0, 2]

    def test_bit_frequencies(self):
        arr = sig_array([[0, 5], [5], [5, 191]])
        freq = arr.bit_frequencies()
        assert freq[0] == 1
        assert freq[5] == 3
        assert freq[191] == 1
        assert freq.sum() == 5

    def test_bit_frequencies_empty_array(self):
        arr = SignatureArray.zeros(3, 192)[np.zeros(0, dtype=np.int64)]
        assert arr.bit_frequencies().sum() == 0


class TestUniqueAndTake:
    def test_unique_merges_duplicates(self):
        arr = sig_array([[1], [2], [1], [1]])
        uniq, inverse = arr.unique()
        assert len(uniq) == 2
        restored = uniq.blocks[inverse]
        np.testing.assert_array_equal(restored, arr.blocks)

    def test_take(self):
        arr = sig_array([[1], [2], [3]])
        sub = arr.take(np.array([2, 0]))
        assert sub.row(0) == arr.row(2)
        assert sub.row(1) == arr.row(0)

    def test_getitem_single_row_stays_2d(self):
        arr = sig_array([[1], [2]])
        assert len(arr[0]) == 1

    def test_getitem_boolean_mask(self):
        arr = sig_array([[1], [2], [3]])
        sub = arr[np.array([True, False, True])]
        assert len(sub) == 2

    def test_equality(self):
        a = sig_array([[1], [2]])
        b = sig_array([[1], [2]])
        c = sig_array([[1], [3]])
        assert a == b
        assert a != c
