"""Hypothesis property tests for the Bloom substrate.

These pin down the invariants the rest of the system leans on:
soundness of the subset direction, order agreement between scalar and
packed forms, and algebraic laws of the bit-vector operations.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.array import SignatureArray
from repro.bloom.filter import BloomSignature
from repro.bloom.hashing import TagHasher

_HASHER = TagHasher()

tags = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=12
)
tag_sets = st.sets(tags, min_size=1, max_size=10)
bit_lists = st.lists(st.integers(min_value=0, max_value=191), max_size=30)


@given(small=tag_sets, extra=tag_sets)
def test_set_subset_implies_signature_subset(small, extra):
    """S1 ⊆ S2 ⟹ B1 ⊆ B2 — the sound direction, with zero error."""
    big = small | extra
    b_small = BloomSignature.from_tags(small, _HASHER)
    b_big = BloomSignature.from_tags(big, _HASHER)
    assert b_small.issubset(b_big)


@given(ts=tag_sets)
def test_encoding_is_union_of_tag_masks(ts):
    sig = BloomSignature.from_tags(ts, _HASHER)
    union = BloomSignature.zero(192)
    for tag in ts:
        union = union | BloomSignature(_HASHER.tag_mask(tag), width=192)
    assert sig == union


@given(bits=bit_lists)
def test_from_bits_roundtrip(bits):
    sig = BloomSignature.from_bits(bits, width=192)
    assert set(sig.bits()) == set(bits)
    assert sig.popcount() == len(set(bits))


@given(a=bit_lists, b=bit_lists)
def test_subset_iff_or_is_identity(a, b):
    """A ⊆ B (bitwise) iff A | B == B."""
    sa = BloomSignature.from_bits(a, width=192)
    sb = BloomSignature.from_bits(b, width=192)
    assert sa.issubset(sb) == ((sa | sb) == sb)


@given(a=bit_lists, b=bit_lists, c=bit_lists)
def test_subset_is_transitive(a, b, c):
    sa = BloomSignature.from_bits(a, width=192)
    sab = sa | BloomSignature.from_bits(b, width=192)
    sabc = sab | BloomSignature.from_bits(c, width=192)
    assert sa.issubset(sab) and sab.issubset(sabc) and sa.issubset(sabc)


@given(rows=st.lists(bit_lists, min_size=1, max_size=20), q=bit_lists)
def test_array_subset_agrees_with_scalar(rows, q):
    sigs = [BloomSignature.from_bits(r, width=192) for r in rows]
    arr = SignatureArray.from_signatures(sigs)
    query = BloomSignature.from_bits(q, width=192)
    qv = np.array(query.blocks, dtype=np.uint64)
    expected = [s.issubset(query) for s in sigs]
    assert arr.subset_of(qv).tolist() == expected


@given(rows=st.lists(bit_lists, min_size=1, max_size=15))
def test_array_lex_sort_agrees_with_scalar_sort(rows):
    sigs = [BloomSignature.from_bits(r, width=192) for r in rows]
    arr = SignatureArray.from_signatures(sigs)
    order = arr.lex_sort_order()
    assert [arr.row(i) for i in order] == sorted(sigs)


@given(rows=st.lists(bit_lists, min_size=1, max_size=15))
def test_array_leftmost_and_popcount_agree_with_scalar(rows):
    sigs = [BloomSignature.from_bits(r, width=192) for r in rows]
    arr = SignatureArray.from_signatures(sigs)
    assert arr.leftmost_one_positions().tolist() == [s.leftmost_one() for s in sigs]
    assert arr.popcounts().tolist() == [s.popcount() for s in sigs]


@given(rows=st.lists(bit_lists, min_size=1, max_size=15))
def test_bit_frequencies_sum_to_total_popcount(rows):
    sigs = [BloomSignature.from_bits(r, width=192) for r in rows]
    arr = SignatureArray.from_signatures(sigs)
    assert arr.bit_frequencies().sum() == sum(s.popcount() for s in sigs)


@given(rows=st.lists(bit_lists, min_size=1, max_size=15))
def test_unique_inverse_reconstructs(rows):
    sigs = [BloomSignature.from_bits(r, width=192) for r in rows]
    arr = SignatureArray.from_signatures(sigs)
    uniq, inverse = arr.unique()
    np.testing.assert_array_equal(uniq.blocks[inverse], arr.blocks)
    # unique rows really are unique
    as_tuples = {tuple(int(w) for w in row) for row in uniq.blocks}
    assert len(as_tuples) == len(uniq)


@settings(max_examples=25)
@given(
    rows=st.lists(bit_lists, min_size=1, max_size=10),
    queries=st.lists(bit_lists, min_size=1, max_size=5),
)
def test_subset_of_each_is_columnwise_subset_of(rows, queries):
    arr = SignatureArray.from_signatures(
        [BloomSignature.from_bits(r, width=192) for r in rows]
    )
    qarr = SignatureArray.from_signatures(
        [BloomSignature.from_bits(q, width=192) for q in queries]
    )
    matrix = arr.subset_of_each(qarr)
    for j in range(len(qarr)):
        np.testing.assert_array_equal(matrix[:, j], arr.subset_of(qarr.blocks[j]))
