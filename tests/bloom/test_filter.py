"""Unit tests for scalar Bloom signatures."""

import pytest

from repro.bloom.filter import BloomSignature
from repro.bloom.hashing import TagHasher
from repro.errors import ValidationError


@pytest.fixture
def hasher():
    return TagHasher()


class TestConstruction:
    def test_from_bits_roundtrip(self):
        sig = BloomSignature.from_bits([0, 63, 64, 191], width=192)
        assert list(sig.bits()) == [0, 63, 64, 191]

    def test_from_bits_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            BloomSignature.from_bits([192], width=192)

    def test_zero_is_empty(self):
        assert BloomSignature.zero(192).is_zero()

    def test_rejects_bad_block_word(self):
        with pytest.raises(ValidationError):
            BloomSignature([2**64, 0, 0])

    def test_width_inferred_from_blocks(self):
        sig = BloomSignature([0, 0])
        assert sig.width == 128

    def test_from_tags(self, hasher):
        sig = BloomSignature.from_tags(["cats", "dogs"], hasher)
        assert sig.width == 192
        assert not sig.is_zero()


class TestSubset:
    def test_tag_subset_implies_bit_subset(self, hasher):
        small = BloomSignature.from_tags(["a", "b"], hasher)
        big = BloomSignature.from_tags(["a", "b", "c", "d"], hasher)
        assert small.issubset(big)

    def test_zero_is_subset_of_everything(self, hasher):
        zero = BloomSignature.zero(192)
        other = BloomSignature.from_tags(["x"], hasher)
        assert zero.issubset(other)
        assert zero.issubset(zero)

    def test_disjoint_not_subset(self):
        a = BloomSignature.from_bits([1, 2], width=192)
        b = BloomSignature.from_bits([3, 4], width=192)
        assert not a.issubset(b)

    def test_reflexive(self, hasher):
        sig = BloomSignature.from_tags(["q"], hasher)
        assert sig.issubset(sig)


class TestBitOps:
    def test_or_unions_bits(self):
        a = BloomSignature.from_bits([5], width=192)
        b = BloomSignature.from_bits([100], width=192)
        assert list((a | b).bits()) == [5, 100]

    def test_and_intersects_bits(self):
        a = BloomSignature.from_bits([5, 10], width=192)
        b = BloomSignature.from_bits([10, 20], width=192)
        assert list((a & b).bits()) == [10]

    def test_width_mismatch_raises(self):
        with pytest.raises(ValidationError):
            BloomSignature.zero(192) | BloomSignature.zero(128)

    def test_with_bit(self):
        sig = BloomSignature.zero(192).with_bit(77)
        assert sig.get_bit(77) == 1
        assert sig.popcount() == 1

    def test_get_bit(self):
        sig = BloomSignature.from_bits([0, 191], width=192)
        assert sig.get_bit(0) == 1
        assert sig.get_bit(1) == 0
        assert sig.get_bit(191) == 1


class TestInspection:
    def test_popcount(self):
        assert BloomSignature.from_bits([1, 2, 3], width=192).popcount() == 3

    def test_leftmost_one(self):
        assert BloomSignature.from_bits([42, 100], width=192).leftmost_one() == 42

    def test_leftmost_one_of_zero_is_width(self):
        assert BloomSignature.zero(192).leftmost_one() == 192

    def test_leftmost_one_across_blocks(self):
        assert BloomSignature.from_bits([130], width=192).leftmost_one() == 130

    def test_bits_sorted(self, hasher):
        sig = BloomSignature.from_tags(["many", "tags", "here"], hasher)
        positions = list(sig.bits())
        assert positions == sorted(positions)

    def test_bitstring_length(self):
        assert len(BloomSignature.zero(192).to_bitstring()) == 192

    def test_bitstring_marks_bits(self):
        s = BloomSignature.from_bits([0, 191], width=192).to_bitstring()
        assert s[0] == "1" and s[191] == "1" and s[1:191] == "0" * 190


class TestOrderingAndEquality:
    def test_lexicographic_order_matches_bitstring(self):
        a = BloomSignature.from_bits([0], width=192)     # 100...
        b = BloomSignature.from_bits([1], width=192)     # 010...
        assert b < a
        assert a.to_bitstring() > b.to_bitstring()

    def test_equality_and_hash(self):
        a = BloomSignature.from_bits([7], width=192)
        b = BloomSignature.from_bits([7], width=192)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_not_equal_other_type(self):
        assert BloomSignature.zero(192) != "zero"
