"""Tests for the false-positive analysis of footnote 3."""

import math

import pytest

from repro.bloom.analysis import (
    expected_fill_fraction,
    membership_false_positive_probability,
    optimal_num_hashes,
    subset_false_positive_probability,
)
from repro.errors import ValidationError


class TestFootnote3:
    """The paper's two concrete numeric claims (both ≈ 1e-11)."""

    def test_ten_tag_query_three_tag_diff(self):
        p = subset_false_positive_probability(192, 7, query_set_size=10, difference_size=3)
        assert 1e-12 < p < 1e-10

    def test_five_tag_query_two_tag_diff(self):
        p = subset_false_positive_probability(192, 7, query_set_size=5, difference_size=2)
        assert 1e-12 < p < 1e-10

    def test_formula_shape(self):
        m, k, s2, diff = 192, 7, 10, 3
        single = 1 - math.exp(-k * s2 / m)
        assert subset_false_positive_probability(m, k, s2, diff) == pytest.approx(
            single ** (k * diff)
        )


class TestMonotonicity:
    def test_bigger_difference_is_less_likely(self):
        p1 = subset_false_positive_probability(192, 7, 10, 1)
        p3 = subset_false_positive_probability(192, 7, 10, 3)
        assert p3 < p1

    def test_bigger_query_is_more_likely(self):
        small = subset_false_positive_probability(192, 7, 5, 2)
        large = subset_false_positive_probability(192, 7, 30, 2)
        assert large > small

    def test_wider_filter_is_less_likely(self):
        narrow = subset_false_positive_probability(64, 7, 10, 2)
        wide = subset_false_positive_probability(192, 7, 10, 2)
        assert wide < narrow


class TestValidation:
    def test_rejects_zero_difference(self):
        with pytest.raises(ValidationError):
            subset_false_positive_probability(192, 7, 10, 0)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValidationError):
            subset_false_positive_probability(0, 7, 10, 1)

    def test_fill_rejects_negative_set(self):
        with pytest.raises(ValidationError):
            expected_fill_fraction(192, 7, -1)


class TestAuxiliary:
    def test_fill_fraction_bounds(self):
        assert expected_fill_fraction(192, 7, 0) == 0.0
        assert 0 < expected_fill_fraction(192, 7, 5) < 1

    def test_fill_fraction_increases_with_set_size(self):
        assert expected_fill_fraction(192, 7, 10) > expected_fill_fraction(192, 7, 5)

    def test_optimal_k_for_paper_average_set(self):
        # The workload's interests average ~5 tags; m/n ln2 = 192/5*0.693 ≈ 27,
        # but the paper chooses k=7 as a robust compromise for larger queries.
        assert optimal_num_hashes(192, 19) == 7

    def test_optimal_k_at_least_one(self):
        assert optimal_num_hashes(8, 1000) == 1

    def test_membership_fp_probability(self):
        p = membership_false_positive_probability(192, 7, 5)
        assert 0 < p < 1


class TestRecommendParameters:
    def test_paper_parameters_recovered(self):
        from repro.bloom.analysis import recommend_parameters

        width, k = recommend_parameters(10, 3, 1e-10)
        assert width == 192
        assert k == 7

    def test_meets_target(self):
        from repro.bloom.analysis import recommend_parameters

        for args in ((10, 1, 1e-9), (30, 2, 1e-9), (5, 2, 1e-10)):
            width, k = recommend_parameters(*args)
            assert width % 64 == 0
            p = subset_false_positive_probability(width, k, args[0], args[1])
            assert p <= args[2]

    def test_harder_targets_need_wider_filters(self):
        from repro.bloom.analysis import recommend_parameters

        easy, _ = recommend_parameters(10, 3, 1e-6)
        hard, _ = recommend_parameters(10, 1, 1e-12)
        assert hard > easy

    def test_impossible_target_raises(self):
        from repro.bloom.analysis import recommend_parameters

        with pytest.raises(ValidationError):
            recommend_parameters(200, 1, 1e-15, max_width=128)
