"""Unit tests for tag hashing and set encoding."""

import numpy as np
import pytest

from repro.bloom.hashing import (
    BLOCK_BITS,
    DEFAULT_NUM_HASHES,
    DEFAULT_WIDTH,
    TagHasher,
    fnv1a_64,
)
from repro.errors import ValidationError


class TestFnv1a:
    def test_known_vector_empty(self):
        # FNV-1a offset basis for empty input.
        assert fnv1a_64(b"") == 0xCBF29CE484222325

    def test_known_vector_a(self):
        # Standard published FNV-1a test vector.
        assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C

    def test_deterministic(self):
        assert fnv1a_64(b"tagmatch") == fnv1a_64(b"tagmatch")

    def test_seed_changes_hash(self):
        assert fnv1a_64(b"tag", seed=0) != fnv1a_64(b"tag", seed=1)

    def test_fits_in_64_bits(self):
        for seed in range(5):
            assert 0 <= fnv1a_64(b"some-long-tag-value", seed=seed) < 2**64


class TestTagHasherConstruction:
    def test_defaults_match_paper(self):
        hasher = TagHasher()
        assert hasher.width == DEFAULT_WIDTH == 192
        assert hasher.num_hashes == DEFAULT_NUM_HASHES == 7
        assert hasher.num_blocks == 3

    def test_rejects_non_multiple_width(self):
        with pytest.raises(ValidationError):
            TagHasher(width=100)

    def test_rejects_zero_width(self):
        with pytest.raises(ValidationError):
            TagHasher(width=0)

    def test_rejects_zero_hashes(self):
        with pytest.raises(ValidationError):
            TagHasher(num_hashes=0)


class TestBitPositions:
    def test_count_and_range(self):
        hasher = TagHasher()
        positions = hasher.bit_positions("cats")
        assert len(positions) == 7
        assert all(0 <= p < 192 for p in positions)

    def test_deterministic(self):
        hasher = TagHasher()
        assert hasher.bit_positions("x") == hasher.bit_positions("x")

    def test_different_tags_differ(self):
        hasher = TagHasher()
        assert hasher.bit_positions("cats") != hasher.bit_positions("dogs")

    def test_seed_changes_positions(self):
        a = TagHasher(seed=0).bit_positions("cats")
        b = TagHasher(seed=42).bit_positions("cats")
        assert a != b


class TestTagMask:
    def test_mask_matches_positions(self):
        hasher = TagHasher()
        mask = hasher.tag_mask("hello")
        set_bits = set()
        for block_index, word in enumerate(mask):
            for offset in range(BLOCK_BITS):
                if (word >> (BLOCK_BITS - 1 - offset)) & 1:
                    set_bits.add(block_index * BLOCK_BITS + offset)
        assert set_bits == set(hasher.bit_positions("hello"))

    def test_mask_cached(self):
        hasher = TagHasher()
        assert hasher.cache_size() == 0
        hasher.tag_mask("a")
        hasher.tag_mask("a")
        hasher.tag_mask("b")
        assert hasher.cache_size() == 2

    def test_clear_cache(self):
        hasher = TagHasher()
        hasher.tag_mask("a")
        hasher.clear_cache()
        assert hasher.cache_size() == 0


class TestEncodeSet:
    def test_union_of_tag_masks(self):
        hasher = TagHasher()
        merged = hasher.encode_set(["a", "b"])
        a = hasher.tag_mask("a")
        b = hasher.tag_mask("b")
        assert merged == tuple(x | y for x, y in zip(a, b))

    def test_order_independent(self):
        hasher = TagHasher()
        assert hasher.encode_set(["x", "y", "z"]) == hasher.encode_set(["z", "x", "y"])

    def test_rejects_empty_set(self):
        with pytest.raises(ValidationError):
            TagHasher().encode_set([])

    def test_encode_sets_shape_and_dtype(self):
        hasher = TagHasher()
        arr = hasher.encode_sets([["a"], ["b", "c"], ["d"]])
        assert arr.shape == (3, 3)
        assert arr.dtype == np.uint64

    def test_encode_sets_rows_match_encode_set(self):
        hasher = TagHasher()
        sets = [["a", "b"], ["c"]]
        arr = hasher.encode_sets(sets)
        for row, tags in zip(arr, sets):
            assert tuple(int(w) for w in row) == hasher.encode_set(tags)
