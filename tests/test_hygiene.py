"""Repository hygiene guards.

``tests/cluster/`` once existed as a directory holding nothing but an
orphaned ``__pycache__`` — dead weight that pytest happily collected
nothing from.  These checks keep bytecode artifacts out of version
control and empty test shells out of the tree.
"""

import subprocess
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _tracked_files() -> list[str]:
    out = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return out.stdout.splitlines()


def test_no_bytecode_artifacts_are_tracked():
    offenders = [
        path
        for path in _tracked_files()
        if "__pycache__" in path or path.endswith((".pyc", ".pyo"))
    ]
    assert offenders == [], f"bytecode artifacts committed: {offenders}"


def test_gitignore_covers_pycache():
    gitignore = (REPO_ROOT / ".gitignore").read_text()
    assert "__pycache__" in gitignore


def test_no_test_directory_is_an_empty_shell():
    """Every tests/ subdirectory must contain at least one test module
    (the tests/cluster regression: a directory of only __pycache__)."""
    tests_root = REPO_ROOT / "tests"
    for sub in sorted(p for p in tests_root.iterdir() if p.is_dir()):
        if sub.name == "__pycache__":
            continue
        modules = list(sub.glob("test_*.py")) + list(sub.glob("bench_*.py"))
        assert modules, f"{sub.relative_to(REPO_ROOT)} contains no test modules"
