"""Tests for the scaling policy."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import scaling


class TestScale:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scaling.scale() == scaling.DEFAULT_SCALE

    def test_env_override_fraction(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1/256")
        assert scaling.scale() == pytest.approx(1 / 256)

    def test_env_override_float(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        assert scaling.scale() == pytest.approx(0.01)

    def test_bad_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        with pytest.raises(WorkloadError):
            scaling.scale()

    def test_out_of_range_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        with pytest.raises(WorkloadError):
            scaling.scale()
        monkeypatch.setenv("REPRO_SCALE", "0")
        with pytest.raises(WorkloadError):
            scaling.scale()


class TestScaled:
    def test_scaled_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1/1000")
        assert scaling.scaled(scaling.PAPER_USERS) == 300_000
        assert scaling.scaled(scaling.PAPER_MAX_P) == 200

    def test_minimum_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1/1000000")
        assert scaling.scaled(10, minimum=5) == 5

    def test_paper_constants(self):
        assert scaling.PAPER_UNIQUE_SETS == 212_000_000
        assert scaling.PAPER_TWITTER_RATE_QPS == 6_000
