"""Tests for corpus serialization (plugging in real tweet archives)."""

import io

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.corpus_io import (
    corpus_from_jsonl,
    corpus_to_jsonl,
    iter_corpus_tweets,
)
from repro.workloads.interests import generate_interests
from repro.workloads.tweets import generate_tweet_corpus


@pytest.fixture
def corpus():
    return generate_tweet_corpus(40, np.random.default_rng(3), vocab_size=100)


class TestRoundtrip:
    def test_tweet_count_preserved(self, corpus):
        buffer = io.StringIO()
        written = corpus_to_jsonl(corpus, buffer)
        assert written == corpus.num_tweets
        buffer.seek(0)
        restored = corpus_from_jsonl(buffer)
        assert restored.num_tweets == corpus.num_tweets
        assert restored.num_publishers == corpus.num_publishers

    def test_tweet_contents_preserved(self, corpus):
        buffer = io.StringIO()
        corpus_to_jsonl(corpus, buffer)
        buffer.seek(0)
        restored = corpus_from_jsonl(buffer)
        original = list(iter_corpus_tweets(corpus))
        loaded = list(iter_corpus_tweets(restored))
        # publishers are renumbered densely in first-appearance order,
        # which for a generated corpus is the identity
        for (p1, t1), (p2, t2) in zip(original, loaded):
            assert p1 == p2
            assert len(t1) == len(t2)

    def test_restored_corpus_drives_interest_generation(self, corpus):
        buffer = io.StringIO()
        corpus_to_jsonl(corpus, buffer)
        buffer.seek(0)
        restored = corpus_from_jsonl(buffer)
        interests = generate_interests(restored, 200, np.random.default_rng(0))
        assert len(interests) > 0
        assert interests.mean_tags() > 1


class TestParsing:
    def test_hand_written_archive(self):
        lines = [
            '{"publisher": "alice", "hashtags": ["cats", "memes"]}',
            '{"publisher": "bob", "hashtags": ["rust"]}',
            "",
            '{"publisher": "alice", "hashtags": ["cats"]}',
        ]
        corpus = corpus_from_jsonl(lines)
        assert corpus.num_publishers == 2
        assert corpus.num_tweets == 3
        assert corpus.vocab_size == 3  # cats, memes, rust
        # alice owns two tweets
        assert len(list(corpus.tweets_of(0))) == 2

    def test_tweets_without_hashtags_skipped(self):
        lines = [
            '{"publisher": 1, "hashtags": []}',
            '{"publisher": 1, "hashtags": ["x"]}',
        ]
        corpus = corpus_from_jsonl(lines)
        assert corpus.num_tweets == 1

    def test_bad_json_rejected(self):
        with pytest.raises(WorkloadError, match="line 1"):
            corpus_from_jsonl(["{not json"])

    def test_missing_fields_rejected(self):
        with pytest.raises(WorkloadError):
            corpus_from_jsonl(['{"publisher": 1}'])

    def test_non_list_hashtags_rejected(self):
        with pytest.raises(WorkloadError):
            corpus_from_jsonl(['{"publisher": 1, "hashtags": "x"}'])

    def test_empty_archive_rejected(self):
        with pytest.raises(WorkloadError):
            corpus_from_jsonl([])

    def test_structure_invariants(self):
        lines = [
            '{"publisher": 9, "hashtags": ["a", "b", "c"]}',
            '{"publisher": 4, "hashtags": ["a"]}',
        ]
        corpus = corpus_from_jsonl(lines)
        assert corpus.tag_offsets[-1] == corpus.tweet_tags.size
        assert corpus.tweet_offsets[-1] == corpus.num_tweets
        assert corpus.tweet_tags.max() < corpus.vocab_size
