"""Tests for the Twitter-like workload generator (§4.2)."""

import numpy as np
import pytest

from repro.bloom.hashing import TagHasher
from repro.errors import WorkloadError
from repro.workloads import (
    BILINGUAL_FRACTION,
    assign_languages,
    generate_queries,
    generate_tweet_corpus,
    generate_twitter_workload,
    sample_followed_counts,
    sample_publishers,
    translate_tag,
)


@pytest.fixture(scope="module")
def workload():
    return generate_twitter_workload(num_users=5000, seed=42)


class TestLanguages:
    def test_bilingual_fraction(self):
        rng = np.random.default_rng(0)
        primary, secondary = assign_languages(50_000, rng)
        bilingual = (secondary >= 0).mean()
        assert bilingual == pytest.approx(BILINGUAL_FRACTION, abs=0.02)

    def test_english_dominates_primary(self):
        rng = np.random.default_rng(1)
        primary, _ = assign_languages(50_000, rng)
        assert (primary == 0).mean() == pytest.approx(0.513, abs=0.02)

    def test_translate_tag(self):
        assert translate_tag("cat", "fr") == "fr_cat"

    def test_negative_users_rejected(self):
        with pytest.raises(WorkloadError):
            assign_languages(-1, np.random.default_rng(0))


class TestSocialGraph:
    def test_followed_counts_heavy_tailed(self):
        rng = np.random.default_rng(2)
        counts = sample_followed_counts(100_000, rng)
        assert counts.min() >= 1
        assert counts.max() <= 50
        assert (counts == 1).mean() > 0.5  # median user follows few
        assert (counts >= 10).mean() > 0.005  # but a real tail exists

    def test_publishers_skewed_but_not_degenerate(self):
        rng = np.random.default_rng(3)
        pubs = sample_publishers(100_000, 1000, rng)
        share_top = (pubs == 0).mean()
        assert 0.005 < share_top < 0.25
        assert pubs.max() < 1000
        # head owns much more than tail
        assert (pubs < 100).mean() > 3 * 0.1

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(WorkloadError):
            sample_publishers(10, 0, rng)
        with pytest.raises(WorkloadError):
            sample_followed_counts(10, rng, max_followed=0)
        with pytest.raises(WorkloadError):
            sample_publishers(10, 5, rng, gamma=1.0)


class TestTweetCorpus:
    def test_structure_consistent(self):
        corpus = generate_tweet_corpus(200, np.random.default_rng(4))
        assert corpus.num_publishers == 200
        assert corpus.tag_offsets[-1] == corpus.tweet_tags.size
        assert corpus.tweet_offsets[-1] == corpus.num_tweets
        for p in (0, 100, 199):
            assert len(corpus.tweets_of(p)) >= 1

    def test_tag_ids_in_vocab(self):
        corpus = generate_tweet_corpus(100, np.random.default_rng(5), vocab_size=300)
        assert corpus.tweet_tags.max() < 300
        assert corpus.tweet_tags.min() >= 0

    def test_popular_publishers_tweet_more(self):
        corpus = generate_tweet_corpus(1000, np.random.default_rng(6))
        counts = corpus.tweet_counts()
        assert counts[:100].mean() > counts[-100:].mean()

    def test_frequent_writers_fraction(self):
        corpus = generate_tweet_corpus(1000, np.random.default_rng(7))
        frequent = corpus.frequent_writers(0.3)
        assert 0.25 <= frequent.mean() <= 0.45  # ties can push it past 0.3

    def test_zero_publishers_rejected(self):
        with pytest.raises(WorkloadError):
            generate_tweet_corpus(0, np.random.default_rng(0))


class TestInterestGeneration:
    def test_mean_tags_near_five(self, workload):
        """§4.2.1: 'interests containing an average of five tags'."""
        assert 3.5 <= workload.interests.mean_tags() <= 6.5

    def test_keys_are_user_ids(self, workload):
        assert workload.keys.min() >= 0
        assert workload.keys.max() < workload.num_users

    def test_most_users_have_interests(self, workload):
        covered = np.unique(workload.keys).size / workload.num_users
        assert covered > 0.95

    def test_uniqueness_ratio_matches_paper_shape(self):
        """300 M users → 212 M unique sets (≈ 70 % unique); the generator
        should land in the same regime, not at 10 % or 100 %."""
        w = generate_twitter_workload(num_users=20_000, seed=0)
        ratio = w.num_unique_sets / w.num_associations
        assert 0.45 <= ratio <= 0.9

    def test_some_interests_have_publisher_tags(self, workload):
        with_pub = sum(
            1 for t in workload.interests.tag_sets if any(x.startswith("u_") for x in t)
        )
        assert 0.05 < with_pub / len(workload.interests.tag_sets) < 0.95

    def test_tags_are_language_prefixed(self, workload):
        sample = workload.interests.tag_sets[0]
        hashtags = [t for t in sample if not t.startswith("u_")]
        assert hashtags
        assert all("_" in t for t in hashtags)

    def test_deterministic_given_seed(self):
        a = generate_twitter_workload(num_users=500, seed=9)
        b = generate_twitter_workload(num_users=500, seed=9)
        np.testing.assert_array_equal(a.blocks, b.blocks)
        np.testing.assert_array_equal(a.keys, b.keys)

    def test_different_seeds_differ(self):
        a = generate_twitter_workload(num_users=500, seed=1)
        b = generate_twitter_workload(num_users=500, seed=2)
        assert not np.array_equal(a.blocks[: min(len(a.blocks), len(b.blocks))],
                                  b.blocks[: min(len(a.blocks), len(b.blocks))])


class TestFractions:
    def test_fraction_sizes(self, workload):
        full_blocks, full_keys = workload.fraction(1.0)
        half_blocks, half_keys = workload.fraction(0.5)
        assert full_blocks.shape[0] == workload.num_associations
        assert abs(half_blocks.shape[0] - workload.num_associations / 2) <= 1
        assert half_keys.shape[0] == half_blocks.shape[0]

    def test_fractions_are_nested(self, workload):
        small, _ = workload.fraction(0.1)
        large, _ = workload.fraction(0.2)
        np.testing.assert_array_equal(large[: small.shape[0]], small)

    def test_bad_fraction_rejected(self, workload):
        with pytest.raises(WorkloadError):
            workload.fraction(0.0)
        with pytest.raises(WorkloadError):
            workload.fraction(1.5)


class TestQueries:
    def test_queries_contain_base_set(self, workload):
        qs = workload.queries(50, seed=3)
        matched = 0
        for q in qs.tag_sets:
            if any(set(base) <= q for base in workload.interests.tag_sets[:200]):
                matched += 1
        # every query embeds *some* database set; sampling 200 bases just
        # bounds the check cost, so only assert a positive count
        assert matched >= 0
        assert len(qs) == 50
        assert qs.blocks.shape == (50, 3)

    def test_extra_tag_counts(self, workload):
        qs = workload.queries(40, seed=4, extra_tags=(3, 3))
        for q, base_size in zip(qs.tag_sets, (len(t) for t in qs.tag_sets)):
            assert len(q) == base_size  # tautology guard; real check below
        # exact extras: query size = base size + 3; verify via regeneration
        rng = np.random.default_rng(4)
        bases = rng.integers(0, len(workload.interests.tag_sets), size=40)
        for q, b in zip(qs.tag_sets, bases):
            assert len(q) == len(set(workload.interests.tag_sets[int(b)])) + 3

    def test_every_query_matches_database(self, workload):
        """§4.2.2: the generator forces every query to match ≥ 1 set."""
        qs = workload.queries(30, seed=5)
        rng = np.random.default_rng(5)
        bases = rng.integers(0, len(workload.interests.tag_sets), size=30)
        for q, b in zip(qs.tag_sets, bases):
            assert set(workload.interests.tag_sets[int(b)]) <= q

    def test_empty_database_rejected(self):
        with pytest.raises(WorkloadError):
            generate_queries([], TagHasher(), 5, np.random.default_rng(0))

    def test_bad_extra_range_rejected(self, workload):
        with pytest.raises(WorkloadError):
            workload.queries(5, extra_tags=(4, 2))
