"""Tests for the TagMatch engine (Table 2 interface)."""

import numpy as np
import pytest

from repro.core.config import TagMatchConfig
from repro.core.engine import TagMatch
from repro.errors import ConsolidationError, ValidationError


@pytest.fixture
def engine():
    cfg = TagMatchConfig(max_partition_size=8, batch_size=16, batch_timeout_s=None)
    eng = TagMatch(cfg)
    yield eng
    eng.close()


def build_small(engine):
    engine.add_set({"cats", "memes"}, key=1)
    engine.add_set({"rust"}, key=2)
    engine.add_set({"cats"}, key=3)
    engine.add_set({"cats", "memes"}, key=4)  # same set, different key
    engine.consolidate()


class TestInterface:
    def test_match_finds_subsets(self, engine):
        build_small(engine)
        got = sorted(engine.match({"cats", "memes", "monday"}).tolist())
        assert got == [1, 3, 4]

    def test_match_exact_set(self, engine):
        build_small(engine)
        assert sorted(engine.match({"cats"}).tolist()) == [3]

    def test_match_no_results(self, engine):
        build_small(engine)
        assert engine.match({"zzz"}).size == 0

    def test_match_multiset_semantics(self, engine):
        engine.add_set({"a"}, key=9)
        engine.add_set({"a", "b"}, key=9)
        engine.consolidate()
        assert engine.match({"a", "b"}).tolist() == [9, 9]

    def test_match_unique_deduplicates(self, engine):
        engine.add_set({"a"}, key=9)
        engine.add_set({"a", "b"}, key=9)
        engine.consolidate()
        assert engine.match_unique({"a", "b"}).tolist() == [9]

    def test_match_before_consolidate_raises(self, engine):
        engine.add_set({"a"}, key=1)
        with pytest.raises(ConsolidationError):
            engine.match({"a"})

    def test_staged_adds_invisible_until_consolidate(self, engine):
        build_small(engine)
        engine.add_set({"new"}, key=99)
        assert engine.match({"new"}).size == 0
        engine.consolidate()
        assert engine.match({"new"}).tolist() == [99]

    def test_remove_set(self, engine):
        build_small(engine)
        engine.remove_set({"cats"}, key=3)
        engine.consolidate()
        assert sorted(engine.match({"cats", "memes"}).tolist()) == [1, 4]

    def test_empty_tag_set_rejected(self, engine):
        with pytest.raises(ValidationError):
            engine.add_set(set(), key=1)

    def test_empty_database_consolidates(self, engine):
        engine.consolidate()
        assert engine.match({"anything"}).size == 0
        assert engine.num_partitions == 0


class TestBulkAndBatch:
    def test_add_signatures_bulk(self, engine):
        blocks = engine.hasher.encode_sets([["a"], ["b"]])
        engine.add_signatures(blocks, np.array([10, 20]))
        engine.consolidate()
        assert engine.match({"a"}).tolist() == [10]

    def test_match_batch_agrees_with_match(self, engine):
        build_small(engine)
        tag_sets = [{"cats", "memes"}, {"rust", "x"}, {"none"}]
        qs = engine.encode_queries(tag_sets)
        batch = engine.match_batch(qs)
        singles = [engine.match(t) for t in tag_sets]
        for b, s in zip(batch, singles):
            assert sorted(b.tolist()) == sorted(s.tolist())

    def test_match_batch_unique(self, engine):
        engine.add_set({"a"}, key=9)
        engine.add_set({"a", "b"}, key=9)
        engine.consolidate()
        qs = engine.encode_queries([{"a", "b"}])
        assert engine.match_batch(qs, unique=True)[0].tolist() == [9]


class TestConsolidateReport:
    def test_report_counts(self, engine):
        build_small(engine)
        rep = engine.last_consolidate
        assert rep.num_associations == 4
        assert rep.num_unique_sets == 3  # {cats,memes} deduplicated
        assert rep.partitioning.num_partitions == engine.num_partitions
        assert rep.elapsed_s > 0

    def test_num_unique_sets_property(self, engine):
        build_small(engine)
        assert engine.num_unique_sets == 3

    def test_reconsolidate_frees_old_gpu_table(self, engine):
        build_small(engine)
        first_gpu = engine.memory_usage().gpu_total_bytes
        engine.add_set({"more"}, key=50)
        engine.consolidate()
        second_gpu = engine.memory_usage().gpu_total_bytes
        # old buffers freed: usage grows by one small set, not 2x
        assert second_gpu < 2 * first_gpu


class TestMemoryUsage:
    def test_breakdown_positive(self, engine):
        build_small(engine)
        usage = engine.memory_usage()
        assert usage.key_table_bytes > 0
        assert usage.partition_table_bytes > 0
        assert usage.gpu_tagset_bytes > 0
        assert usage.host_bytes >= usage.key_table_bytes
        assert usage.gpu_total_bytes >= usage.gpu_tagset_bytes

    def test_gpu_memory_scales_with_database(self):
        cfg = TagMatchConfig(max_partition_size=64, batch_timeout_s=None)
        with TagMatch(cfg) as small, TagMatch(cfg) as large:
            for i in range(50):
                small.add_set({f"t{i}", f"u{i}"}, key=i)
            for i in range(500):
                large.add_set({f"t{i}", f"u{i}"}, key=i)
            small.consolidate()
            large.consolidate()
            assert (
                large.memory_usage().gpu_tagset_bytes
                > 5 * small.memory_usage().gpu_tagset_bytes
            )


class TestExactCheck:
    def test_exact_check_filters_false_positives(self):
        """With a tiny 64-bit filter false positives are easy to make;
        exact_check must remove them."""
        cfg = TagMatchConfig(
            width=64, num_hashes=2, exact_check=True, batch_timeout_s=None,
            max_partition_size=16,
        )
        with TagMatch(cfg) as eng:
            rng_tags = [f"tag-{i}" for i in range(200)]
            for i, t in enumerate(rng_tags):
                eng.add_set({t, rng_tags[(i + 7) % 200]}, key=i)
            eng.consolidate()
            for q in ({"tag-0", "tag-7"}, {"tag-3", "tag-10", "tag-50"}):
                got = set(eng.match(q).tolist())
                expected = {
                    i
                    for i, t in enumerate(rng_tags)
                    if {t, rng_tags[(i + 7) % 200]} <= q
                }
                assert got == expected

    def test_exact_check_incompatible_with_bulk(self):
        cfg = TagMatchConfig(exact_check=True)
        with TagMatch(cfg) as eng:
            with pytest.raises(ValidationError):
                eng.add_signatures(np.zeros((1, 3), np.uint64), np.array([1]))

    def test_exact_check_survives_removal(self):
        cfg = TagMatchConfig(exact_check=True, batch_timeout_s=None)
        with TagMatch(cfg) as eng:
            eng.add_set({"a"}, key=1)
            eng.add_set({"b"}, key=2)
            eng.consolidate()
            eng.remove_set({"a"}, key=1)
            eng.consolidate()
            assert eng.match({"a", "b"}).tolist() == [2]


class TestMultiGpu:
    @pytest.mark.parametrize("replicate", [True, False])
    def test_results_identical_across_placements(self, replicate):
        cfg = TagMatchConfig(
            num_gpus=2,
            replicate_tagset_table=replicate,
            max_partition_size=4,
            batch_timeout_s=None,
        )
        with TagMatch(cfg) as eng:
            for i in range(40):
                eng.add_set({f"x{i}", f"x{i+1}"}, key=i)
            eng.consolidate()
            got = sorted(eng.match({"x3", "x4", "x5"}).tolist())
            assert got == [3, 4]

    def test_replication_doubles_gpu_memory(self):
        def build(replicate):
            cfg = TagMatchConfig(
                num_gpus=2, replicate_tagset_table=replicate, batch_timeout_s=None
            )
            eng = TagMatch(cfg)
            for i in range(50):
                eng.add_set({f"x{i}", f"y{i}"}, key=i)
            eng.consolidate()
            usage = eng.memory_usage().gpu_tagset_bytes
            eng.close()
            return usage

        assert build(True) == pytest.approx(2 * build(False), rel=0.05)

    def test_close_is_idempotent(self, engine):
        build_small(engine)
        engine.close()
        engine.close()
