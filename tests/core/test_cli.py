"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.users == 20_000
        assert args.queries == 2048
        assert not args.unique

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.index is None
        assert args.port == 7311
        assert args.ingress_batch == 64
        assert args.save_on_exit is None

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(
            ["loadgen", "--rate", "250", "--duration", "2"]
        )
        assert args.rate == 250.0
        assert args.duration == 2.0
        assert args.connections == 4


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "match-unique" in out
        assert "[1, 3]" in out

    def test_workload(self, capsys):
        assert main(["workload", "--users", "500", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "users:              500" in out
        assert "unique sets:" in out

    def test_build_then_match(self, capsys, tmp_path):
        snapshot = str(tmp_path / "idx.npz")
        assert main(
            ["build", "--users", "500", "--gpus", "1",
             "--max-partition-size", "64", "--out", snapshot]
        ) == 0
        out = capsys.readouterr().out
        assert "snapshot written" in out

        assert main(["match", "--index", snapshot, "--tags", "zz-missing"]) == 0
        out = capsys.readouterr().out
        assert "0 keys" in out

    def test_match_rejects_empty_tags(self, tmp_path, capsys):
        assert main(["match", "--index", "x", "--tags", " , "]) == 2

    def test_bench(self, capsys):
        assert main(
            ["bench", "--users", "500", "--queries", "64", "--gpus", "1",
             "--max-partition-size", "64", "--unique"]
        ) == 0
        out = capsys.readouterr().out
        assert "match-unique:" in out
        assert "latency" in out
