"""Tests for the GPU-resident tagset table."""

import numpy as np
import pytest

from repro.bloom.array import SignatureArray
from repro.bloom.filter import BloomSignature
from repro.core.partitioning import balanced_partition
from repro.core.tagset_table import TagsetTable
from repro.errors import ValidationError
from repro.gpu.device import Device
from repro.gpu.kernels import block_prefixes

WIDTH = 192


@pytest.fixture
def devices():
    devs = [Device(device_id=i, num_streams=1) for i in range(3)]
    yield devs
    for dev in devs:
        dev.close()


def make_blocks(n=60, seed=0):
    rng = np.random.default_rng(seed)
    sigs = [
        BloomSignature.from_bits(
            sorted(rng.choice(48, size=rng.integers(1, 6), replace=False)), width=WIDTH
        )
        for _ in range(n)
    ]
    return np.unique(SignatureArray.from_signatures(sigs).blocks, axis=0)


def build_table(devices, replicate=True, factor=None, seed=0):
    blocks = make_blocks(seed=seed)
    partitioning = balanced_partition(blocks, 8, WIDTH)
    table = TagsetTable(
        blocks,
        partitioning.partitions,
        devices,
        WIDTH,
        replicate=replicate,
        replication_factor=factor,
    )
    return table, blocks, partitioning


class TestUpload:
    def test_partitions_sorted_lexicographically(self, devices):
        table, blocks, partitioning = build_table(devices[:1])
        for pid in range(table.num_partitions):
            residency = table.residency(pid)
            rows = residency.sets.array()
            arr = SignatureArray(rows, width=WIDTH)
            order = arr.lex_sort_order()
            np.testing.assert_array_equal(order, np.arange(len(arr)))

    def test_ids_point_back_to_rows(self, devices):
        table, blocks, _ = build_table(devices[:1])
        for pid in range(table.num_partitions):
            residency = table.residency(pid)
            rows = residency.sets.array()
            ids = residency.ids.array()
            np.testing.assert_array_equal(blocks[ids], rows)

    def test_prefixes_match_recomputation(self, devices):
        table, _, _ = build_table(devices[:1])
        residency = table.residency(0)
        expected = block_prefixes(residency.sets.array(), 1024)
        np.testing.assert_array_equal(residency.prefixes.array(), expected)

    def test_num_sets_recorded(self, devices):
        table, blocks, _ = build_table(devices[:1])
        assert table.num_sets == blocks.shape[0]


class TestPlacement:
    def test_full_replication_everywhere(self, devices):
        table, _, _ = build_table(devices)
        assert table.copies == 3
        homes = {table.residency(0).device.device_id for _ in range(10)}
        assert homes == {0, 1, 2}  # round-robin across replicas

    def test_single_home_when_not_replicated(self, devices):
        table, _, _ = build_table(devices, replicate=False)
        assert table.copies == 1
        first = table.residency(0).device
        assert all(table.residency(0).device is first for _ in range(5))

    def test_partial_replication_copies(self, devices):
        table, _, _ = build_table(devices, factor=2)
        assert table.copies == 2
        homes = {table.residency(1).device.device_id for _ in range(10)}
        assert len(homes) == 2

    def test_gpu_bytes_scale_with_copies(self, devices):
        full, _, _ = build_table(devices, seed=1)
        single, _, _ = build_table(devices, replicate=False, seed=1)
        assert full.gpu_bytes == 3 * single.gpu_bytes

    def test_bad_factor_rejected(self, devices):
        blocks = make_blocks()
        partitioning = balanced_partition(blocks, 8, WIDTH)
        with pytest.raises(ValidationError):
            TagsetTable(
                blocks, partitioning.partitions, devices, WIDTH, replication_factor=9
            )

    def test_no_devices_rejected(self):
        blocks = make_blocks()
        partitioning = balanced_partition(blocks, 8, WIDTH)
        with pytest.raises(ValidationError):
            TagsetTable(blocks, partitioning.partitions, [], WIDTH)

    def test_residency_range_checked(self, devices):
        table, _, _ = build_table(devices[:1])
        with pytest.raises(ValidationError):
            table.residency(table.num_partitions)


class TestLifecycle:
    def test_free_releases_all_devices(self, devices):
        table, _, _ = build_table(devices)
        assert all(d.ledger.allocated_bytes > 0 for d in devices)
        table.free()
        assert all(d.ledger.allocated_bytes == 0 for d in devices)

    def test_double_free_is_safe(self, devices):
        table, _, _ = build_table(devices[:1])
        table.free()
        table.free()
