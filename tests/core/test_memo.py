"""Unit tests for the duplicate-query LRU memo."""

import numpy as np
import pytest

from repro.core.memo import QueryMemo
from repro.errors import ValidationError


def keys(*vals):
    return np.array(vals, dtype=np.int64)


def test_miss_then_hit_counts():
    memo = QueryMemo(4)
    assert memo.get(1, b"q") is None
    memo.put(1, b"q", keys(1, 2))
    np.testing.assert_array_equal(memo.get(1, b"q"), keys(1, 2))
    assert memo.stats() == {"size": 1, "capacity": 4, "hits": 1, "misses": 1}


def test_epoch_keys_are_disjoint():
    memo = QueryMemo(4)
    memo.put(1, b"q", keys(1))
    assert memo.get(2, b"q") is None  # epoch bump invalidates
    memo.put(2, b"q", keys(9))
    np.testing.assert_array_equal(memo.get(1, b"q"), keys(1))
    np.testing.assert_array_equal(memo.get(2, b"q"), keys(9))


def test_lru_eviction_order():
    memo = QueryMemo(2)
    memo.put(1, b"a", keys(1))
    memo.put(1, b"b", keys(2))
    memo.get(1, b"a")  # refresh "a": "b" becomes LRU
    memo.put(1, b"c", keys(3))
    assert memo.get(1, b"b") is None
    assert memo.get(1, b"a") is not None
    assert memo.get(1, b"c") is not None
    assert len(memo) == 2


def test_put_refreshes_existing_entry():
    memo = QueryMemo(2)
    memo.put(1, b"a", keys(1))
    memo.put(1, b"b", keys(2))
    memo.put(1, b"a", keys(7))  # update, not insert: "b" stays LRU
    memo.put(1, b"c", keys(3))
    assert memo.get(1, b"b") is None
    np.testing.assert_array_equal(memo.get(1, b"a"), keys(7))


def test_clear_empties_but_keeps_counters():
    memo = QueryMemo(4)
    memo.put(1, b"a", keys(1))
    memo.get(1, b"a")
    memo.clear()
    assert len(memo) == 0
    assert memo.get(1, b"a") is None
    assert memo.stats()["hits"] == 1


@pytest.mark.parametrize("capacity", [0, -3])
def test_nonpositive_capacity_rejected(capacity):
    with pytest.raises(ValidationError):
        QueryMemo(capacity)


# ----------------------------------------------------------------------
# Aliasing regression: stored arrays must be immutable (PR 5 bugfix).
# Before the fix, get()/put() handed out the same writable ndarray to
# every caller — one in-place sort or resize poisoned all later hits.
# ----------------------------------------------------------------------
def test_stored_arrays_are_read_only():
    memo = QueryMemo(4)
    memo.put(1, b"q", keys(3, 1, 2))
    cached = memo.get(1, b"q")
    assert not cached.flags.writeable
    with pytest.raises(ValueError):
        cached[0] = 99
    with pytest.raises(ValueError):
        cached.sort()
    np.testing.assert_array_equal(memo.get(1, b"q"), keys(3, 1, 2))


def test_put_returns_the_frozen_view():
    memo = QueryMemo(4)
    original = keys(5, 6)
    stored = memo.put(1, b"q", original)
    assert not stored.flags.writeable
    np.testing.assert_array_equal(stored, original)
    # The caller's own array stays writable — only the memo's view froze.
    original_still_writable = original.flags.writeable
    assert original_still_writable
