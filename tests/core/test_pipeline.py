"""Tests for the four-stage matching pipeline."""

import numpy as np
import pytest

from repro.core.config import TagMatchConfig
from repro.core.engine import TagMatch
from repro.core.pipeline import grouped_key_lookup


def build_engine(**overrides):
    defaults = dict(
        max_partition_size=16,
        batch_size=8,
        batch_timeout_s=0.01,
        num_threads=4,
        num_gpus=2,
    )
    defaults.update(overrides)
    eng = TagMatch(TagMatchConfig(**defaults))
    rng = np.random.default_rng(123)
    tags = [f"tag-{i}" for i in range(60)]
    for key in range(300):
        size = int(rng.integers(1, 6))
        chosen = rng.choice(60, size=size, replace=False)
        eng.add_set({tags[c] for c in chosen}, key=key)
    eng.consolidate()
    return eng, tags, rng


@pytest.fixture(scope="module")
def built():
    eng, tags, rng = build_engine()
    yield eng, tags, rng
    eng.close()


def make_queries(tags, rng, n=64, size=10):
    out = []
    for _ in range(n):
        chosen = rng.choice(len(tags), size=size, replace=False)
        out.append({tags[c] for c in chosen})
    return out


class TestCorrectness:
    def test_stream_agrees_with_sync_match(self, built):
        eng, tags, rng = built
        tag_sets = make_queries(tags, rng)
        qs = eng.encode_queries(tag_sets)
        run = eng.match_stream(qs)
        assert run.num_queries == len(tag_sets)
        for row, result in zip(tag_sets, run.results):
            expected = sorted(eng.match(row).tolist())
            assert sorted(result.tolist()) == expected

    def test_stream_unique_agrees(self, built):
        eng, tags, rng = built
        tag_sets = make_queries(tags, rng, n=32)
        qs = eng.encode_queries(tag_sets)
        run = eng.match_stream(qs, unique=True)
        for row, result in zip(tag_sets, run.results):
            expected = eng.match_unique(row).tolist()
            assert result.tolist() == expected

    def test_no_timeout_still_terminates(self, built):
        eng, tags, rng = built
        qs = eng.encode_queries(make_queries(tags, rng, n=20))
        run = eng.match_stream(qs, batch_timeout_s=None)
        assert run.num_queries == 20

    def test_single_query_stream(self, built):
        eng, tags, rng = built
        qs = eng.encode_queries(make_queries(tags, rng, n=1))
        run = eng.match_stream(qs)
        assert run.num_queries == 1

    def test_non_matching_queries_complete(self, built):
        eng, _, _ = built
        qs = eng.encode_queries([{"unknown-1"}, {"unknown-2"}])
        run = eng.match_stream(qs)
        assert all(r.size == 0 for r in run.results)

    @pytest.mark.parametrize("threads", [1, 2, 8])
    def test_thread_counts(self, built, threads):
        eng, tags, rng = built
        tag_sets = make_queries(tags, rng, n=24)
        qs = eng.encode_queries(tag_sets)
        run = eng.match_stream(qs, num_threads=threads)
        for row, result in zip(tag_sets, run.results):
            assert sorted(result.tolist()) == sorted(eng.match(row).tolist())

    @pytest.mark.parametrize(
        ("threads", "pre", "lookup"),
        [(1, 1, 0), (2, 1, 1), (3, 1, 2), (8, 4, 4)],
    )
    def test_worker_accounting_matches_num_threads(self, built, threads, pre, lookup):
        """Total host workers equals num_threads (§4.3.3 thread sweep);
        with one thread a single worker serves both queues."""
        eng, tags, rng = built
        qs = eng.encode_queries(make_queries(tags, rng, n=16))
        run = eng.match_stream(qs, num_threads=threads)
        assert run.stats.pre_workers == pre
        assert run.stats.lookup_workers == lookup
        assert run.stats.pre_workers + run.stats.lookup_workers == threads


class TestStatsAndLatency:
    def test_throughput_and_latency_reported(self, built):
        eng, tags, rng = built
        qs = eng.encode_queries(make_queries(tags, rng, n=40))
        run = eng.match_stream(qs)
        assert run.throughput_qps > 0
        assert run.latencies_s.shape == (40,)
        assert (run.latencies_s >= 0).all()
        assert run.elapsed_s > 0

    def test_output_keys_counts_all_results(self, built):
        eng, tags, rng = built
        qs = eng.encode_queries(make_queries(tags, rng, n=16))
        run = eng.match_stream(qs)
        assert run.output_keys == sum(r.size for r in run.results)

    def test_batch_accounting(self, built):
        eng, tags, rng = built
        qs = eng.encode_queries(make_queries(tags, rng, n=40))
        run = eng.match_stream(qs)
        stats = run.stats
        assert stats.batches == (
            stats.full_flushes + stats.timeout_flushes + stats.shutdown_flushes
        )
        assert stats.kernel_invocations == stats.batches

    def test_arrival_rate_paces_feed(self, built):
        eng, tags, rng = built
        qs = eng.encode_queries(make_queries(tags, rng, n=64))
        run = eng.match_stream(qs, arrival_rate_qps=2000.0)
        # 64 queries at 2000 qps should take at least ~30 ms.
        assert run.elapsed_s >= 0.025

    def test_timeout_flushes_happen_under_slow_arrival(self, built):
        eng, tags, rng = built
        qs = eng.encode_queries(make_queries(tags, rng, n=12))
        run = eng.match_stream(qs, batch_timeout_s=0.005, arrival_rate_qps=400.0)
        assert run.stats.timeout_flushes > 0


class TestScaleAndStress:
    def test_larger_stream(self):
        eng, tags, rng = build_engine(batch_size=32)
        try:
            tag_sets = make_queries(tags, rng, n=300, size=8)
            qs = eng.encode_queries(tag_sets)
            run = eng.match_stream(qs)
            sample = rng.choice(300, size=20, replace=False)
            for qi in sample:
                expected = sorted(eng.match(tag_sets[qi]).tolist())
                assert sorted(run.results[qi].tolist()) == expected
        finally:
            eng.close()

    def test_back_to_back_runs_reuse_engine(self, built):
        eng, tags, rng = built
        qs = eng.encode_queries(make_queries(tags, rng, n=16))
        r1 = eng.match_stream(qs)
        r2 = eng.match_stream(qs)
        for a, b in zip(r1.results, r2.results):
            assert sorted(a.tolist()) == sorted(b.tolist())


class TestGroupedKeyLookup:
    """Stage-3 grouping, including its single-query / pre-sorted fast paths."""

    def _reference(self, key_table, q_ids, set_ids):
        out = []
        for q in np.unique(q_ids):
            mask = q_ids == q
            out.append((int(q), key_table.keys_of_many(set_ids[mask]).tolist()))
        return out

    def _check(self, built, q_ids, set_ids):
        eng, _, _ = built
        q_ids = np.asarray(q_ids, dtype=np.uint32)
        set_ids = np.asarray(set_ids, dtype=np.int64)
        got = [
            (int(q), keys.tolist())
            for q, keys in grouped_key_lookup(q_ids, set_ids, eng.key_table)
        ]
        assert got == self._reference(eng.key_table, q_ids, set_ids)

    def test_single_query_fast_path(self, built):
        self._check(built, [3, 3, 3, 3], [0, 5, 2, 5])

    def test_already_sorted_fast_path(self, built):
        self._check(built, [0, 0, 1, 4, 4, 4], [7, 1, 3, 0, 2, 2])

    def test_unsorted_general_path(self, built):
        self._check(built, [4, 0, 4, 1, 0], [2, 7, 0, 3, 1])

    def test_single_pair(self, built):
        self._check(built, [9], [4])
