"""Tests for the staged add/remove area (§2 consolidation semantics)."""

import numpy as np
import pytest

from repro.bloom.hashing import TagHasher
from repro.core.staging import ConsolidatedDatabase, StagingArea
from repro.errors import ValidationError


@pytest.fixture
def hasher():
    return TagHasher()


class TestStaging:
    def test_adds_become_rows(self, hasher):
        stage = StagingArea(hasher)
        stage.stage_add({"a"}, 1)
        stage.stage_add({"b"}, 2)
        db = stage.apply(None)
        assert len(db) == 2
        assert sorted(db.keys.tolist()) == [1, 2]

    def test_stage_is_cleared_after_apply(self, hasher):
        stage = StagingArea(hasher)
        stage.stage_add({"a"}, 1)
        db1 = stage.apply(None)
        db2 = stage.apply(db1)
        assert len(db2) == 1  # not doubled

    def test_dirty_flag(self, hasher):
        stage = StagingArea(hasher)
        assert not stage.dirty
        stage.stage_add({"a"}, 1)
        assert stage.dirty
        stage.apply(None)
        assert not stage.dirty

    def test_incremental_apply_extends(self, hasher):
        stage = StagingArea(hasher)
        stage.stage_add({"a"}, 1)
        db1 = stage.apply(None)
        stage.stage_add({"b"}, 2)
        db2 = stage.apply(db1)
        assert len(db2) == 2

    def test_counts(self, hasher):
        stage = StagingArea(hasher)
        stage.stage_add({"a"}, 1)
        stage.stage_remove({"a"}, 1)
        assert stage.pending_adds == 1
        assert stage.pending_removes == 1


class TestRemoval:
    def test_remove_deletes_matching_association(self, hasher):
        stage = StagingArea(hasher)
        stage.stage_add({"a"}, 1)
        stage.stage_add({"a"}, 2)
        db = stage.apply(None)
        stage.stage_remove({"a"}, 1)
        db = stage.apply(db)
        assert db.keys.tolist() == [2]

    def test_remove_only_one_occurrence(self, hasher):
        """Multiset semantics: removing (s, k) once keeps the duplicate."""
        stage = StagingArea(hasher)
        stage.stage_add({"a"}, 1)
        stage.stage_add({"a"}, 1)
        db = stage.apply(None)
        stage.stage_remove({"a"}, 1)
        db = stage.apply(db)
        assert db.keys.tolist() == [1]

    def test_remove_requires_same_set_and_key(self, hasher):
        stage = StagingArea(hasher)
        stage.stage_add({"a"}, 1)
        db = stage.apply(None)
        stage.stage_remove({"b"}, 1)   # wrong set
        stage.stage_remove({"a"}, 9)   # wrong key
        db = stage.apply(db)
        assert len(db) == 1

    def test_remove_nonexistent_is_noop(self, hasher):
        stage = StagingArea(hasher)
        stage.stage_remove({"ghost"}, 1)
        db = stage.apply(None)
        assert len(db) == 0

    def test_add_and_remove_in_same_batch(self, hasher):
        stage = StagingArea(hasher)
        stage.stage_add({"a"}, 1)
        stage.stage_remove({"a"}, 1)
        db = stage.apply(None)
        assert len(db) == 0


class TestBulkAndSignatures:
    def test_bulk_staging(self, hasher):
        stage = StagingArea(hasher)
        blocks = hasher.encode_sets([["a"], ["b"]])
        stage.stage_add_bulk(blocks, np.array([1, 2]))
        db = stage.apply(None)
        assert len(db) == 2
        np.testing.assert_array_equal(db.blocks, blocks)

    def test_bulk_shape_validated(self, hasher):
        stage = StagingArea(hasher)
        with pytest.raises(ValidationError):
            stage.stage_add_bulk(np.zeros((2, 5), np.uint64), np.array([1, 2]))
        with pytest.raises(ValidationError):
            stage.stage_add_bulk(np.zeros((2, 3), np.uint64), np.array([1]))

    def test_signature_staging(self, hasher):
        stage = StagingArea(hasher)
        stage.stage_add_signature(hasher.encode_set({"x"}), 5)
        db = stage.apply(None)
        assert db.keys.tolist() == [5]

    def test_signature_block_count_validated(self, hasher):
        stage = StagingArea(hasher)
        with pytest.raises(ValidationError):
            stage.stage_add_signature((1, 2), 5)


class TestStoredTags:
    def test_tags_tracked_through_apply(self, hasher):
        stage = StagingArea(hasher, store_tags=True)
        stage.stage_add({"a", "b"}, 1)
        stage.stage_add({"c"}, 2)
        db = stage.apply(None)
        assert db.tag_sets == [frozenset({"a", "b"}), frozenset({"c"})]

    def test_tags_filtered_on_removal(self, hasher):
        stage = StagingArea(hasher, store_tags=True)
        stage.stage_add({"a"}, 1)
        stage.stage_add({"b"}, 2)
        db = stage.apply(None)
        stage.stage_remove({"a"}, 1)
        db = stage.apply(db)
        assert db.tag_sets == [frozenset({"b"})]

    def test_bulk_rejected_with_store_tags(self, hasher):
        stage = StagingArea(hasher, store_tags=True)
        with pytest.raises(ValidationError):
            stage.stage_add_bulk(np.zeros((1, 3), np.uint64), np.array([1]))
        with pytest.raises(ValidationError):
            stage.stage_add_signature((0, 0, 0), 1)

    def test_mixed_database_rejected(self, hasher):
        plain = StagingArea(hasher)
        plain.stage_add({"a"}, 1)
        db = plain.apply(None)
        tagged = StagingArea(hasher, store_tags=True)
        tagged.stage_add({"b"}, 2)
        with pytest.raises(ValidationError):
            tagged.apply(db)


class TestConsolidatedDatabase:
    def test_parallel_validation(self):
        with pytest.raises(ValidationError):
            ConsolidatedDatabase(np.zeros((2, 3), np.uint64), np.zeros(3, np.int64))

    def test_tag_sets_length_validated(self):
        with pytest.raises(ValidationError):
            ConsolidatedDatabase(
                np.zeros((2, 3), np.uint64), np.zeros(2, np.int64), [frozenset()]
            )
