"""Result-equivalence of the kernel hot-path optimisations.

Fused multi-partition launches, the hierarchical coarse pre-filter, and
duplicate-query memoization are pure execution-plan changes: each must
produce bitwise-identical match results with the optimisation on or off,
independently and in combination.  The properties here cross-check every
knob against the all-off baseline through both the synchronous path
(``match_batch``) and the four-stage pipeline (``match_stream``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.array import SignatureArray
from repro.bloom.filter import BloomSignature
from repro.core.config import TagMatchConfig
from repro.core.engine import TagMatch

WIDTH = 192

bit_lists = st.lists(st.integers(0, 30), min_size=1, max_size=5)

#: Each variant flips exactly one optimisation on (plus the kitchen sink).
VARIANTS = {
    "fused": dict(fuse_partitions_below=64),
    "coarse": dict(coarse_prefilter=True),
    "memo": dict(query_memo_size=64),
    "all": dict(fuse_partitions_below=64, coarse_prefilter=True, query_memo_size=64),
}

BASELINE = dict(fuse_partitions_below=0, coarse_prefilter=False, query_memo_size=0)


def encode(rows):
    return SignatureArray.from_signatures(
        [BloomSignature.from_bits(r, width=WIDTH) for r in rows]
    ).blocks


def build_engine(blocks, keys, knobs) -> TagMatch:
    config = TagMatchConfig(
        width=WIDTH,
        max_partition_size=4,
        batch_size=8,
        batch_timeout_s=None,
        num_threads=2,
        thread_block_size=3,
        **{**BASELINE, **knobs},
    )
    engine = TagMatch(config)
    engine.add_signatures(blocks, keys)
    engine.consolidate()
    return engine


def canonical(results):
    return [sorted(r.tolist()) for r in results]


@settings(max_examples=12, deadline=None)
@given(
    rows=st.lists(bit_lists, min_size=1, max_size=24),
    queries=st.lists(bit_lists, min_size=1, max_size=6),
    data=st.data(),
)
def test_each_optimisation_matches_baseline(rows, queries, data):
    blocks = encode(rows)
    keys = np.arange(len(rows), dtype=np.int64)
    # A duplicate-heavy query stream: repeat rows so both the batch
    # canonicalisation and the fused batchers see realistic input.
    dup_idx = data.draw(
        st.lists(st.integers(0, len(queries) - 1), min_size=0, max_size=6)
    )
    qblocks = encode(queries + [queries[i] for i in dup_idx])

    baseline = build_engine(blocks, keys, {})
    try:
        expected_batch = canonical(baseline.match_batch(qblocks))
        expected_stream = canonical(baseline.match_stream(qblocks).results)
        assert expected_batch == expected_stream
        for name, knobs in VARIANTS.items():
            engine = build_engine(blocks, keys, knobs)
            try:
                got_batch = canonical(engine.match_batch(qblocks))
                got_stream = canonical(engine.match_stream(qblocks).results)
                assert got_batch == expected_batch, name
                assert got_stream == expected_stream, name
            finally:
                engine.close()
    finally:
        baseline.close()


@settings(max_examples=10, deadline=None)
@given(
    rows=st.lists(bit_lists, min_size=1, max_size=24),
    query=bit_lists,
)
def test_single_query_path_matches_baseline(rows, query):
    """``match()`` walks dispatch units directly (no pipeline); it must
    agree across every variant too."""
    blocks = encode(rows)
    keys = np.arange(len(rows), dtype=np.int64)
    qrow = encode([query])
    engines = {"base": build_engine(blocks, keys, {})}
    try:
        for name, knobs in VARIANTS.items():
            engines[name] = build_engine(blocks, keys, knobs)
        results = {
            name: canonical(engine.match_batch(qrow))[0]
            for name, engine in engines.items()
        }
        for name in VARIANTS:
            assert results[name] == results["base"], name
    finally:
        for engine in engines.values():
            engine.close()


def test_fused_table_reduces_launches():
    """With many small partitions one fused launch covers several of
    them: the device clock counts strictly fewer kernel launches, and
    results stay identical."""
    rng = np.random.default_rng(7)
    rows = [sorted(rng.choice(30, size=int(rng.integers(1, 4)), replace=False).tolist())
            for _ in range(80)]
    blocks = np.unique(encode(rows), axis=0)
    keys = np.arange(len(blocks), dtype=np.int64)
    queries = encode(
        [sorted(rng.choice(30, size=6, replace=False).tolist()) for _ in range(20)]
    )

    plain = build_engine(blocks, keys, {})
    fused = build_engine(blocks, keys, dict(fuse_partitions_below=64))
    try:
        assert fused.tagset_table.num_units < plain.tagset_table.num_units
        expected = canonical(plain.match_stream(queries).results)
        got = canonical(fused.match_stream(queries).results)
        assert got == expected
        plain_launches = sum(d.clock.launches for d in plain.devices)
        fused_launches = sum(d.clock.launches for d in fused.devices)
        assert 0 < fused_launches < plain_launches
    finally:
        plain.close()
        fused.close()


def test_snapshot_round_trip_preserves_hotpath_knobs(tmp_path):
    blocks = encode([[1, 2], [2, 3], [4]])
    keys = np.arange(3, dtype=np.int64)
    engine = build_engine(
        blocks, keys,
        dict(fuse_partitions_below=8, coarse_prefilter=True, query_memo_size=16),
    )
    path = str(tmp_path / "snap.npz")
    try:
        engine.save(path)
    finally:
        engine.close()
    restored = TagMatch.load(path)
    try:
        assert restored.config.fuse_partitions_below == 8
        assert restored.config.coarse_prefilter is True
        assert restored.config.query_memo_size == 16
        got = canonical(restored.match_batch(encode([[1, 2, 3, 4]])))
        assert got == [[0, 1, 2]]
    finally:
        restored.close()


@pytest.mark.parametrize("knobs", [dict(fuse_partitions_below=-1),
                                   dict(query_memo_size=-5)])
def test_negative_knobs_rejected(knobs):
    from repro.errors import ValidationError

    with pytest.raises(ValidationError):
        TagMatchConfig(**knobs)
