"""Tests for TagMatchConfig validation."""

import pytest

from repro.core.config import TagMatchConfig
from repro.errors import ValidationError


class TestDefaults:
    def test_paper_bloom_geometry(self):
        cfg = TagMatchConfig()
        assert cfg.width == 192
        assert cfg.num_hashes == 7

    def test_paper_stream_count(self):
        assert TagMatchConfig().streams_per_gpu == 10

    def test_frozen(self):
        cfg = TagMatchConfig()
        with pytest.raises(AttributeError):
            cfg.batch_size = 64


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("width", 100),
        ("width", 0),
        ("num_hashes", 0),
        ("max_partition_size", 0),
        ("batch_size", 0),
        ("batch_size", 257),
        ("batch_timeout_s", -1.0),
        ("num_threads", 0),
        ("num_gpus", 0),
        ("streams_per_gpu", 0),
        ("thread_block_size", 0),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValidationError):
            TagMatchConfig(**{field: value})

    def test_none_timeout_allowed(self):
        assert TagMatchConfig(batch_timeout_s=None).batch_timeout_s is None

    def test_max_batch_size_allowed(self):
        assert TagMatchConfig(batch_size=256).batch_size == 256
