"""Tests for the extension features: push delivery, partial replication."""

import threading

import pytest

from repro.core.config import TagMatchConfig
from repro.core.engine import TagMatch
from repro.errors import ValidationError
from repro.workloads import generate_twitter_workload


@pytest.fixture(scope="module")
def workload():
    return generate_twitter_workload(num_users=2000, seed=31)


class TestOnResultCallback:
    def test_callback_fires_for_every_query(self, workload):
        cfg = TagMatchConfig(max_partition_size=64, batch_timeout_s=0.01)
        with TagMatch(cfg) as eng:
            eng.add_signatures(workload.blocks, workload.keys)
            eng.consolidate()
            queries = workload.queries(50, seed=1)
            delivered = {}
            lock = threading.Lock()

            def on_result(query_index, keys):
                with lock:
                    delivered[query_index] = keys

            run = eng.match_stream(
                queries.blocks, unique=True, on_result=on_result
            )
            assert sorted(delivered) == list(range(50))
            for qi, keys in delivered.items():
                assert keys.tolist() == run.results[qi].tolist()

    def test_callback_fires_for_nonmatching_queries(self, workload):
        cfg = TagMatchConfig(max_partition_size=64, batch_timeout_s=0.01)
        with TagMatch(cfg) as eng:
            eng.add_signatures(workload.blocks[:100], workload.keys[:100])
            eng.consolidate()
            seen = []
            lock = threading.Lock()
            qs = eng.encode_queries([{f"none-{i}"} for i in range(10)])
            eng.match_stream(
                qs,
                on_result=lambda qi, keys: (lock.acquire(), seen.append(qi), lock.release()),
            )
            assert sorted(seen) == list(range(10))


class TestPartialReplication:
    def make_engine(self, workload, **cfg):
        eng = TagMatch(TagMatchConfig(max_partition_size=64, batch_timeout_s=None, **cfg))
        eng.add_signatures(workload.blocks[:3000], workload.keys[:3000])
        eng.consolidate()
        return eng

    def test_factor_between_one_and_all(self, workload):
        full = self.make_engine(workload, num_gpus=4)
        partial = self.make_engine(workload, num_gpus=4, replication_factor=2)
        single = self.make_engine(workload, num_gpus=4, replicate_tagset_table=False)
        try:
            f = full.memory_usage().gpu_tagset_bytes
            p = partial.memory_usage().gpu_tagset_bytes
            s = single.memory_usage().gpu_tagset_bytes
            assert f == pytest.approx(4 * s, rel=0.01)
            assert p == pytest.approx(2 * s, rel=0.01)
        finally:
            full.close()
            partial.close()
            single.close()

    def test_partial_replication_results_identical(self, workload):
        partial = self.make_engine(workload, num_gpus=3, replication_factor=2)
        reference = self.make_engine(workload, num_gpus=1)
        try:
            queries = workload.queries(40, seed=2)
            run = partial.match_stream(queries.blocks, unique=True)
            for tags, result in zip(queries.tag_sets, run.results):
                assert result.tolist() == reference.match_unique(tags).tolist()
        finally:
            partial.close()
            reference.close()

    def test_factor_validated(self):
        with pytest.raises(ValidationError):
            TagMatchConfig(num_gpus=2, replication_factor=3)
        with pytest.raises(ValidationError):
            TagMatchConfig(num_gpus=2, replication_factor=0)

    def test_copies_spread_across_devices(self, workload):
        eng = self.make_engine(workload, num_gpus=4, replication_factor=2)
        try:
            used = [d.ledger.allocated_bytes for d in eng.devices]
            # with round-robin placement every device holds something
            assert all(b > 0 for b in used)
        finally:
            eng.close()
