"""Tests for the compact key table."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.key_table import KeyTable
from repro.errors import ValidationError


def table_from_pairs(pairs, num_sets):
    group_ids = np.array([p[0] for p in pairs], dtype=np.int64)
    keys = np.array([p[1] for p in pairs], dtype=np.int64)
    return KeyTable.from_grouped(group_ids, keys, num_sets)


class TestConstruction:
    def test_from_grouped_basic(self):
        kt = table_from_pairs([(0, 10), (1, 20), (0, 11)], num_sets=2)
        assert sorted(kt.keys_of(0).tolist()) == [10, 11]
        assert kt.keys_of(1).tolist() == [20]

    def test_empty_groups_allowed(self):
        kt = table_from_pairs([(2, 5)], num_sets=4)
        assert kt.keys_of(0).size == 0
        assert kt.keys_of(2).tolist() == [5]
        assert len(kt) == 4

    def test_duplicate_associations_preserved(self):
        """match returns a multiset: the same key twice stays twice."""
        kt = table_from_pairs([(0, 7), (0, 7)], num_sets=1)
        assert kt.keys_of(0).tolist() == [7, 7]

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValidationError):
            KeyTable.from_grouped(np.zeros(2, np.int64), np.zeros(3, np.int64), 5)

    def test_out_of_range_group_rejected(self):
        with pytest.raises(ValidationError):
            table_from_pairs([(5, 1)], num_sets=2)

    def test_bad_offsets_rejected(self):
        with pytest.raises(ValidationError):
            KeyTable(np.array([1, 2]), np.array([7, 8]))
        with pytest.raises(ValidationError):
            KeyTable(np.array([0, 2, 1]), np.array([7, 8]))


class TestLookups:
    def test_keys_of_many_concatenates(self):
        kt = table_from_pairs([(0, 1), (1, 2), (1, 3), (2, 4)], num_sets=3)
        got = kt.keys_of_many(np.array([0, 2]))
        assert sorted(got.tolist()) == [1, 4]

    def test_keys_of_many_multiset_semantics(self):
        kt = table_from_pairs([(0, 1)], num_sets=1)
        got = kt.keys_of_many(np.array([0, 0, 0]))
        assert got.tolist() == [1, 1, 1]

    def test_keys_of_many_empty(self):
        kt = table_from_pairs([(0, 1)], num_sets=1)
        assert kt.keys_of_many(np.array([], dtype=np.int64)).size == 0

    def test_keys_of_many_all_empty_groups(self):
        kt = table_from_pairs([(0, 1)], num_sets=3)
        assert kt.keys_of_many(np.array([1, 2])).size == 0

    def test_keys_of_range_checked(self):
        kt = table_from_pairs([(0, 1)], num_sets=1)
        with pytest.raises(ValidationError):
            kt.keys_of(1)
        with pytest.raises(ValidationError):
            kt.keys_of_many(np.array([3]))

    def test_counts_of_many(self):
        kt = table_from_pairs([(0, 1), (0, 2), (2, 3)], num_sets=3)
        np.testing.assert_array_equal(
            kt.counts_of_many(np.array([0, 1, 2])), [2, 0, 1]
        )

    def test_nbytes_positive(self):
        kt = table_from_pairs([(0, 1)], num_sets=1)
        assert kt.nbytes > 0
        assert kt.num_keys == 1


@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 9), st.integers(-1000, 1000)), max_size=60
    )
)
def test_grouping_property(pairs):
    kt = table_from_pairs(pairs, num_sets=10)
    for sid in range(10):
        expected = sorted(k for g, k in pairs if g == sid)
        assert sorted(kt.keys_of(sid).tolist()) == expected
    # keys_of_many over everything returns every association once.
    everything = kt.keys_of_many(np.arange(10))
    assert sorted(everything.tolist()) == sorted(k for _, k in pairs)
