"""Tests for the partition table and Algorithm 2 pre-processing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.array import SignatureArray
from repro.bloom.filter import BloomSignature
from repro.core.partition_table import PartitionTable, _one_bit_positions
from repro.core.partitioning import Partition, balanced_partition
from repro.errors import ValidationError

WIDTH = 192


def make_partition(bits):
    mask = np.array(
        BloomSignature.from_bits(bits, width=WIDTH).blocks, dtype=np.uint64
    )
    return Partition(mask=mask, indices=np.array([0]))


def query(bits):
    return np.array(
        BloomSignature.from_bits(bits, width=WIDTH).blocks, dtype=np.uint64
    )


class TestOneBitPositions:
    def test_positions_found(self):
        np.testing.assert_array_equal(
            _one_bit_positions(query([0, 63, 64, 191])), [0, 63, 64, 191]
        )

    def test_empty(self):
        assert _one_bit_positions(query([])).size == 0


class TestRelevantPartitions:
    def test_subset_masks_found(self):
        table = PartitionTable(
            [make_partition([1]), make_partition([2]), make_partition([1, 2])],
            WIDTH,
        )
        got = set(table.relevant_partitions(query([1, 2, 3])).tolist())
        assert got == {0, 1, 2}

    def test_non_subset_masks_excluded(self):
        table = PartitionTable(
            [make_partition([1, 5]), make_partition([9])], WIDTH
        )
        got = set(table.relevant_partitions(query([1, 2])).tolist())
        assert got == set()

    def test_masks_sharing_leftmost_bit(self):
        """Several masks in the same PT slot are all checked."""
        table = PartitionTable(
            [make_partition([4, 10]), make_partition([4, 20]), make_partition([4])],
            WIDTH,
        )
        got = set(table.relevant_partitions(query([4, 10, 99])).tolist())
        assert got == {0, 2}

    def test_empty_mask_always_relevant(self):
        table = PartitionTable([make_partition([]), make_partition([7])], WIDTH)
        got = set(table.relevant_partitions(query([150])).tolist())
        assert got == {0}
        assert table.always_relevant.tolist() == [0]

    def test_no_partitions(self):
        table = PartitionTable([], WIDTH)
        assert table.relevant_partitions(query([1, 2])).size == 0

    def test_query_block_count_validated(self):
        table = PartitionTable([make_partition([1])], WIDTH)
        with pytest.raises(ValidationError):
            table.relevant_partitions(np.zeros(2, dtype=np.uint64))

    def test_width_validated(self):
        with pytest.raises(ValidationError):
            PartitionTable([], 100)

    def test_boundary_bits(self):
        """Masks at the extreme bit positions (0 and width-1) index fine."""
        table = PartitionTable(
            [make_partition([0]), make_partition([191])], WIDTH
        )
        assert set(table.relevant_partitions(query([0, 191])).tolist()) == {0, 1}
        assert set(table.relevant_partitions(query([191])).tolist()) == {1}


class TestStructure:
    def test_slot_sizes_sum_to_num_masks(self):
        parts = [make_partition([i]) for i in range(10)]
        table = PartitionTable(parts, WIDTH)
        assert table.slot_sizes().sum() == 10

    def test_nbytes_positive(self):
        table = PartitionTable([make_partition([3])], WIDTH)
        assert table.nbytes > 0


@settings(max_examples=40, deadline=None)
@given(
    mask_bits=st.lists(
        st.lists(st.integers(0, 63), min_size=0, max_size=6), min_size=1, max_size=20
    ),
    query_bits=st.lists(st.integers(0, 63), max_size=20),
)
def test_agrees_with_linear_scan(mask_bits, query_bits):
    """Algorithm 2 finds exactly the masks contained in the query."""
    partitions = [make_partition(bits) for bits in mask_bits]
    table = PartitionTable(partitions, WIDTH)
    q = query(query_bits)
    got = sorted(table.relevant_partitions(q).tolist())
    expected = [
        i for i, p in enumerate(partitions) if not np.any(p.mask & ~q)
    ]
    assert got == expected


def test_integration_with_algorithm1():
    """Every query reaches exactly the partitions that could hold subsets."""
    rng = np.random.default_rng(9)
    sigs = [
        BloomSignature.from_bits(
            sorted(rng.choice(40, size=rng.integers(1, 6), replace=False)), width=WIDTH
        )
        for _ in range(300)
    ]
    blocks = SignatureArray.from_signatures(sigs).blocks
    result = balanced_partition(blocks, max_partition_size=30, width=WIDTH)
    table = PartitionTable(result.partitions, WIDTH)
    for _ in range(20):
        q_sig = BloomSignature.from_bits(
            sorted(rng.choice(40, size=12, replace=False)), width=WIDTH
        )
        q = np.array(q_sig.blocks, dtype=np.uint64)
        relevant = set(table.relevant_partitions(q).tolist())
        for pid, partition in enumerate(result.partitions):
            rows = blocks[partition.indices]
            has_match = bool(np.any(~np.any(rows & ~q, axis=1)))
            if has_match:
                assert pid in relevant, "pre-process must never drop a match"
