"""Tests for per-query state, merge semantics, and partition batchers."""

import threading
import time

import numpy as np
import pytest

from repro.core.batch import BatcherSet, PartitionBatcher
from repro.core.results import QueryState, merge_keys
from repro.errors import ReproError, ValidationError


class TestMergeKeys:
    def test_match_concatenates_multiset(self):
        out = merge_keys([np.array([1, 2]), np.array([2, 3])], unique=False)
        assert sorted(out.tolist()) == [1, 2, 2, 3]

    def test_match_unique_deduplicates(self):
        out = merge_keys([np.array([1, 2]), np.array([2, 3])], unique=True)
        assert out.tolist() == [1, 2, 3]

    def test_empty(self):
        assert merge_keys([], unique=False).size == 0
        assert merge_keys([], unique=True).size == 0


class TestQueryState:
    def test_zero_batches_completes_at_preprocess(self):
        state = QueryState(0, unique=False)
        state.preprocess_complete()
        assert state.done
        assert state.result.size == 0

    def test_completes_when_counter_hits_zero(self):
        state = QueryState(0, unique=False)
        state.add_batch()
        state.add_batch()
        state.preprocess_complete()
        state.deliver_keys(np.array([1]))
        assert not state.done
        state.deliver_keys(np.array([2]))
        assert state.done
        assert sorted(state.result.tolist()) == [1, 2]

    def test_delivery_before_preprocess_complete(self):
        """GPUs can return a batch before pre-processing finishes."""
        state = QueryState(0, unique=False)
        state.add_batch()
        state.deliver_keys(np.array([5]))
        assert not state.done
        state.preprocess_complete()
        assert state.done
        assert state.result.tolist() == [5]

    def test_unique_merge(self):
        state = QueryState(0, unique=True)
        state.add_batch()
        state.add_batch()
        state.preprocess_complete()
        state.deliver_keys(np.array([7, 7, 3]))
        state.deliver_keys(np.array([7]))
        assert state.result.tolist() == [3, 7]

    def test_deliver_without_pending_raises(self):
        state = QueryState(0, unique=False)
        with pytest.raises(ReproError):
            state.deliver_keys(np.array([1]))

    def test_add_batch_after_preprocess_raises(self):
        state = QueryState(0, unique=False)
        state.preprocess_complete()
        with pytest.raises(ReproError):
            state.add_batch()

    def test_latency_requires_completion(self):
        state = QueryState(0, unique=False)
        with pytest.raises(ReproError):
            _ = state.latency_s
        state.preprocess_complete()
        assert state.latency_s >= 0

    def test_wait_timeout(self):
        state = QueryState(0, unique=False)
        with pytest.raises(ReproError):
            state.wait(timeout=0.01)

    def test_concurrent_deliveries(self):
        state = QueryState(0, unique=False)
        n = 32
        for _ in range(n):
            state.add_batch()
        state.preprocess_complete()
        threads = [
            threading.Thread(target=state.deliver_keys, args=(np.array([i]),))
            for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert state.done
        assert sorted(state.result.tolist()) == list(range(n))


def make_row(value):
    return np.array([value, 0, 0], dtype=np.uint64)


class TestPartitionBatcher:
    def test_emits_when_full(self):
        batcher = PartitionBatcher(3, batch_size=2, num_words=3)
        s0, s1 = QueryState(0, False), QueryState(1, False)
        assert batcher.add(make_row(1), s0) is None
        batch = batcher.add(make_row(2), s1)
        assert batch is not None
        assert batch.partition_id == 3
        assert len(batch) == 2
        assert batch.queries.shape == (2, 3)
        assert batcher.pending == 0

    def test_flush_emits_partial(self):
        batcher = PartitionBatcher(0, batch_size=10, num_words=3)
        batcher.add(make_row(1), QueryState(0, False))
        batch = batcher.flush()
        assert len(batch) == 1
        assert batcher.flush() is None

    def test_flush_if_stale_respects_age(self):
        batcher = PartitionBatcher(0, batch_size=10, num_words=3)
        batcher.add(make_row(1), QueryState(0, False))
        assert batcher.flush_if_stale(10.0) is None
        time.sleep(0.02)
        assert batcher.flush_if_stale(0.01) is not None

    def test_stale_empty_is_none(self):
        batcher = PartitionBatcher(0, batch_size=4, num_words=3)
        assert batcher.flush_if_stale(0.0) is None

    def test_age_resets_after_emit(self):
        batcher = PartitionBatcher(0, batch_size=1, num_words=3)
        batcher.add(make_row(1), QueryState(0, False))  # emitted immediately
        assert batcher.flush_if_stale(0.0) is None

    def test_zero_batch_size_rejected(self):
        with pytest.raises(ValidationError):
            PartitionBatcher(0, batch_size=0, num_words=3)


class TestBatcherSet:
    def test_flush_all(self):
        batchers = BatcherSet(3, batch_size=10, num_words=3)
        batchers[0].add(make_row(1), QueryState(0, False))
        batchers[2].add(make_row(2), QueryState(1, False))
        batches = batchers.flush_all()
        assert sorted(b.partition_id for b in batches) == [0, 2]

    def test_total_pending(self):
        batchers = BatcherSet(2, batch_size=10, num_words=3)
        batchers[0].add(make_row(1), QueryState(0, False))
        batchers[1].add(make_row(2), QueryState(1, False))
        assert batchers.total_pending == 2

    def test_flush_stale_only_old(self):
        batchers = BatcherSet(2, batch_size=10, num_words=3)
        batchers[0].add(make_row(1), QueryState(0, False))
        time.sleep(0.02)
        batchers[1].add(make_row(2), QueryState(1, False))
        stale = batchers.flush_stale(0.015)
        assert [b.partition_id for b in stale] == [0]
