"""Tests for index persistence (save/load snapshots)."""

import numpy as np
import pytest

from repro.core.config import TagMatchConfig
from repro.core.engine import TagMatch
from repro.errors import ValidationError
from repro.workloads import generate_twitter_workload


@pytest.fixture(scope="module")
def workload():
    return generate_twitter_workload(num_users=1500, seed=23)


@pytest.fixture()
def built(workload):
    cfg = TagMatchConfig(max_partition_size=64, batch_timeout_s=None)
    eng = TagMatch(cfg)
    eng.add_signatures(workload.blocks, workload.keys)
    eng.consolidate()
    yield eng
    eng.close()


class TestRoundtrip:
    def test_identical_results_after_load(self, built, workload, tmp_path):
        path = str(tmp_path / "index.npz")
        built.save(path)
        loaded = TagMatch.load(path)
        try:
            queries = workload.queries(40, seed=1)
            for tags in queries.tag_sets:
                assert sorted(loaded.match(tags).tolist()) == sorted(
                    built.match(tags).tolist()
                )
                assert loaded.match_unique(tags).tolist() == built.match_unique(
                    tags
                ).tolist()
        finally:
            loaded.close()

    def test_partition_layout_preserved(self, built, tmp_path):
        path = str(tmp_path / "index.npz")
        built.save(path)
        loaded = TagMatch.load(path)
        try:
            assert loaded.num_partitions == built.num_partitions
            assert loaded.num_unique_sets == built.num_unique_sets
            # No re-partitioning happened on load.
            assert loaded.last_consolidate.partitioning.elapsed_s == 0.0
        finally:
            loaded.close()

    def test_pipeline_works_after_load(self, built, workload, tmp_path):
        path = str(tmp_path / "index.npz")
        built.save(path)
        loaded = TagMatch.load(path)
        try:
            queries = workload.queries(64, seed=2)
            run = loaded.match_stream(queries.blocks, unique=True)
            for tags, result in zip(queries.tag_sets, run.results):
                assert result.tolist() == built.match_unique(tags).tolist()
        finally:
            loaded.close()

    def test_load_continues_to_evolve(self, built, tmp_path):
        """A loaded engine accepts further add/remove + consolidate."""
        path = str(tmp_path / "index.npz")
        built.save(path)
        loaded = TagMatch.load(path)
        try:
            loaded.add_set({"fresh", "snapshot"}, key=10**6)
            loaded.consolidate()
            assert loaded.match({"fresh", "snapshot", "x"}).tolist() == [10**6]
        finally:
            loaded.close()


class TestConfigOverride:
    def test_different_gpu_topology(self, built, tmp_path):
        path = str(tmp_path / "index.npz")
        built.save(path)
        override = TagMatchConfig(
            max_partition_size=64, num_gpus=3, batch_timeout_s=None
        )
        loaded = TagMatch.load(path, config=override)
        try:
            assert len(loaded.devices) == 3
        finally:
            loaded.close()

    def test_mismatched_bloom_geometry_rejected(self, built, tmp_path):
        path = str(tmp_path / "index.npz")
        built.save(path)
        with pytest.raises(ValidationError):
            TagMatch.load(path, config=TagMatchConfig(width=128, num_hashes=3))


class TestGuards:
    def test_unconsolidated_engine_rejected(self, tmp_path):
        with TagMatch() as eng:
            eng.add_set({"a"}, 1)
            with pytest.raises(ValidationError):
                eng.save(str(tmp_path / "x.npz"))

    def test_dirty_stage_rejected(self, built, tmp_path):
        built.add_set({"pending"}, 1)
        with pytest.raises(ValidationError):
            built.save(str(tmp_path / "x.npz"))

    def test_exact_check_engine_rejected(self, tmp_path):
        cfg = TagMatchConfig(exact_check=True, batch_timeout_s=None)
        with TagMatch(cfg) as eng:
            eng.add_set({"a"}, 1)
            eng.consolidate()
            with pytest.raises(ValidationError):
                eng.save(str(tmp_path / "x.npz"))

    def test_empty_database_roundtrip(self, tmp_path):
        with TagMatch(TagMatchConfig(batch_timeout_s=None)) as eng:
            eng.consolidate()
            path = str(tmp_path / "empty.npz")
            eng.save(path)
            loaded = TagMatch.load(path)
            try:
                assert loaded.match({"anything"}).size == 0
            finally:
                loaded.close()
