"""Tests for Algorithm 1 (balanced recursive partitioning)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.array import SignatureArray
from repro.bloom.filter import BloomSignature
from repro.core.partitioning import balanced_partition
from repro.errors import ValidationError

WIDTH = 192


def blocks_from_bits(bit_lists):
    return SignatureArray.from_signatures(
        [BloomSignature.from_bits(b, width=WIDTH) for b in bit_lists]
    ).blocks


def random_blocks(n, seed=0, universe=60, set_size=(1, 8)):
    rng = np.random.default_rng(seed)
    return blocks_from_bits(
        [
            sorted(rng.choice(universe, size=rng.integers(*set_size), replace=False))
            for _ in range(n)
        ]
    )


def check_invariants(blocks, result):
    """Partitions cover the database exactly and respect their masks."""
    all_indices = np.concatenate([p.indices for p in result.partitions])
    assert sorted(all_indices.tolist()) == list(range(blocks.shape[0]))
    for p in result.partitions:
        rows = blocks[p.indices]
        # every row contains the partition mask
        assert not np.any(p.mask & ~rows), "row does not contain its partition mask"


class TestBasicProperties:
    def test_partitions_cover_database(self):
        blocks = random_blocks(500, seed=1)
        result = balanced_partition(blocks, max_partition_size=50, width=WIDTH)
        check_invariants(blocks, result)

    def test_max_size_respected_for_splittable_data(self):
        blocks = random_blocks(500, seed=2)
        result = balanced_partition(blocks, max_partition_size=50, width=WIDTH)
        # random distinct rows are always splittable down to MAX_P
        assert result.max_size <= 50

    def test_masks_are_nonempty_for_normal_data(self):
        blocks = random_blocks(300, seed=3)
        result = balanced_partition(blocks, max_partition_size=30, width=WIDTH)
        non_empty = sum(0 if p.mask_is_empty else 1 for p in result.partitions)
        # At most one leftover partition with an empty mask (the
        # all-pivots-zero chain), typically none with random data.
        assert non_empty >= len(result.partitions) - 1

    def test_single_partition_when_db_small_but_split_required(self):
        """Even a tiny database is split once so masks are non-empty."""
        blocks = blocks_from_bits([[1], [2], [3]])
        result = balanced_partition(blocks, max_partition_size=100, width=WIDTH)
        assert result.num_partitions >= 2
        check_invariants(blocks, result)

    def test_empty_database(self):
        blocks = np.empty((0, 3), dtype=np.uint64)
        result = balanced_partition(blocks, max_partition_size=10, width=WIDTH)
        assert result.num_partitions == 0
        assert result.num_sets == 0

    def test_rejects_bad_max_size(self):
        with pytest.raises(ValidationError):
            balanced_partition(np.zeros((1, 3), np.uint64), 0, WIDTH)

    def test_rejects_1d_blocks(self):
        with pytest.raises(ValidationError):
            balanced_partition(np.zeros(3, np.uint64), 10, WIDTH)


class TestDegenerateData:
    def test_identical_signatures_cannot_split(self):
        """A pile of identical rows is indivisible: accepted oversized."""
        blocks = blocks_from_bits([[1, 2, 3]] * 40)
        result = balanced_partition(blocks, max_partition_size=10, width=WIDTH)
        check_invariants(blocks, result)
        assert result.num_partitions == 1
        assert result.max_size == 40

    def test_two_clusters_of_identical_rows(self):
        blocks = blocks_from_bits([[1]] * 30 + [[2]] * 30)
        result = balanced_partition(blocks, max_partition_size=10, width=WIDTH)
        check_invariants(blocks, result)
        # one split on bit 1 or 2, then both sides indivisible
        assert result.num_partitions == 2
        assert result.max_size == 30

    def test_single_row(self):
        blocks = blocks_from_bits([[5, 9]])
        result = balanced_partition(blocks, max_partition_size=10, width=WIDTH)
        check_invariants(blocks, result)
        assert result.num_partitions == 1


class TestBalance:
    def test_pivot_prefers_50_percent_bit(self):
        """Bit 7 appears in exactly half the rows; bit 3 in all of them:
        the first split must use bit 7 (freq closest to 50 %; bit 3 is
        degenerate)."""
        rows = [[3, 7, i + 20] for i in range(10)] + [[3, i + 40] for i in range(10)]
        blocks = blocks_from_bits(rows)
        result = balanced_partition(blocks, max_partition_size=10, width=WIDTH)
        check_invariants(blocks, result)
        bit7 = BloomSignature.from_bits([7], width=WIDTH)
        masks_with_bit7 = [
            p
            for p in result.partitions
            if not np.any(np.array(bit7.blocks, dtype=np.uint64) & ~p.mask)
        ]
        assert masks_with_bit7, "expected some partition mask to contain bit 7"

    def test_partition_sizes_reasonably_balanced(self):
        blocks = random_blocks(2000, seed=4, universe=100)
        result = balanced_partition(blocks, max_partition_size=200, width=WIDTH)
        sizes = np.array([len(p) for p in result.partitions])
        # The recursive split leaves a tail of small partitions, but the
        # typical *set* should live in a reasonably large partition: the
        # set-weighted mean partition size stays a sizable fraction of
        # MAX_P (a wildly unbalanced pivot choice would collapse it).
        weighted_mean = (sizes.astype(float) ** 2).sum() / sizes.sum()
        assert weighted_mean > 200 * 0.15

    def test_linear_time_shape(self):
        """Figure 8: partitioning time grows roughly linearly in n."""
        t_small = balanced_partition(
            random_blocks(1000, seed=5), 100, WIDTH
        ).elapsed_s
        t_large = balanced_partition(
            random_blocks(8000, seed=5), 100, WIDTH
        ).elapsed_s
        # allow generous slack; superlinear would be > 8x
        assert t_large < 40 * max(t_small, 1e-4)


class TestStats:
    def test_mean_size(self):
        blocks = random_blocks(100, seed=6)
        result = balanced_partition(blocks, 20, WIDTH)
        assert result.mean_size == pytest.approx(100 / result.num_partitions)

    def test_elapsed_recorded(self):
        result = balanced_partition(random_blocks(50, seed=7), 10, WIDTH)
        assert result.elapsed_s >= 0


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(
        st.lists(st.integers(0, 47), min_size=1, max_size=8),
        min_size=1,
        max_size=80,
    ),
    max_p=st.integers(1, 30),
)
def test_partitioning_invariants_property(data, max_p):
    blocks = blocks_from_bits(data)
    result = balanced_partition(blocks, max_partition_size=max_p, width=WIDTH)
    check_invariants(blocks, result)
