"""Hypothesis property tests across module boundaries."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bloom.array import SignatureArray
from repro.bloom.filter import BloomSignature
from repro.bloom.ops import containment_matrix
from repro.core.config import TagMatchConfig
from repro.core.engine import TagMatch
from repro.core.partition_table import PartitionTable
from repro.core.partitioning import balanced_partition

WIDTH = 192

bit_lists = st.lists(st.integers(0, 40), min_size=0, max_size=6)
tag_names = st.integers(0, 25).map(lambda i: f"t{i}")
tag_sets = st.sets(tag_names, min_size=1, max_size=5)


def blocks_of(rows):
    return SignatureArray.from_signatures(
        [BloomSignature.from_bits(r, width=WIDTH) for r in rows]
    ).blocks


@given(
    subs=st.lists(bit_lists, min_size=1, max_size=12),
    supers=st.lists(bit_lists, min_size=1, max_size=12),
)
def test_containment_matrix_agrees_with_scalar(subs, supers):
    a = blocks_of(subs)
    b = blocks_of(supers)
    matrix = containment_matrix(a, b)
    for i, srow in enumerate(subs):
        si = BloomSignature.from_bits(srow, width=WIDTH)
        for j, prow in enumerate(supers):
            pj = BloomSignature.from_bits(prow, width=WIDTH)
            assert matrix[i, j] == si.issubset(pj)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(bit_lists, min_size=1, max_size=60),
    queries=st.lists(bit_lists, min_size=1, max_size=8),
    max_p=st.integers(2, 20),
)
def test_relevant_matrix_equals_per_query_algorithm2(rows, queries, max_p):
    """The vectorized batch pre-process is exactly Algorithm 2 per row."""
    blocks = np.unique(blocks_of(rows), axis=0)
    result = balanced_partition(blocks, max_p, WIDTH)
    table = PartitionTable(result.partitions, WIDTH)
    qblocks = blocks_of(queries)
    matrix = table.relevant_matrix(qblocks)
    for qi in range(len(queries)):
        per_query = sorted(table.relevant_partitions(qblocks[qi]).tolist())
        assert sorted(np.nonzero(matrix[qi])[0].tolist()) == per_query


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    database=st.lists(
        st.tuples(tag_sets, st.integers(0, 50)), min_size=1, max_size=40
    ),
    queries=st.lists(st.sets(tag_names, min_size=1, max_size=10), min_size=1, max_size=5),
)
def test_engine_agrees_with_brute_force(database, queries):
    """match/match-unique equal the set-theoretic definition (§2), with
    exact_check on so Bloom false positives cannot blur the property."""
    cfg = TagMatchConfig(
        max_partition_size=8, num_gpus=1, batch_timeout_s=None, exact_check=True
    )
    with TagMatch(cfg) as engine:
        for tags, key in database:
            engine.add_set(tags, key)
        engine.consolidate()
        for query in queries:
            expected = sorted(k for tags, k in database if tags <= query)
            got = sorted(engine.match(query).tolist())
            assert got == expected
            assert engine.match_unique(query).tolist() == sorted(set(expected))


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    database=st.lists(
        st.tuples(tag_sets, st.integers(0, 50)), min_size=2, max_size=30
    ),
    removals=st.data(),
)
def test_add_remove_consolidate_invariant(database, removals):
    """After removing a staged association, matching behaves as if the
    pair had never been added."""
    idx = removals.draw(st.integers(0, len(database) - 1))
    removed_tags, removed_key = database[idx]
    cfg = TagMatchConfig(
        max_partition_size=8, num_gpus=1, batch_timeout_s=None, exact_check=True
    )
    with TagMatch(cfg) as engine:
        for tags, key in database:
            engine.add_set(tags, key)
        engine.consolidate()
        engine.remove_set(removed_tags, removed_key)
        engine.consolidate()
        survivors = list(database)
        survivors.remove((removed_tags, removed_key))
        probe = set(removed_tags) | {"probe-tag"}
        expected = sorted(k for tags, k in survivors if tags <= probe)
        assert sorted(engine.match(probe).tolist()) == expected
