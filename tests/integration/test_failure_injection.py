"""Failure injection: capacity exhaustion, misuse, lifecycle edges."""

import numpy as np
import pytest

from repro.core.config import TagMatchConfig
from repro.core.engine import TagMatch
from repro.errors import CapacityError, ConsolidationError, DeviceError, ValidationError
from repro.workloads import generate_twitter_workload


@pytest.fixture(scope="module")
def workload():
    return generate_twitter_workload(num_users=2000, seed=17)


class TestDeviceCapacity:
    def test_consolidate_fails_cleanly_when_gpu_too_small(self, workload):
        # A device too small for the tagset table: consolidate raises the
        # capacity error instead of silently truncating the index.
        cfg = TagMatchConfig(device_memory=16 * 1024, batch_timeout_s=None)
        eng = TagMatch(cfg)
        eng.add_signatures(workload.blocks, workload.keys)
        with pytest.raises(CapacityError):
            eng.consolidate()
        eng.close()

    def test_split_placement_needs_less_per_device(self, workload):
        # The same database that does not fit replicated on tiny devices
        # can fit when partitioned across them.
        blocks, keys = workload.blocks[:2000], workload.keys[:2000]
        # Probe the exact per-device footprint of the replicated table.
        probe = TagMatch(TagMatchConfig(num_gpus=1, batch_timeout_s=None))
        probe.add_signatures(blocks, keys)
        probe.consolidate()
        need = probe.memory_usage().gpu_tagset_bytes
        probe.close()

        replicated = TagMatch(
            TagMatchConfig(
                num_gpus=4, device_memory=int(need * 0.6), batch_timeout_s=None
            )
        )
        replicated.add_signatures(blocks, keys)
        with pytest.raises(CapacityError):
            replicated.consolidate()
        replicated.close()

        split = TagMatch(
            TagMatchConfig(
                num_gpus=4,
                device_memory=int(need * 0.6),
                replicate_tagset_table=False,
                batch_timeout_s=None,
            )
        )
        split.add_signatures(blocks, keys)
        split.consolidate()  # fits: each device holds ~1/4 of the table
        assert split.match_batch(blocks[:1])[0].size > 0
        split.close()


class TestLifecycleMisuse:
    def test_match_before_consolidate(self):
        with TagMatch() as eng:
            eng.add_set({"a"}, 1)
            with pytest.raises(ConsolidationError):
                eng.match({"a"})
            with pytest.raises(ConsolidationError):
                eng.match_stream(np.zeros((1, 3), np.uint64))
            with pytest.raises(ConsolidationError):
                eng.memory_usage()

    def test_operations_after_close(self, workload):
        eng = TagMatch(TagMatchConfig(batch_timeout_s=None))
        eng.add_signatures(workload.blocks[:100], workload.keys[:100])
        eng.consolidate()
        eng.close()
        with pytest.raises(DeviceError):
            eng.match({"anything"})

    def test_bad_inputs_rejected(self):
        with TagMatch() as eng:
            with pytest.raises(ValidationError):
                eng.add_set(set(), 1)
            with pytest.raises(ValidationError):
                eng.add_signatures(np.zeros((2, 5), np.uint64), np.zeros(2))

    def test_empty_then_populated(self, workload):
        """An engine consolidated empty can be populated later."""
        with TagMatch(TagMatchConfig(batch_timeout_s=None)) as eng:
            eng.consolidate()
            assert eng.match({"x"}).size == 0
            eng.add_signatures(workload.blocks[:50], workload.keys[:50])
            eng.consolidate()
            assert eng.num_unique_sets > 0


class TestPipelineRobustness:
    def test_duplicate_queries_in_stream(self, workload):
        cfg = TagMatchConfig(max_partition_size=64, batch_size=16, batch_timeout_s=0.01)
        with TagMatch(cfg) as eng:
            eng.add_signatures(workload.blocks, workload.keys)
            eng.consolidate()
            q = workload.queries(1, seed=3).blocks
            stream = np.repeat(q, 50, axis=0)
            run = eng.match_stream(stream, unique=True)
            first = run.results[0].tolist()
            assert all(r.tolist() == first for r in run.results)

    def test_mixed_matching_and_nonmatching(self, workload):
        cfg = TagMatchConfig(max_partition_size=64, batch_timeout_s=0.01)
        with TagMatch(cfg) as eng:
            eng.add_signatures(workload.blocks, workload.keys)
            eng.consolidate()
            hits = workload.queries(20, seed=4).blocks
            misses = eng.encode_queries(
                [{f"void-{i}"} for i in range(20)]
            )
            stream = np.vstack([hits, misses])
            run = eng.match_stream(stream, unique=True)
            assert all(r.size > 0 for r in run.results[:20])
            assert all(r.size == 0 for r in run.results[20:])
