"""End-to-end integration: workload → engine → results vs the oracle."""

import pytest

from repro.baselines import LinearScanMatcher
from repro.core.config import TagMatchConfig
from repro.core.engine import TagMatch
from repro.workloads import generate_twitter_workload


@pytest.fixture(scope="module")
def workload():
    return generate_twitter_workload(num_users=4000, seed=99)


@pytest.fixture(scope="module")
def engine(workload):
    cfg = TagMatchConfig(
        max_partition_size=256, batch_size=64, num_gpus=2, batch_timeout_s=0.02
    )
    eng = TagMatch(cfg)
    eng.add_signatures(workload.blocks, workload.keys)
    eng.consolidate()
    yield eng
    eng.close()


@pytest.fixture(scope="module")
def oracle(workload):
    matcher = LinearScanMatcher()
    matcher.build(workload.blocks, workload.keys)
    return matcher


class TestEngineAgreesWithOracle:
    def test_sync_match(self, workload, engine, oracle):
        queries = workload.queries(40, seed=1)
        for tags, blocks in zip(queries.tag_sets, queries.blocks):
            got = sorted(engine.match(tags).tolist())
            expected = sorted(oracle.match_blocks(blocks).tolist())
            assert got == expected

    def test_sync_match_unique(self, workload, engine, oracle):
        queries = workload.queries(40, seed=2)
        for tags, blocks in zip(queries.tag_sets, queries.blocks):
            got = engine.match_unique(tags).tolist()
            expected = oracle.match_blocks(blocks, unique=True).tolist()
            assert got == expected

    def test_pipeline_match(self, workload, engine, oracle):
        queries = workload.queries(200, seed=3)
        run = engine.match_stream(queries.blocks)
        for blocks, result in zip(queries.blocks, run.results):
            expected = sorted(oracle.match_blocks(blocks).tolist())
            assert sorted(result.tolist()) == expected

    def test_pipeline_match_unique(self, workload, engine, oracle):
        queries = workload.queries(200, seed=4)
        run = engine.match_stream(queries.blocks, unique=True)
        for blocks, result in zip(queries.blocks, run.results):
            expected = oracle.match_blocks(blocks, unique=True).tolist()
            assert result.tolist() == expected

    def test_every_generated_query_matches_something(self, workload, engine):
        """§4.2.2: the workload generator forces every query to match."""
        queries = workload.queries(100, seed=5)
        run = engine.match_stream(queries.blocks, unique=True)
        assert all(r.size > 0 for r in run.results)

    def test_matched_keys_are_real_users(self, workload, engine):
        queries = workload.queries(50, seed=6)
        run = engine.match_stream(queries.blocks, unique=True)
        for result in run.results:
            if result.size:
                assert result.min() >= 0
                assert result.max() < workload.num_users


class TestIncrementalConsolidation:
    def test_interleaved_adds_and_removes(self, workload):
        cfg = TagMatchConfig(max_partition_size=128, batch_timeout_s=None)
        with TagMatch(cfg) as eng:
            half = workload.num_associations // 2
            eng.add_signatures(workload.blocks[:half], workload.keys[:half])
            eng.consolidate()
            first = eng.num_unique_sets
            eng.add_signatures(workload.blocks[half:], workload.keys[half:])
            eng.consolidate()
            assert eng.num_unique_sets > first
            # removing a known association takes effect
            tags = workload.interests.tag_sets[0]
            key = int(workload.keys[0])
            before = (eng.match(set(tags) | {"x-probe"}) == key).sum()
            eng.remove_set(tags, key)
            eng.consolidate()
            after = (eng.match(set(tags) | {"x-probe"}) == key).sum()
            assert after == before - 1

    def test_repeated_consolidates_stable(self, workload, oracle):
        cfg = TagMatchConfig(max_partition_size=128, batch_timeout_s=None)
        with TagMatch(cfg) as eng:
            eng.add_signatures(workload.blocks, workload.keys)
            eng.consolidate()
            eng.consolidate()  # no staged changes: same result
            queries = workload.queries(20, seed=7)
            for tags, blocks in zip(queries.tag_sets, queries.blocks):
                assert sorted(eng.match(tags).tolist()) == sorted(
                    oracle.match_blocks(blocks).tolist()
                )


class TestPlacementEquivalence:
    @pytest.mark.parametrize("num_gpus,replicate", [(1, True), (2, True), (2, False), (3, False)])
    def test_results_independent_of_gpu_placement(self, workload, oracle, num_gpus, replicate):
        cfg = TagMatchConfig(
            max_partition_size=256,
            num_gpus=num_gpus,
            replicate_tagset_table=replicate,
            batch_timeout_s=0.01,
        )
        with TagMatch(cfg) as eng:
            eng.add_signatures(workload.blocks, workload.keys)
            eng.consolidate()
            queries = workload.queries(60, seed=8)
            run = eng.match_stream(queries.blocks, unique=True)
            for blocks, result in zip(queries.blocks, run.results):
                expected = oracle.match_blocks(blocks, unique=True).tolist()
                assert result.tolist() == expected
