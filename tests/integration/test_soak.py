"""Soak-style integration: sustained streams, rebuilds, and reuse."""

import numpy as np
import pytest

from repro.core.config import TagMatchConfig
from repro.core.engine import TagMatch
from repro.workloads import generate_twitter_workload


@pytest.fixture(scope="module")
def workload():
    return generate_twitter_workload(num_users=3000, seed=41)


class TestSustainedStreams:
    def test_many_consecutive_streams_leak_free(self, workload):
        """Repeated pipeline runs must not leak device memory (buffers
        from query batches and double buffers are freed each run)."""
        cfg = TagMatchConfig(max_partition_size=128, batch_size=32, batch_timeout_s=0.01)
        with TagMatch(cfg) as eng:
            eng.add_signatures(workload.blocks, workload.keys)
            eng.consolidate()
            baseline = sum(d.ledger.allocated_bytes for d in eng.devices)
            qs = workload.queries(64, seed=1)
            for _ in range(5):
                eng.match_stream(qs.blocks, unique=True)
            after = sum(d.ledger.allocated_bytes for d in eng.devices)
            assert after == baseline

    def test_streams_pool_not_exhausted(self, workload):
        """More concurrent batches than streams: dispatch must block and
        recycle the pool rather than fail."""
        cfg = TagMatchConfig(
            max_partition_size=32,
            batch_size=4,
            streams_per_gpu=2,
            num_gpus=1,
            batch_timeout_s=0.005,
        )
        with TagMatch(cfg) as eng:
            eng.add_signatures(workload.blocks[:2000], workload.keys[:2000])
            eng.consolidate()
            qs = workload.queries(200, seed=2)
            run = eng.match_stream(qs.blocks)
            assert run.num_queries == 200

    def test_rebuild_under_use(self, workload):
        """Alternate consolidation and matching several times."""
        cfg = TagMatchConfig(max_partition_size=128, batch_timeout_s=None)
        with TagMatch(cfg) as eng:
            step = workload.num_associations // 4
            reference = None
            for round_ in range(4):
                lo, hi = round_ * step, (round_ + 1) * step
                eng.add_signatures(workload.blocks[lo:hi], workload.keys[lo:hi])
                eng.consolidate()
                qs = workload.queries(16, seed=3)
                results = [
                    sorted(eng.match(t).tolist()) for t in qs.tag_sets
                ]
                if reference is not None:
                    # results can only grow as the database grows
                    for prev, cur in zip(reference, results):
                        assert set(prev) <= set(cur)
                reference = results

    def test_single_gpu_many_threads(self, workload):
        cfg = TagMatchConfig(
            max_partition_size=64, num_gpus=1, num_threads=12, batch_timeout_s=0.01
        )
        with TagMatch(cfg) as eng:
            eng.add_signatures(workload.blocks, workload.keys)
            eng.consolidate()
            qs = workload.queries(128, seed=4)
            run = eng.match_stream(qs.blocks, unique=True)
            spot = np.random.default_rng(0).choice(128, 10, replace=False)
            for qi in spot:
                expected = eng.match_unique(qs.tag_sets[qi]).tolist()
                assert run.results[qi].tolist() == expected
