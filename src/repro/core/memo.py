"""Duplicate-query memoization for the serving layer (§4.2.1).

A pub/sub firehose repeats itself: many published messages carry the
same tag set, hence the same encoded signature, hence — against the same
index generation — exactly the same match result.  :class:`QueryMemo` is
a small thread-safe LRU over frozen-index results keyed on
``(epoch, signature bytes)``.  Keying on the engine epoch makes
invalidation free: a reconsolidation bumps the epoch and every stale
entry simply stops being reachable (and ages out of the LRU).

Only results computed against the *frozen* consolidated index may be
cached; the delta overlay is applied per request on top of the memoized
keys, so live adds/removes are never masked by the cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.errors import ValidationError

__all__ = ["QueryMemo"]


class QueryMemo:
    """Thread-safe LRU of per-signature match results.

    Values are the frozen-index key arrays.  :meth:`put` freezes them
    (``writeable=False``) and :meth:`get` hands out read-only views, so
    a caller that forgets to copy before mutating gets an immediate
    ``ValueError`` instead of silently corrupting every later hit for
    the same signature.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValidationError("memo capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[int, bytes], np.ndarray] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, epoch: int, signature: bytes) -> np.ndarray | None:
        """The memoized frozen-index keys, or ``None`` on a miss."""
        key = (epoch, signature)
        with self._lock:
            keys = self._entries.get(key)
            if keys is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return keys

    def put(self, epoch: int, signature: bytes, keys: np.ndarray) -> np.ndarray:
        """Memoize one frozen-index result, evicting the LRU entry.

        The stored array is a frozen view: the caller keeps its own
        writable reference untouched, but every array the memo hands
        back refuses in-place mutation.  Returns the frozen view so
        callers can propagate it instead of the writable original.
        """
        stored = keys.view()
        stored.setflags(write=False)
        key = (epoch, signature)
        with self._lock:
            self._entries[key] = stored
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return stored

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }
