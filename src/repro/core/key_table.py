"""The key table: set-id → application keys (host side).

Figure 1: the tagset table on the GPU associates every indexed tag set
with a unique id; that id points into the *key table* in CPU memory,
which yields the application keys (user ids in the Twitter workload).
Several keys may share one tag set — the paper's 300 M users collapse to
212 M unique interest sets — so the table maps one set id to a (multi)set
of keys, stored compactly as a flat key array plus per-set offsets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["KeyTable"]


class KeyTable:
    """Compact set-id → keys mapping (CSR-style offsets + flat keys)."""

    def __init__(self, offsets: np.ndarray, keys: np.ndarray) -> None:
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.keys = np.ascontiguousarray(keys, dtype=np.int64)
        if self.offsets.ndim != 1 or self.offsets.size == 0:
            raise ValidationError("offsets must be a non-empty 1-D array")
        if self.offsets[0] != 0 or self.offsets[-1] != self.keys.size:
            raise ValidationError("offsets must start at 0 and end at len(keys)")
        if np.any(np.diff(self.offsets) < 0):
            raise ValidationError("offsets must be non-decreasing")

    @classmethod
    def from_grouped(
        cls, group_ids: np.ndarray, keys: np.ndarray, num_sets: int
    ) -> "KeyTable":
        """Build from parallel ``(set_id, key)`` association arrays.

        ``group_ids[i]`` is the set id that key ``keys[i]`` belongs to.
        Duplicate ``(set, key)`` associations are preserved — ``match``
        returns a multiset (§2).
        """
        group_ids = np.asarray(group_ids, dtype=np.int64)
        keys = np.asarray(keys, dtype=np.int64)
        if group_ids.shape != keys.shape:
            raise ValidationError("group_ids and keys must be parallel")
        if group_ids.size and (group_ids.min() < 0 or group_ids.max() >= num_sets):
            raise ValidationError("group id out of range")
        order = np.argsort(group_ids, kind="stable")
        sorted_keys = keys[order]
        counts = np.bincount(group_ids, minlength=num_sets)
        offsets = np.zeros(num_sets + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return cls(offsets, sorted_keys)

    def __len__(self) -> int:
        """Number of set ids (unique indexed tag sets)."""
        return self.offsets.size - 1

    @property
    def num_keys(self) -> int:
        return self.keys.size

    @property
    def nbytes(self) -> int:
        """Host memory footprint (dominates Figure 9's Host bars)."""
        return self.offsets.nbytes + self.keys.nbytes

    def keys_of(self, set_id: int) -> np.ndarray:
        """Keys associated with one set id."""
        if not 0 <= set_id < len(self):
            raise ValidationError(f"set id {set_id} out of range")
        return self.keys[self.offsets[set_id] : self.offsets[set_id + 1]]

    def keys_of_many(self, set_ids: np.ndarray) -> np.ndarray:
        """Concatenated keys for many set ids (the lookup/reduce gather).

        The result preserves multiset semantics: a set id appearing twice
        contributes its keys twice.
        """
        set_ids = np.asarray(set_ids, dtype=np.int64)
        if set_ids.size == 0:
            return np.empty(0, dtype=np.int64)
        if set_ids.min() < 0 or set_ids.max() >= len(self):
            raise ValidationError("set id out of range")
        starts = self.offsets[set_ids]
        lengths = self.offsets[set_ids + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # Vectorized multi-range gather: build one index array covering
        # [starts[i], starts[i]+lengths[i]) for every i.
        out_offsets = np.zeros(set_ids.size, dtype=np.int64)
        np.cumsum(lengths[:-1], out=out_offsets[1:])
        index = np.arange(total, dtype=np.int64)
        index += np.repeat(starts - out_offsets, lengths)
        return self.keys[index]

    def counts_of_many(self, set_ids: np.ndarray) -> np.ndarray:
        """Number of keys per set id (parallel to ``set_ids``)."""
        set_ids = np.asarray(set_ids, dtype=np.int64)
        return (self.offsets[set_ids + 1] - self.offsets[set_ids]).astype(np.int64)
