"""Balanced recursive partitioning (Algorithm 1, §3.1).

``consolidate()`` splits the database into partitions so that all tag
sets in a partition share a defining bit mask.  Starting from the whole
database with an empty mask, each oversized partition is split on a
*pivot* — a previously unused bit whose one-frequency is closest to 50 %
— into the sets with that bit clear (same mask) and the sets with it set
(mask ∪ {pivot}).  The result is a set of ≤ ``MAX_P``-sized partitions
whose masks drive the pre-process stage.

Two boundary cases the paper's pseudo-code leaves implicit are handled
explicitly here and covered by tests:

* A partition whose rows cannot be distinguished by any unused bit
  (e.g. many identical signatures) is accepted even if it exceeds
  ``MAX_P`` — no pivot can split it.
* The root partition must be split at least once so that every final
  mask is non-empty (the ``mask ≠ ∅`` condition); if the database is so
  small or so uniform that no split is possible, a single partition with
  an empty mask is produced, and the partition table treats it as
  relevant to every query.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.bloom.array import SignatureArray
from repro.errors import ValidationError

__all__ = ["Partition", "PartitioningResult", "balanced_partition"]


@dataclass
class Partition:
    """One partition: its defining mask and the rows it contains."""

    mask: np.ndarray
    indices: np.ndarray

    def __len__(self) -> int:
        return int(self.indices.size)

    @property
    def mask_is_empty(self) -> bool:
        return not bool(self.mask.any())


@dataclass
class PartitioningResult:
    """Partitions plus the statistics the evaluation reports (Figure 8)."""

    partitions: list[Partition]
    elapsed_s: float
    num_sets: int

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def max_size(self) -> int:
        return max((len(p) for p in self.partitions), default=0)

    @property
    def mean_size(self) -> float:
        if not self.partitions:
            return 0.0
        return self.num_sets / len(self.partitions)


def _pick_pivot(
    sub: SignatureArray, used: np.ndarray, size: int, strategy: str
) -> int | None:
    """Choose the split bit, or ``None`` if no unused bit can split.

    ``"balanced"`` is Algorithm 1's rule (frequency closest to 50 %);
    ``"first_unused"`` is the naive alternative the pivot ablation
    compares against (first unused non-degenerate bit position).
    """
    freq = sub.bit_frequencies()
    splittable = (freq > 0) & (freq < size) & ~used
    if not np.any(splittable):
        return None
    if strategy == "first_unused":
        return int(np.argmax(splittable))
    if strategy != "balanced":
        raise ValidationError(f"unknown pivot strategy {strategy!r}")
    distance = np.abs(freq - size / 2.0).astype(float)
    distance[~splittable] = np.inf
    return int(np.argmin(distance))


def balanced_partition(
    blocks: np.ndarray,
    max_partition_size: int,
    width: int,
    pivot_strategy: str = "balanced",
) -> PartitioningResult:
    """Run Algorithm 1 over the unique signature rows ``blocks``.

    Returns partitions whose ``indices`` reference rows of ``blocks``.
    Together the partitions exactly cover the database: indices are
    disjoint and their union is ``range(len(blocks))``.
    """
    if max_partition_size <= 0:
        raise ValidationError("max_partition_size must be positive")
    if blocks.ndim != 2:
        raise ValidationError("blocks must be a 2-D signature array")
    start = time.perf_counter()
    n = blocks.shape[0]
    num_words = blocks.shape[1]
    if n == 0:
        return PartitioningResult([], time.perf_counter() - start, 0)

    arr = SignatureArray(blocks, width=width)
    partitions: list[Partition] = []
    empty_mask = np.zeros(num_words, dtype=np.uint64)
    # Work queue entries: (mask, row indices, used-bit boolean vector).
    queue: deque[tuple[np.ndarray, np.ndarray, np.ndarray]] = deque()
    queue.append((empty_mask, np.arange(n, dtype=np.int64), np.zeros(width, dtype=bool)))

    while queue:
        mask, indices, used = queue.popleft()
        size = indices.size
        if size == 0:
            continue
        mask_nonempty = bool(mask.any())
        if size <= max_partition_size and mask_nonempty:
            partitions.append(Partition(mask=mask, indices=indices))
            continue

        sub = arr.take(indices)
        pivot = _pick_pivot(sub, used, size, pivot_strategy)
        if pivot is None:
            # Indivisible: accept as-is (possibly oversized or with an
            # empty mask — see module docstring).
            partitions.append(Partition(mask=mask, indices=indices))
            continue

        word, offset = divmod(pivot, 64)
        bit = np.uint64(1) << np.uint64(63 - offset)
        has_bit = (sub.blocks[:, word] & bit) != 0
        used_next = used.copy()
        used_next[pivot] = True
        mask_one = mask.copy()
        mask_one[word] |= bit
        queue.append((mask, indices[~has_bit], used_next))
        queue.append((mask_one, indices[has_bit], used_next))

    return PartitioningResult(partitions, time.perf_counter() - start, n)
