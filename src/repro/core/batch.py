"""Per-partition query batching with flush timeouts (§3).

The pre-process stage enqueues each query into the batch of every
relevant partition.  A batch ships to the GPU when it is full — or, to
bound latency for partitions that fill slowly, when it has been sitting
for longer than a configurable timeout (Figure 6 studies this knob).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.results import QueryState
from repro.errors import ValidationError

__all__ = ["Batch", "PartitionBatcher", "BatcherSet"]


@dataclass
class Batch:
    """A full (or flushed) batch of queries bound for one dispatch unit.

    ``partition_id`` is the batcher index — a partition id in the seed
    layout, a fused dispatch-unit id when partition fusing is on.
    """

    partition_id: int
    queries: np.ndarray
    states: list[QueryState]
    _canon: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.states)

    def canonicalise(self) -> tuple[np.ndarray, np.ndarray]:
        """Duplicate-query memoization at batch-build time (§4.2.1).

        Returns ``(unique_rows, inverse)`` with ``unique_rows[inverse[i]]
        == queries[i]``: byte-identical queries (duplicate interests in a
        firehose workload) are matched on the device once and fanned back
        out to their slots at the lookup stage.  Cached, since both the
        dispatch path and tests may ask repeatedly.
        """
        if self._canon is None:
            unique_rows, inverse = np.unique(
                self.queries, axis=0, return_inverse=True
            )
            self._canon = (unique_rows, inverse.reshape(-1).astype(np.int64))
        return self._canon


class PartitionBatcher:
    """Accumulates queries for one partition until full or timed out."""

    def __init__(self, partition_id: int, batch_size: int, num_words: int) -> None:
        if batch_size <= 0:
            raise ValidationError("batch_size must be positive")
        self.partition_id = partition_id
        self.batch_size = batch_size
        self._num_words = num_words
        self._lock = threading.Lock()
        self._rows: list[np.ndarray] = []
        self._states: list[QueryState] = []
        self._oldest: float | None = None

    def add(self, query_row: np.ndarray, state: QueryState) -> Batch | None:
        """Append one query; return a full batch if this filled it."""
        full = self.add_many(query_row.reshape(1, -1), [state])
        return full[0] if full else None

    def add_many(self, rows: np.ndarray, states: list[QueryState]) -> list[Batch]:
        """Append several queries at once; return every filled batch.

        The bulk path serves the vectorized pre-process stage: one call
        per (chunk, partition) pair instead of one per query.
        """
        with self._lock:
            if not self._states:
                self._oldest = time.perf_counter()
            self._rows.append(np.atleast_2d(rows))
            self._states.extend(states)
            return self._emit_full_locked()

    def flush(self) -> Batch | None:
        """Emit whatever is queued, regardless of age (shutdown path)."""
        with self._lock:
            return self._take_remainder_locked()

    def flush_if_stale(self, timeout_s: float) -> Batch | None:
        """Emit the queued batch if its oldest query exceeds the timeout."""
        with self._lock:
            if self._oldest is None:
                return None
            if time.perf_counter() - self._oldest < timeout_s:
                return None
            return self._take_remainder_locked()

    def _emit_full_locked(self) -> list[Batch]:
        """Split off every full ``batch_size`` batch, keep the remainder."""
        if len(self._states) < self.batch_size:
            return []
        queued = np.vstack(self._rows)
        out: list[Batch] = []
        pos = 0
        while len(self._states) - pos >= self.batch_size:
            out.append(
                Batch(
                    partition_id=self.partition_id,
                    queries=queued[pos : pos + self.batch_size],
                    states=self._states[pos : pos + self.batch_size],
                )
            )
            pos += self.batch_size
        self._rows = [queued[pos:]] if pos < len(self._states) else []
        self._states = self._states[pos:]
        self._oldest = time.perf_counter() if self._states else None
        return out

    def _take_remainder_locked(self) -> Batch | None:
        if not self._states:
            return None
        batch = Batch(
            partition_id=self.partition_id,
            queries=np.vstack(self._rows),
            states=self._states,
        )
        self._rows = []
        self._states = []
        self._oldest = None
        return batch

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._states)


class BatcherSet:
    """All partition batchers plus the stale-batch scan for the flusher."""

    def __init__(self, num_partitions: int, batch_size: int, num_words: int) -> None:
        self.batchers = [
            PartitionBatcher(pid, batch_size, num_words)
            for pid in range(num_partitions)
        ]

    def __getitem__(self, partition_id: int) -> PartitionBatcher:
        return self.batchers[partition_id]

    def flush_all(self) -> list[Batch]:
        return [b for b in (batcher.flush() for batcher in self.batchers) if b]

    def flush_stale(self, timeout_s: float) -> list[Batch]:
        return [
            b
            for b in (batcher.flush_if_stale(timeout_s) for batcher in self.batchers)
            if b
        ]

    @property
    def total_pending(self) -> int:
        return sum(b.pending for b in self.batchers)
