"""Per-query result accumulation and the merge stage (§3.4).

For every query flowing through the pipeline TagMatch keeps a counter of
the batches (partitions) the query was forwarded to.  Key lookups from
returning batches accumulate against the query; when pre-processing has
finished *and* the counter drops to zero, the query runs through the
final merge stage: a plain concatenation for ``match`` (multiset
semantics) or a set union for ``match-unique``.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.errors import ReproError

__all__ = ["QueryState", "merge_keys"]


def merge_keys(chunks: list[np.ndarray], unique: bool) -> np.ndarray:
    """The merge stage: combine per-batch key lists for one query."""
    if not chunks:
        return np.empty(0, dtype=np.int64)
    merged = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
    if unique:
        return np.unique(merged)
    return merged


class QueryState:
    """Tracks one in-flight query through the matching pipeline."""

    __slots__ = (
        "query_index",
        "unique",
        "enqueue_time",
        "complete_time",
        "result",
        "on_complete",
        "_lock",
        "_pending_batches",
        "_preprocess_done",
        "_chunks",
        "_done",
    )

    def __init__(self, query_index: int, unique: bool, on_complete=None) -> None:
        self.query_index = query_index
        self.unique = unique
        #: Optional callback fired (from a pipeline worker thread) the
        #: moment this query's merge completes: ``on_complete(state)``.
        self.on_complete = on_complete
        self.enqueue_time = time.perf_counter()
        self.complete_time: float | None = None
        self.result: np.ndarray | None = None
        self._lock = threading.Lock()
        self._pending_batches = 0
        self._preprocess_done = False
        self._chunks: list[np.ndarray] = []
        self._done = threading.Event()

    # ------------------------------------------------------------------
    # Pipeline hooks
    # ------------------------------------------------------------------
    def add_batch(self) -> None:
        """Pre-process forwarded this query into one more batch."""
        self.add_batches(1)

    def add_batches(self, n: int) -> None:
        """Pre-process forwarded this query into ``n`` more batches."""
        if n < 0:
            raise ReproError("batch count must be non-negative")
        with self._lock:
            if self._preprocess_done:
                raise ReproError("add_batch after preprocess_complete")
            self._pending_batches += n

    def preprocess_complete(self) -> None:
        """Pre-processing finished; the query joins no further batches."""
        finalize = False
        with self._lock:
            self._preprocess_done = True
            finalize = self._pending_batches == 0
        if finalize:
            self._finalize()

    def deliver_keys(self, keys: np.ndarray) -> None:
        """One batch returned from the GPU with this query's keys."""
        finalize = False
        with self._lock:
            if self._pending_batches <= 0:
                raise ReproError("deliver_keys without a pending batch")
            if keys.size:
                self._chunks.append(keys)
            self._pending_batches -= 1
            finalize = self._preprocess_done and self._pending_batches == 0
        if finalize:
            self._finalize()

    def _finalize(self) -> None:
        self.result = merge_keys(self._chunks, self.unique)
        self._chunks = []
        self.complete_time = time.perf_counter()
        self._done.set()
        if self.on_complete is not None:
            self.on_complete(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> np.ndarray:
        if not self._done.wait(timeout):
            raise ReproError(f"query {self.query_index} did not complete in time")
        assert self.result is not None
        return self.result

    @property
    def latency_s(self) -> float:
        if self.complete_time is None:
            raise ReproError("query not complete yet")
        return self.complete_time - self.enqueue_time
