"""TagMatch core: the paper's primary contribution (§3).

The engine (:class:`TagMatch`) implements the Table 2 interface on top of
balanced partitioning (Algorithm 1), the partition-table pre-process
index (Algorithm 2), the GPU-resident tagset table, the host-side key
table, and the four-stage batched matching pipeline.
"""

from repro.core.batch import Batch, BatcherSet, PartitionBatcher
from repro.core.config import TagMatchConfig
from repro.core.engine import ConsolidateReport, MemoryUsage, TagMatch
from repro.core.key_table import KeyTable
from repro.core.partition_table import PartitionTable
from repro.core.partitioning import (
    Partition,
    PartitioningResult,
    balanced_partition,
)
from repro.core.pipeline import MatchPipeline, PipelineRun, PipelineStats
from repro.core.results import QueryState, merge_keys
from repro.core.staging import ConsolidatedDatabase, StagingArea
from repro.core.tagset_table import PartitionResidency, TagsetTable

__all__ = [
    "Batch",
    "BatcherSet",
    "ConsolidateReport",
    "ConsolidatedDatabase",
    "KeyTable",
    "MatchPipeline",
    "MemoryUsage",
    "Partition",
    "PartitionBatcher",
    "PartitionResidency",
    "PartitionTable",
    "PartitioningResult",
    "PipelineRun",
    "PipelineStats",
    "QueryState",
    "StagingArea",
    "TagMatch",
    "TagMatchConfig",
    "TagsetTable",
    "balanced_partition",
    "merge_keys",
]
