"""Configuration of the TagMatch engine.

All of the paper's tuning knobs live here: the Bloom-filter geometry
(§3), the maximum partition size ``MAX_P`` that balances CPU and GPU load
(§3.1, Figure 7), the query batch size and flush timeout (§3, Figure 6),
the CPU thread allocation (§4.3.3, Figure 5), and the simulated GPU
topology (two 12 GB cards with 10 streams each on the paper's testbed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bloom.hashing import DEFAULT_NUM_HASHES, DEFAULT_WIDTH
from repro.errors import ValidationError
from repro.gpu.device import DEFAULT_DEVICE_MEMORY, DEFAULT_STREAMS_PER_DEVICE
from repro.gpu.kernels import DEFAULT_THREAD_BLOCK_SIZE
from repro.gpu.timing import CostModel

__all__ = ["TagMatchConfig", "ServiceConfig"]


@dataclass(frozen=True)
class TagMatchConfig:
    """Immutable engine configuration.

    Attributes
    ----------
    width, num_hashes, seed:
        Bloom-filter geometry (the paper uses 192 bits / 7 hashes).
    max_partition_size:
        ``MAX_P`` of Algorithm 1 — the maximum number of tag sets per
        partition.  Large partitions lighten pre-processing but load the
        subset-match stage, and vice versa (Figure 7).
    batch_size:
        Queries per GPU batch.  Must be ≤ 256 because the packed result
        layout uses 8-bit batch-local query ids (§3.3.1).
    batch_timeout_s:
        Flush partially filled batches after this long (``None`` disables
        the timeout, as in the paper's no-timeout latency runs).
    num_threads:
        CPU threads shared by the pre-process and key-lookup stages.
    num_gpus, streams_per_gpu, device_memory:
        Simulated GPU topology.
    thread_block_size, prefilter:
        Kernel shape and the Algorithm 4 pre-filter switch.
    fuse_partitions_below:
        Partitions with fewer rows than this are coalesced into fused
        dispatch units: one kernel launch (and one launch overhead in
        the cost model) covers several small partitions through a
        partition-offset table.  ``0`` disables fusing — every partition
        launches on its own, the seed behaviour.  This is the Figure 7
        small-partition regime, where per-launch overhead dominates.
    coarse_prefilter:
        Hierarchical pre-filtering above Algorithm 4: every partition
        carries an AND-of-rows coarse summary checked (a) during
        pre-processing, rejecting the partition with one containment row
        before it is ever batched, and (b) inside the kernel per fused
        member, together with each thread block's lexicographic lower
        bound.  Results are bitwise identical with the filter on or off.
    query_memo_size:
        Duplicate-query memoization.  ``> 0`` canonicalises each GPU
        batch at build time (byte-identical queries are matched once and
        fanned back out at the lookup/merge stage) and sizes the serving
        layer's LRU of frozen-index results keyed on
        ``(epoch, signature)`` — repeated firehose publishes skip the
        device entirely.  ``0`` disables both.
    replicate_tagset_table:
        ``True`` replicates the tagset table on every GPU (maximal
        inter-GPU parallelism); ``False`` splits partitions across GPUs,
        halving memory per device for extremely large tables (§3).
    exact_check:
        Re-check every Bloom match against the original tag sets, making
        results exact at the cost of storing the sets (§3: "the system or
        the application can perform an additional exact subset check").
    backend:
        Execution backend for the kernel stage: ``"inline"`` (in the
        stream thread, the historical behaviour), ``"thread"`` (shared
        thread pool), or ``"process"`` (shared-memory process pool —
        real multi-core parallelism, §3.3.2's concurrency on the host).
    backend_workers:
        Worker count for the thread/process backends; ``None`` derives
        it from the host core count.  Setting it explicitly also forces
        a process pool on single-core hosts (which otherwise degrade to
        the thread backend with a warning).
    process_preprocess:
        Additionally offload the stage-1 ``relevant_matrix`` scans to
        the process pool (only meaningful with ``backend="process"``).
    cost_model:
        Pricing of simulated device events.
    """

    width: int = DEFAULT_WIDTH
    num_hashes: int = DEFAULT_NUM_HASHES
    seed: int = 0
    max_partition_size: int = 8192
    batch_size: int = 128
    batch_timeout_s: float | None = 0.05
    num_threads: int = 4
    num_gpus: int = 1
    streams_per_gpu: int = DEFAULT_STREAMS_PER_DEVICE
    device_memory: int = DEFAULT_DEVICE_MEMORY
    thread_block_size: int = DEFAULT_THREAD_BLOCK_SIZE
    prefilter: bool = True
    fuse_partitions_below: int = 0
    coarse_prefilter: bool = True
    query_memo_size: int = 0
    replicate_tagset_table: bool = True
    #: Copies of each partition across the GPUs: ``None`` derives it from
    #: ``replicate_tagset_table`` (all GPUs or one); an integer selects
    #: the paper's middle ground of *partial* replication (§3).
    replication_factor: int | None = None
    exact_check: bool = False
    backend: str = "inline"
    backend_workers: int | None = None
    process_preprocess: bool = False
    #: Algorithm 1 pivot rule: "balanced" (the paper's closest-to-50 %
    #: frequency) or "first_unused" (naive ablation).
    pivot_strategy: str = "balanced"
    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.width % 64 != 0:
            raise ValidationError(f"width must be a positive multiple of 64: {self.width}")
        if self.num_hashes <= 0:
            raise ValidationError("num_hashes must be positive")
        if self.max_partition_size <= 0:
            raise ValidationError("max_partition_size must be positive")
        if not 1 <= self.batch_size <= 256:
            raise ValidationError(
                f"batch_size must be in [1, 256] (8-bit query ids), got {self.batch_size}"
            )
        if self.batch_timeout_s is not None and self.batch_timeout_s < 0:
            raise ValidationError("batch_timeout_s must be non-negative or None")
        if self.num_threads <= 0:
            raise ValidationError("num_threads must be positive")
        if self.num_gpus <= 0:
            raise ValidationError("num_gpus must be positive")
        if self.streams_per_gpu <= 0:
            raise ValidationError("streams_per_gpu must be positive")
        if self.thread_block_size <= 0:
            raise ValidationError("thread_block_size must be positive")
        if self.fuse_partitions_below < 0:
            raise ValidationError("fuse_partitions_below must be non-negative")
        if self.query_memo_size < 0:
            raise ValidationError("query_memo_size must be non-negative")
        if self.replication_factor is not None and not (
            1 <= self.replication_factor <= self.num_gpus
        ):
            raise ValidationError(
                "replication_factor must be in [1, num_gpus] when given"
            )
        if self.backend not in ("inline", "thread", "process"):
            raise ValidationError(
                f"unknown backend {self.backend!r}; "
                "expected 'inline', 'thread', or 'process'"
            )
        if self.backend_workers is not None and self.backend_workers <= 0:
            raise ValidationError("backend_workers must be positive when given")
        if self.pivot_strategy not in ("balanced", "first_unused"):
            raise ValidationError(
                f"unknown pivot_strategy {self.pivot_strategy!r}"
            )


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the online pub/sub serving layer (:mod:`repro.service`).

    Attributes
    ----------
    host, port:
        TCP listen address; port 0 picks an ephemeral port (tests).
    ingress_batch_size:
        Publishes coalesced into one pipeline submission.  Bounded by
        the engine's 256-query packed-id limit, like ``batch_size``.
    batch_deadline_s, min_deadline_s, max_deadline_s:
        Flush deadline for partially filled ingress batches.  The
        deadline adapts within ``[min, max]`` using the Figure 6
        insight: a too-short timeout is pathological (half-empty
        batches), a too-long one buys nothing once batches fill — so
        full flushes and starved timeouts shrink it, busy timeouts
        grow it.
    max_inflight:
        Admission-control bound on publishes queued or matching.  Past
        it the server replies ``OVERLOAD`` immediately (bounded-latency
        rejection) instead of buffering without limit.
    conn_inflight:
        Per-connection cap on outstanding publishes; a connection at
        the cap stops being read, which surfaces as TCP backpressure.
    match_threads:
        ``num_threads`` handed to the engine pipeline per ingress batch.
    reconsolidate_threshold:
        Delta-store size (adds + tombstones) that triggers a background
        reconsolidation; ``0`` disables the automatic trigger (the
        ``reconsolidate`` admin verb still works).
    reconsolidate_interval_s:
        How often the background task checks the threshold.
    latency_window:
        Retained for compatibility with the seed's latency reservoir;
        the fixed-bucket histograms need no sample window.
    max_frame_bytes:
        Hard cap on one protocol frame (guards the length prefix).
    trace:
        Enable the span tracer while serving: per-stage latency
        histograms in ``stats``/Prometheus and the ``trace`` verb.
        Costs one ring-buffer append per stage event (<5 % throughput,
        see ``benchmarks/bench_obs_overhead.py``).
    metrics_port:
        ``None`` disables the Prometheus endpoint; ``0`` binds an
        ephemeral port (tests); otherwise the plaintext exposition
        listens on ``(host, metrics_port)``.
    rate_window_s:
        Sliding window of the ``qps`` estimate in the stats verb.
    """

    host: str = "127.0.0.1"
    port: int = 7311
    ingress_batch_size: int = 64
    batch_deadline_s: float = 0.01
    min_deadline_s: float = 0.001
    max_deadline_s: float = 0.1
    max_inflight: int = 1024
    conn_inflight: int = 256
    match_threads: int = 2
    reconsolidate_threshold: int = 512
    reconsolidate_interval_s: float = 0.25
    latency_window: int = 4096
    max_frame_bytes: int = 8 * 1024 * 1024
    trace: bool = True
    metrics_port: int | None = None
    rate_window_s: float = 30.0

    def __post_init__(self) -> None:
        if not 1 <= self.ingress_batch_size <= 256:
            raise ValidationError(
                "ingress_batch_size must be in [1, 256] (8-bit query ids), "
                f"got {self.ingress_batch_size}"
            )
        if self.min_deadline_s <= 0:
            raise ValidationError("min_deadline_s must be positive")
        if not (
            self.min_deadline_s <= self.batch_deadline_s <= self.max_deadline_s
        ):
            raise ValidationError(
                "deadlines must satisfy min <= initial <= max: "
                f"{self.min_deadline_s} <= {self.batch_deadline_s} "
                f"<= {self.max_deadline_s}"
            )
        if self.max_inflight <= 0:
            raise ValidationError("max_inflight must be positive")
        if self.conn_inflight <= 0:
            raise ValidationError("conn_inflight must be positive")
        if self.match_threads <= 0:
            raise ValidationError("match_threads must be positive")
        if self.reconsolidate_threshold < 0:
            raise ValidationError("reconsolidate_threshold must be non-negative")
        if self.reconsolidate_interval_s <= 0:
            raise ValidationError("reconsolidate_interval_s must be positive")
        if self.latency_window <= 0:
            raise ValidationError("latency_window must be positive")
        if self.max_frame_bytes <= 0:
            raise ValidationError("max_frame_bytes must be positive")
        if self.metrics_port is not None and not 0 <= self.metrics_port <= 65535:
            raise ValidationError(
                f"metrics_port must be in [0, 65535] when given, got {self.metrics_port}"
            )
        if self.rate_window_s <= 0:
            raise ValidationError("rate_window_s must be positive")
