"""Configuration of the TagMatch engine.

All of the paper's tuning knobs live here: the Bloom-filter geometry
(§3), the maximum partition size ``MAX_P`` that balances CPU and GPU load
(§3.1, Figure 7), the query batch size and flush timeout (§3, Figure 6),
the CPU thread allocation (§4.3.3, Figure 5), and the simulated GPU
topology (two 12 GB cards with 10 streams each on the paper's testbed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bloom.hashing import DEFAULT_NUM_HASHES, DEFAULT_WIDTH
from repro.errors import ValidationError
from repro.gpu.device import DEFAULT_DEVICE_MEMORY, DEFAULT_STREAMS_PER_DEVICE
from repro.gpu.kernels import DEFAULT_THREAD_BLOCK_SIZE
from repro.gpu.timing import CostModel

__all__ = ["TagMatchConfig"]


@dataclass(frozen=True)
class TagMatchConfig:
    """Immutable engine configuration.

    Attributes
    ----------
    width, num_hashes, seed:
        Bloom-filter geometry (the paper uses 192 bits / 7 hashes).
    max_partition_size:
        ``MAX_P`` of Algorithm 1 — the maximum number of tag sets per
        partition.  Large partitions lighten pre-processing but load the
        subset-match stage, and vice versa (Figure 7).
    batch_size:
        Queries per GPU batch.  Must be ≤ 256 because the packed result
        layout uses 8-bit batch-local query ids (§3.3.1).
    batch_timeout_s:
        Flush partially filled batches after this long (``None`` disables
        the timeout, as in the paper's no-timeout latency runs).
    num_threads:
        CPU threads shared by the pre-process and key-lookup stages.
    num_gpus, streams_per_gpu, device_memory:
        Simulated GPU topology.
    thread_block_size, prefilter:
        Kernel shape and the Algorithm 4 pre-filter switch.
    replicate_tagset_table:
        ``True`` replicates the tagset table on every GPU (maximal
        inter-GPU parallelism); ``False`` splits partitions across GPUs,
        halving memory per device for extremely large tables (§3).
    exact_check:
        Re-check every Bloom match against the original tag sets, making
        results exact at the cost of storing the sets (§3: "the system or
        the application can perform an additional exact subset check").
    backend:
        Execution backend for the kernel stage: ``"inline"`` (in the
        stream thread, the historical behaviour), ``"thread"`` (shared
        thread pool), or ``"process"`` (shared-memory process pool —
        real multi-core parallelism, §3.3.2's concurrency on the host).
    backend_workers:
        Worker count for the thread/process backends; ``None`` derives
        it from the host core count.  Setting it explicitly also forces
        a process pool on single-core hosts (which otherwise degrade to
        the thread backend with a warning).
    process_preprocess:
        Additionally offload the stage-1 ``relevant_matrix`` scans to
        the process pool (only meaningful with ``backend="process"``).
    cost_model:
        Pricing of simulated device events.
    """

    width: int = DEFAULT_WIDTH
    num_hashes: int = DEFAULT_NUM_HASHES
    seed: int = 0
    max_partition_size: int = 8192
    batch_size: int = 128
    batch_timeout_s: float | None = 0.05
    num_threads: int = 4
    num_gpus: int = 1
    streams_per_gpu: int = DEFAULT_STREAMS_PER_DEVICE
    device_memory: int = DEFAULT_DEVICE_MEMORY
    thread_block_size: int = DEFAULT_THREAD_BLOCK_SIZE
    prefilter: bool = True
    replicate_tagset_table: bool = True
    #: Copies of each partition across the GPUs: ``None`` derives it from
    #: ``replicate_tagset_table`` (all GPUs or one); an integer selects
    #: the paper's middle ground of *partial* replication (§3).
    replication_factor: int | None = None
    exact_check: bool = False
    backend: str = "inline"
    backend_workers: int | None = None
    process_preprocess: bool = False
    #: Algorithm 1 pivot rule: "balanced" (the paper's closest-to-50 %
    #: frequency) or "first_unused" (naive ablation).
    pivot_strategy: str = "balanced"
    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.width % 64 != 0:
            raise ValidationError(f"width must be a positive multiple of 64: {self.width}")
        if self.num_hashes <= 0:
            raise ValidationError("num_hashes must be positive")
        if self.max_partition_size <= 0:
            raise ValidationError("max_partition_size must be positive")
        if not 1 <= self.batch_size <= 256:
            raise ValidationError(
                f"batch_size must be in [1, 256] (8-bit query ids), got {self.batch_size}"
            )
        if self.batch_timeout_s is not None and self.batch_timeout_s < 0:
            raise ValidationError("batch_timeout_s must be non-negative or None")
        if self.num_threads <= 0:
            raise ValidationError("num_threads must be positive")
        if self.num_gpus <= 0:
            raise ValidationError("num_gpus must be positive")
        if self.streams_per_gpu <= 0:
            raise ValidationError("streams_per_gpu must be positive")
        if self.thread_block_size <= 0:
            raise ValidationError("thread_block_size must be positive")
        if self.replication_factor is not None and not (
            1 <= self.replication_factor <= self.num_gpus
        ):
            raise ValidationError(
                "replication_factor must be in [1, num_gpus] when given"
            )
        if self.backend not in ("inline", "thread", "process"):
            raise ValidationError(
                f"unknown backend {self.backend!r}; "
                "expected 'inline', 'thread', or 'process'"
            )
        if self.backend_workers is not None and self.backend_workers <= 0:
            raise ValidationError("backend_workers must be positive when given")
        if self.pivot_strategy not in ("balanced", "first_unused"):
            raise ValidationError(
                f"unknown pivot_strategy {self.pivot_strategy!r}"
            )
