"""The four-stage matching pipeline (§3, Figure 1).

Stages: (i) *pre-process* finds the partitions relevant to each query
(Algorithm 2, CPU threads); (ii) *subset match* evaluates full batches of
queries against one partition on a GPU (Algorithms 3–4, submitted through
pooled streams with double-buffered result transfers); (iii) *key
lookup/reduce* maps matched set ids to application keys and groups them
by query; (iv) *merge* combines the per-partition key sets once a query's
outstanding-batch counter returns to zero.

The pipeline maximises parallelism both between and within stages: any
number of CPU threads run pre-processing and key lookup, every device
stream carries its own in-flight batch sequence, and the CPU threads
submit whole copy→kernel→copy sequences asynchronously (§3.3.2), so they
never wait on the GPU.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.batch import Batch, BatcherSet
from repro.core.config import TagMatchConfig
from repro.core.key_table import KeyTable
from repro.core.partition_table import PartitionTable
from repro.core.results import QueryState
from repro.core.tagset_table import TagsetTable
from repro.errors import ReproError
from repro.gpu.doublebuffer import CycleResult, DoubleBufferedResults
from repro.obs import trace
from repro.gpu.packing import unpack_results
from repro.gpu.stream import Stream
from repro.parallel.backend import ExecutionBackend, InlineBackend, KernelParams

__all__ = ["MatchPipeline", "PipelineRun", "PipelineStats", "grouped_key_lookup"]

_FEED_CHUNK = 32


def grouped_key_lookup(
    q_ids: np.ndarray, set_ids: np.ndarray, key_table: KeyTable
) -> list[tuple[int, np.ndarray]]:
    """Stage-3 lookup/reduce: keys per batch-local query id.

    ``q_ids``/``set_ids`` are the parallel unpacked ``(q, s)`` pair
    arrays of one kernel invocation; returns ``(local_q, keys)`` groups.
    Two fast paths avoid the sort-and-split machinery on the common
    shapes: a batch whose pairs all belong to one query (every
    single-query ``match`` call, and any one-hot batch) skips grouping
    entirely, and pairs already sorted by query id (kernels emit blocks
    in query order more often than not) skip the argsort.
    """
    if q_ids.size == 0:
        return []
    first = int(q_ids[0])
    # One pass decides both fast paths: a nondecreasing array whose first
    # and last elements agree is uniform (the converse scan the seed did
    # on top of this was redundant — uniform arrays are always sorted).
    if np.all(q_ids[:-1] <= q_ids[1:]):
        if first == int(q_ids[-1]):
            return [(first, key_table.keys_of_many(set_ids))]
        q_sorted, sets_sorted = q_ids, set_ids
    else:
        order = np.argsort(q_ids, kind="stable")
        q_sorted = q_ids[order]
        sets_sorted = set_ids[order]
    keys = key_table.keys_of_many(sets_sorted)
    key_counts = key_table.counts_of_many(sets_sorted)
    key_offsets = np.zeros(q_sorted.size + 1, dtype=np.int64)
    np.cumsum(key_counts, out=key_offsets[1:])
    boundaries = np.nonzero(np.diff(q_sorted))[0] + 1
    group_starts = np.concatenate(([0], boundaries))
    group_ends = np.concatenate((boundaries, [q_sorted.size]))
    return [
        (int(q_sorted[gs]), keys[key_offsets[gs] : key_offsets[ge]])
        for gs, ge in zip(group_starts, group_ends)
    ]


@dataclass
class PipelineStats:
    """Aggregate counters over one pipeline run."""

    batches: int = 0
    kernel_invocations: int = 0
    pairs: int = 0
    full_flushes: int = 0
    timeout_flushes: int = 0
    shutdown_flushes: int = 0
    simulated_kernel_s: float = 0.0
    #: Wall-clock time spent inside kernel invocations (the work a real
    #: deployment would offload to the GPUs).
    kernel_wall_s: float = 0.0
    #: Worker-thread split of the run (Figure 5's x-axis): their sum is
    #: exactly the ``num_threads`` the run was asked for.
    pre_workers: int = 0
    lookup_workers: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_batch(self, reason: str) -> None:
        with self._lock:
            self.batches += 1
            if reason == "full":
                self.full_flushes += 1
            elif reason == "timeout":
                self.timeout_flushes += 1
            else:
                self.shutdown_flushes += 1

    def record_kernel(self, pairs: int, simulated_s: float, wall_s: float = 0.0) -> None:
        with self._lock:
            self.kernel_invocations += 1
            self.pairs += pairs
            self.simulated_kernel_s += simulated_s
            self.kernel_wall_s += wall_s


@dataclass
class PipelineRun:
    """Outcome of one pipeline run over a query stream."""

    results: list[np.ndarray]
    latencies_s: np.ndarray
    elapsed_s: float
    stats: PipelineStats
    #: Index generation this run was served from (``engine.epoch``);
    #: the serving layer stamps replies with it so epoch swaps are
    #: observable from the outside.
    epoch: int = 0

    @property
    def num_queries(self) -> int:
        return len(self.results)

    @property
    def throughput_qps(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.num_queries / self.elapsed_s

    @property
    def output_keys(self) -> int:
        """Total keys emitted (the *output throughput* of Figure 3)."""
        return int(sum(r.size for r in self.results))


class MatchPipeline:
    """Drives query streams through the four matching stages."""

    def __init__(
        self,
        partition_table: PartitionTable,
        tagset_table: TagsetTable,
        key_table: KeyTable,
        config: TagMatchConfig,
        backend: ExecutionBackend | None = None,
        epoch: int = 0,
    ) -> None:
        self.partition_table = partition_table
        self.tagset_table = tagset_table
        self.key_table = key_table
        self.config = config
        #: Index generation of the tables this pipeline serves (see
        #: :attr:`PipelineRun.epoch`).
        self.epoch = epoch
        #: Where stage-2 kernels execute; the engine passes the backend
        #: selected by ``config.backend``, direct constructions default
        #: to inline (the historical behaviour).
        self.backend = (
            backend
            if backend is not None
            else InlineBackend(tagset_table, KernelParams.from_config(config))
        )
        #: Per-lookup-thread unpack scratch (see :meth:`_unpack_scratch`).
        self._tls = threading.local()

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def run(
        self,
        query_blocks: np.ndarray,
        unique: bool = False,
        num_threads: int | None = None,
        batch_timeout_s: float | None | str = "config",
        arrival_rate_qps: float | None = None,
        on_result=None,
    ) -> PipelineRun:
        """Match every row of ``query_blocks`` and wait for completion.

        ``arrival_rate_qps`` paces query arrival (used by the latency
        experiment of Figure 6); by default queries arrive as fast as the
        pre-process stage accepts them.  ``on_result(query_index, keys)``,
        if given, is invoked from a pipeline worker thread the moment each
        query's merge completes — the push-style delivery a messaging
        system needs; it must be thread-safe and fast.
        """
        if query_blocks.ndim != 2:
            raise ReproError("query_blocks must be a 2-D block array")
        timeout = (
            self.config.batch_timeout_s if batch_timeout_s == "config" else batch_timeout_s
        )
        threads = num_threads if num_threads is not None else self.config.num_threads
        n = query_blocks.shape[0]
        states: list[QueryState | None] = [None] * n
        stats = PipelineStats()

        # Batches form per dispatch unit: with partition fusing each
        # batcher covers a whole run of small partitions, so one flush
        # becomes one fused kernel launch.
        num_units = self.tagset_table.num_units
        fused = num_units != self.partition_table.num_partitions
        unit_starts = self.tagset_table.unit_starts
        batchers = BatcherSet(
            num_units,
            self.config.batch_size,
            query_blocks.shape[1],
        )
        work: queue.Queue[np.ndarray | None] = queue.Queue()
        completions: queue.Queue[CycleResult | None] = queue.Queue()
        double_buffers: dict[Stream, DoubleBufferedResults] = {}
        db_lock = threading.Lock()
        stop_flusher = threading.Event()

        def buffer_for(stream: Stream) -> DoubleBufferedResults:
            # Called only from within ops running on `stream`, but the
            # dict itself is shared across streams.
            with db_lock:
                db = double_buffers.get(stream)
                if db is None:
                    db = DoubleBufferedResults(
                        stream.device, capacity_pairs=4 * self.config.batch_size
                    )
                    double_buffers[stream] = db
                return db

        # ---------------- stage 2: GPU dispatch ----------------
        backend = self.backend

        memoize = self.config.query_memo_size > 0

        def dispatch(batch: Batch, reason: str) -> None:
            stats.record_batch(reason)
            unit_id = batch.partition_id
            residency = self.tagset_table.unit_residency(unit_id)
            device = residency.device
            stream = device.acquire_stream()

            # Duplicate-query memoization: byte-identical queries in the
            # batch ride the device once; the inverse map fans the keys
            # back out to every duplicate slot at the lookup stage.
            queries = batch.queries
            inverse = None
            if memoize:
                unique_rows, inv = batch.canonicalise()
                if unique_rows.shape[0] < len(batch.states):
                    queries, inverse = unique_rows, inv

            def copy_in_kernel_and_push():
                # The copy-in / kernel / result-push sequence of §3.3.2,
                # submitted as one FIFO unit on the acquired stream.  The
                # kernel itself runs wherever the execution backend puts
                # it (inline / thread pool / shared-memory process pool);
                # the stream op holds the in-flight slot until the packed
                # results are back, like a CPU thread awaiting its CUDA
                # stream.
                qbuf = device.htod(queries, label="query-batch")
                kernel_start = time.perf_counter()
                result = backend.run_kernel(
                    unit_id,
                    qbuf.array(),
                    residency=residency,
                    arena=stream.arena,
                )
                kernel_wall = time.perf_counter() - kernel_start
                qbuf.free()
                # Simulated device time is charged here, backend-agnostic:
                # worker processes cannot reach this device's clock.
                device.clock.add_kernel(result.simulated_time_s)
                stats.record_kernel(
                    result.num_pairs, result.simulated_time_s, kernel_wall
                )
                delivered = buffer_for(stream).push(
                    result.packed, result.num_pairs, meta=(batch.states, inverse)
                )
                if delivered is not None:
                    completions.put(delivered)

            stream.enqueue(copy_in_kernel_and_push, label="copyin-match-copyout")
            # Asynchronous submission: release the stream immediately and
            # let its FIFO worker execute the sequence (§3.3.2).
            device.release_stream(stream)

        # ---------------- stage 1: pre-process ----------------
        def preprocess_worker(also_lookup: bool = False) -> None:
            while True:
                chunk = work.get()
                if chunk is None:
                    return
                with trace.span("pre_process", queries=int(chunk.size)):
                    rows = query_blocks[chunk]
                    # Vectorized Algorithm 2 over the whole chunk: one
                    # dense scan of the compact mask matrix, optionally
                    # offloaded to the execution backend's worker pool.
                    matrix = backend.relevant_matrix(rows)
                    if matrix is None:
                        matrix = self.partition_table.relevant_matrix(rows)
                    if fused:
                        # Collapse partition columns to dispatch units: a
                        # unit is relevant when any member partition is.
                        matrix = np.logical_or.reduceat(matrix, unit_starts, axis=1)
                    counts = matrix.sum(axis=1)
                    chunk_states: list[QueryState] = []
                    for local, qi in enumerate(chunk):
                        state = states[qi]
                        assert state is not None
                        chunk_states.append(state)
                        if counts[local]:
                            state.add_batches(int(counts[local]))
                    q_local, p_idx = np.nonzero(matrix)
                    if p_idx.size:
                        order = np.argsort(p_idx, kind="stable")
                        q_sorted = q_local[order]
                        p_sorted = p_idx[order]
                        boundaries = np.nonzero(np.diff(p_sorted))[0] + 1
                        starts = np.concatenate(([0], boundaries))
                        ends = np.concatenate((boundaries, [p_sorted.size]))
                        for gs, ge in zip(starts, ends):
                            pid = int(p_sorted[gs])
                            members = q_sorted[gs:ge]
                            full_batches = batchers[pid].add_many(
                                rows[members],
                                [chunk_states[m] for m in members],
                            )
                            for full in full_batches:
                                dispatch(full, "full")
                    for state in chunk_states:
                        state.preprocess_complete()
                if also_lookup:
                    drain_completions()

        # ---------------- stages 3+4: lookup/reduce + merge ----------------
        def drain_completions() -> None:
            """Non-blocking lookup/reduce sweep (single-thread mode)."""
            while True:
                try:
                    item = completions.get_nowait()
                except queue.Empty:
                    return
                if item is not None:
                    self._deliver(item)

        def lookup_worker() -> None:
            while True:
                item = completions.get()
                if item is None:
                    return
                self._deliver(item)

        # ---------------- timeout flusher ----------------
        def flusher() -> None:
            assert timeout is not None
            interval = max(timeout / 4.0, 1e-3)
            while not stop_flusher.wait(interval):
                for batch in batchers.flush_stale(timeout):
                    dispatch(batch, "timeout")
                self._flush_double_buffers(double_buffers, db_lock, completions)

        # Total workers equal the requested thread count exactly (the
        # Figure 5 x-axis): with a single thread one worker serves both
        # the pre-process and lookup queues instead of spawning two.
        if threads == 1:
            n_pre, n_lookup = 1, 0
        else:
            n_pre = max(1, threads // 2)
            n_lookup = max(1, threads - n_pre)
        stats.pre_workers = n_pre
        stats.lookup_workers = n_lookup
        pre_threads = [
            threading.Thread(
                target=preprocess_worker,
                kwargs={"also_lookup": n_lookup == 0},
                daemon=True,
                name=f"pre-{i}",
            )
            for i in range(n_pre)
        ]
        lookup_threads = [
            threading.Thread(target=lookup_worker, daemon=True, name=f"lookup-{i}")
            for i in range(n_lookup)
        ]
        flusher_thread = None
        if timeout is not None:
            flusher_thread = threading.Thread(target=flusher, daemon=True, name="flusher")

        callback = None
        if on_result is not None:
            def callback(state: QueryState) -> None:
                on_result(state.query_index, state.result)

        start = time.perf_counter()
        for t in pre_threads + lookup_threads:
            t.start()
        if flusher_thread:
            flusher_thread.start()

        # Feed queries (optionally paced to a target arrival rate).
        for lo in range(0, n, _FEED_CHUNK):
            chunk = np.arange(lo, min(lo + _FEED_CHUNK, n))
            for qi in chunk:
                states[qi] = QueryState(int(qi), unique, on_complete=callback)
            work.put(chunk)
            if arrival_rate_qps:
                target = start + (lo + chunk.size) / arrival_rate_qps
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)

        for _ in pre_threads:
            work.put(None)
        for t in pre_threads:
            t.join()

        # Shutdown: flush partial batches, then drain the device streams
        # and the deferred double-buffer cycles.
        for batch in batchers.flush_all():
            dispatch(batch, "shutdown")
        if flusher_thread:
            stop_flusher.set()
            flusher_thread.join()
        for device in self.tagset_table.devices:
            device.synchronize()
        self._flush_double_buffers(double_buffers, db_lock, completions)
        for device in self.tagset_table.devices:
            device.synchronize()
        if n_lookup == 0:
            # Single-thread mode: every cycle is enqueued by now (both
            # device barriers passed), so the caller thread finishes the
            # lookup/reduce work itself.
            drain_completions()

        # Wait for every query to finalize, then stop lookup workers.
        for state in states:
            assert state is not None
            state.wait(timeout=120.0)
        elapsed = time.perf_counter() - start
        for _ in lookup_threads:
            completions.put(None)
        for t in lookup_threads:
            t.join()
        for db in double_buffers.values():
            db.free()

        results = [s.result for s in states]  # type: ignore[misc]
        latencies = np.array([s.latency_s for s in states])  # type: ignore[union-attr]
        return PipelineRun(
            results=results,
            latencies_s=latencies,
            elapsed_s=elapsed,
            stats=stats,
            epoch=self.epoch,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _flush_double_buffers(
        self,
        double_buffers: dict[Stream, DoubleBufferedResults],
        db_lock: threading.Lock,
        completions: queue.Queue,
    ) -> None:
        """Enqueue a flush op on every stream with a deferred cycle."""
        with db_lock:
            items = list(double_buffers.items())
        for stream, db in items:
            def flush_op(db=db):
                delivered = db.flush()
                if delivered is not None:
                    completions.put(delivered)

            if not stream.closed:
                stream.enqueue(flush_op, label="flush-results")

    def _unpack_scratch(self, num_pairs: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-lookup-thread reusable unpack buffers (zero-allocation
        steady state for stage 3; each delivery is confined to one
        thread, so thread-local scratch is race-free)."""
        tls = self._tls
        q_buf = getattr(tls, "q_buf", None)
        if q_buf is None or q_buf.shape[0] < num_pairs:
            capacity = max(num_pairs, 4 * self.config.batch_size)
            tls.q_buf = np.empty(capacity, dtype=np.uint8)
            tls.s_buf = np.empty(capacity, dtype=np.uint32)
        return tls.q_buf, tls.s_buf

    def _deliver(self, cycle: CycleResult) -> None:
        """Key lookup/reduce for one returned batch (stage 3).

        ``cycle.meta`` is ``(states, inverse)``: with duplicate-query
        memoization the kernel matched only the unique query rows and
        ``inverse`` maps each original slot to its unique row; every
        duplicate slot receives the (shared, read-only) key chunk of its
        representative.  Without memoization ``inverse`` is ``None`` and
        slots map one-to-one.
        """
        with trace.span("post_process", pairs=int(cycle.num_pairs)):
            batch_states, inverse = cycle.meta
            num_slots = len(batch_states) if inverse is None else int(inverse.max()) + 1
            empty = np.empty(0, dtype=np.int64)
            if cycle.num_pairs == 0:
                for state in batch_states:
                    state.deliver_keys(empty)
                return
            q_ids, set_ids = unpack_results(
                cycle.packed, cycle.num_pairs, out=self._unpack_scratch(cycle.num_pairs)
            )
            seen = np.zeros(num_slots, dtype=bool)
            chunks: list[np.ndarray | None] = [None] * num_slots
            for local_q, chunk in grouped_key_lookup(
                q_ids, set_ids.astype(np.int64), self.key_table
            ):
                chunks[local_q] = chunk
                seen[local_q] = True
            if inverse is None:
                for local_q, state in enumerate(batch_states):
                    state.deliver_keys(chunks[local_q] if seen[local_q] else empty)
            else:
                for slot, state in enumerate(batch_states):
                    local_q = int(inverse[slot])
                    state.deliver_keys(chunks[local_q] if seen[local_q] else empty)
