"""The partition table and pre-process stage (Algorithm 2, §3.2).

The partition table is a compact inverted index of partition masks: an
array ``PT`` of ``width`` vectors, where ``PT[j]`` holds the masks (and
partition ids) whose *leftmost one-bit* is at position ``j``.  To
pre-process a query ``q``, Algorithm 2 scans the one-bit positions of
``q`` and, for each position ``j``, checks every mask in ``PT[j]`` for
bitwise containment in ``q``.  A mask whose leftmost one-bit is not among
``q``'s one-bits can never be a subset of ``q``, so the index never
misses a relevant partition.

The subset checks within a slot are vectorized; the table itself is tiny
(one row per partition) which is what makes this stage cache-efficient in
the paper's C++ implementation.
"""

from __future__ import annotations

import numpy as np

from repro.bloom.array import SignatureArray
from repro.bloom.ops import containment_matrix
from repro.core.partitioning import Partition
from repro.errors import ValidationError

__all__ = ["PartitionTable"]


class PartitionTable:
    """Inverted index from leftmost one-bit position to partition masks.

    ``coarse_masks``, when given, holds one AND-of-rows summary per
    partition (the level-1 filter of the hierarchical pre-filter).  Every
    row of a partition contains all of the common bits, so any matching
    row forces the common mask to be a subset of the query — the index
    built from ``mask | common`` is therefore still exact, but rejects
    strictly more irrelevant partitions than the pivot mask alone
    (``mask ⊆ common`` because the pivot bits appear in every row).
    """

    def __init__(
        self,
        partitions: list[Partition],
        width: int,
        coarse_masks: np.ndarray | None = None,
    ) -> None:
        if width <= 0 or width % 64 != 0:
            raise ValidationError("width must be a positive multiple of 64")
        self.width = width
        self.num_partitions = len(partitions)
        num_words = width // 64

        masks = np.zeros((len(partitions), num_words), dtype=np.uint64)
        for i, partition in enumerate(partitions):
            masks[i] = partition.mask
        if coarse_masks is not None:
            if coarse_masks.shape != masks.shape:
                raise ValidationError(
                    "coarse_masks must be one block row per partition"
                )
            np.bitwise_or(masks, coarse_masks, out=masks)
        #: Dense mask matrix used by the vectorized batch pre-process.
        self._dense_masks = masks
        arr = SignatureArray(masks, width=width)
        leftmost = arr.leftmost_one_positions()

        #: Partitions with an empty mask match every query (see the
        #: boundary cases in :mod:`repro.core.partitioning`).
        self.always_relevant = np.nonzero(leftmost == width)[0].astype(np.int64)

        # slot_masks[j]: (m_j, num_words) masks; slot_ids[j]: partition ids.
        self._slot_masks: list[np.ndarray | None] = [None] * width
        self._slot_ids: list[np.ndarray | None] = [None] * width
        for j in range(width):
            rows = np.nonzero(leftmost == j)[0]
            if rows.size:
                self._slot_masks[j] = masks[rows]
                self._slot_ids[j] = rows.astype(np.int64)

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def relevant_partitions(self, query: np.ndarray) -> np.ndarray:
        """Ids of all partitions whose mask is a bitwise subset of ``query``.

        This is the pre-process stage for one query.  Complexity is
        bounded by the number of one-bits of the query times the masks
        per slot, independent of how masks distribute over positions.
        """
        q = np.asarray(query, dtype=np.uint64).reshape(-1)
        expected_words = self.width // 64
        if q.shape[0] != expected_words:
            raise ValidationError("query block count mismatch")

        relevant = [self.always_relevant] if self.always_relevant.size else []
        for j in _one_bit_positions(q):
            masks = self._slot_masks[j]
            if masks is None:
                continue
            hits = ~np.any(masks & ~q, axis=1)
            if hits.any():
                relevant.append(self._slot_ids[j][hits])
        if not relevant:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(relevant)

    def relevant_matrix(self, queries: np.ndarray) -> np.ndarray:
        """Batch pre-process: ``(num_queries, num_partitions)`` relevance.

        Semantically identical to running :meth:`relevant_partitions` on
        every row (property-tested), but evaluated as one dense broadcast
        over the compact mask matrix — the NumPy analogue of the paper's
        cache-efficient scan of the partition table.  The pipeline's
        pre-process stage uses this on each chunk of arriving queries.
        """
        if queries.ndim != 2 or queries.shape[1] != self.width // 64:
            raise ValidationError("queries must be (n, num_words) blocks")
        if self.num_partitions == 0:
            return np.zeros((queries.shape[0], 0), dtype=bool)
        return containment_matrix(self._dense_masks, queries).T

    @property
    def dense_masks(self) -> np.ndarray:
        """The compact ``(num_partitions, num_words)`` mask matrix.

        Exposed for execution backends that replicate the stage-1 scan
        in worker processes (the matrix is tiny: one row per partition).
        """
        return self._dense_masks

    @property
    def nbytes(self) -> int:
        """Host memory of the table (small: one mask row per partition)."""
        total = self.always_relevant.nbytes
        for masks, ids in zip(self._slot_masks, self._slot_ids):
            if masks is not None:
                total += masks.nbytes + ids.nbytes
        return total

    def slot_sizes(self) -> np.ndarray:
        """Masks per slot (used by tests for the distribution property)."""
        return np.array(
            [0 if m is None else m.shape[0] for m in self._slot_masks],
            dtype=np.int64,
        )


def _one_bit_positions(q: np.ndarray) -> np.ndarray:
    """Positions of the one-bits of a block vector, ascending."""
    big_endian = q.astype(">u8").view(np.uint8)
    bits = np.unpackbits(big_endian)
    return np.nonzero(bits)[0]
