"""The TagMatch engine: the public interface of Table 2.

``add-set``/``remove-set`` stage changes, ``consolidate`` rebuilds the
partitioned index (Algorithm 1) and uploads the tagset table to the
simulated GPUs, and ``match``/``match-unique`` answer subset queries —
synchronously for single queries, or through the four-stage batched
pipeline for high-throughput streams (:meth:`TagMatch.match_stream`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.bloom.hashing import TagHasher
from repro.core.config import TagMatchConfig
from repro.core.key_table import KeyTable
from repro.core.partition_table import PartitionTable
from repro.core.partitioning import PartitioningResult, balanced_partition
from repro.core.pipeline import MatchPipeline, PipelineRun, grouped_key_lookup
from repro.core.results import merge_keys
from repro.core.staging import ConsolidatedDatabase, StagingArea
from repro.core.tagset_table import TagsetTable
from repro.errors import ConsolidationError, DeviceError, ValidationError
from repro.gpu.device import Device
from repro.gpu.kernels import subset_match_kernel
from repro.parallel.backend import ExecutionBackend, create_backend

__all__ = ["TagMatch", "ConsolidateReport", "MemoryUsage"]


@dataclass
class ConsolidateReport:
    """What one ``consolidate()`` call did (Figure 8 reports these)."""

    num_associations: int
    num_unique_sets: int
    partitioning: PartitioningResult
    elapsed_s: float


@dataclass
class MemoryUsage:
    """Host vs GPU memory breakdown (Figure 9)."""

    key_table_bytes: int
    partition_table_bytes: int
    database_bytes: int
    gpu_tagset_bytes: int
    gpu_total_bytes: int

    @property
    def host_bytes(self) -> int:
        return self.key_table_bytes + self.partition_table_bytes + self.database_bytes


class TagMatch:
    """Subset-matching engine over a hybrid CPU/(simulated) GPU system."""

    def __init__(self, config: TagMatchConfig | None = None) -> None:
        self.config = config if config is not None else TagMatchConfig()
        self.hasher = TagHasher(
            width=self.config.width,
            num_hashes=self.config.num_hashes,
            seed=self.config.seed,
        )
        self.devices = [
            Device(
                device_id=i,
                memory_capacity=self.config.device_memory,
                cost_model=self.config.cost_model,
                num_streams=self.config.streams_per_gpu,
            )
            for i in range(self.config.num_gpus)
        ]
        self._store_tags = self.config.exact_check
        self._staging = StagingArea(self.hasher, store_tags=self._store_tags)
        self._database: ConsolidatedDatabase | None = None
        self._exact_sets: dict[int, list[frozenset[str]]] = {}
        self.key_table: KeyTable | None = None
        self.partition_table: PartitionTable | None = None
        self.tagset_table: TagsetTable | None = None
        self.backend: ExecutionBackend | None = None
        self.pipeline: MatchPipeline | None = None
        self.last_consolidate: ConsolidateReport | None = None
        #: Index generation: bumped on every consolidate()/snapshot
        #: restore.  The serving layer stamps results with the epoch that
        #: produced them, which is how reconsolidation swaps are observed
        #: without ever blocking readers.
        self.epoch = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Table 2: add-set / remove-set / consolidate
    # ------------------------------------------------------------------
    def add_set(self, tags, key: int) -> None:
        """Stage the addition of a tag set with an associated key."""
        self._staging.stage_add(tags, key)

    def add_signatures(self, blocks: np.ndarray, keys: np.ndarray) -> None:
        """Bulk fast path: stage pre-encoded signatures (benchmark loads)."""
        if self._store_tags:
            raise ValidationError(
                "bulk signature staging is incompatible with exact_check "
                "(original tag sets are required for the exact subset check)"
            )
        self._staging.stage_add_bulk(blocks, keys)

    def remove_set(self, tags, key: int) -> None:
        """Stage the removal of one (tag set, key) association."""
        self._staging.stage_remove(tags, key)

    def remove_signature(self, blocks, key: int) -> None:
        """Stage a removal by pre-encoded signature (delta tombstones)."""
        self._staging.stage_remove_signature(blocks, key)

    @classmethod
    def from_signatures(
        cls,
        blocks: np.ndarray,
        keys: np.ndarray,
        config: TagMatchConfig | None = None,
    ) -> "TagMatch":
        """Build and consolidate an engine from association arrays.

        This is the rebuild primitive of the serving layer: background
        reconsolidation folds (frozen database ∪ delta adds − tombstones)
        into a fresh engine off the hot path, then swaps it in.
        """
        engine = cls(config)
        if len(blocks):
            engine.add_signatures(blocks, keys)
        engine.consolidate()
        return engine

    def consolidate(self) -> ConsolidateReport:
        """Apply staged changes and rebuild the partitioned index."""
        start = time.perf_counter()
        self._database = self._staging.apply(self._database)
        blocks = self._database.blocks
        keys = self._database.keys

        unique_blocks, inverse = (
            np.unique(blocks, axis=0, return_inverse=True)
            if len(blocks)
            else (np.empty((0, self.hasher.num_blocks), dtype=np.uint64), np.empty(0, np.int64))
        )
        inverse = inverse.reshape(-1)
        self.key_table = KeyTable.from_grouped(inverse, keys, unique_blocks.shape[0])

        if self._store_tags:
            self._exact_sets = {}
            assert self._database.tag_sets is not None
            for row, tags in zip(inverse, self._database.tag_sets):
                self._exact_sets.setdefault(int(row), []).append(tags)

        partitioning = balanced_partition(
            unique_blocks,
            self.config.max_partition_size,
            self.config.width,
            pivot_strategy=self.config.pivot_strategy,
        )
        self._build_tables(unique_blocks, partitioning.partitions)
        self.epoch += 1
        self._install_backend()
        self.last_consolidate = ConsolidateReport(
            num_associations=len(self._database),
            num_unique_sets=unique_blocks.shape[0],
            partitioning=partitioning,
            elapsed_s=time.perf_counter() - start,
        )
        return self.last_consolidate

    def _build_tables(self, unique_blocks: np.ndarray, partitions) -> None:
        """(Re)build the partition + tagset tables for a fresh index.

        With ``coarse_prefilter`` on, the partition table indexes the
        effective mask ``pivot | AND-of-rows`` per partition — the
        level-1 hierarchical filter that rejects whole partitions during
        pre-processing with one containment row (exact, because any
        matching row forces every common bit into the query).
        """
        coarse_masks = None
        if self.config.coarse_prefilter and partitions:
            num_words = self.config.width // 64
            coarse_masks = np.zeros((len(partitions), num_words), dtype=np.uint64)
            for i, partition in enumerate(partitions):
                if len(partition.indices):
                    coarse_masks[i] = np.bitwise_and.reduce(
                        unique_blocks[partition.indices], axis=0
                    )
        self.partition_table = PartitionTable(
            partitions, self.config.width, coarse_masks=coarse_masks
        )
        if self.tagset_table is not None:
            self.tagset_table.free()
        self.tagset_table = TagsetTable(
            unique_blocks,
            partitions,
            self.devices,
            self.config.width,
            replicate=self.config.replicate_tagset_table,
            thread_block_size=self.config.thread_block_size,
            replication_factor=self.config.replication_factor,
            fuse_partitions_below=self.config.fuse_partitions_below,
        )

    def _install_backend(self) -> None:
        """(Re)build the execution backend and pipeline after an index
        rebuild.  The process backend publishes the fresh partitions to
        shared memory here — once per consolidation, like the one-time
        host→device upload of the tagset table."""
        if self.backend is not None:
            self.backend.close()
        self.backend = create_backend(
            self.config, self.tagset_table, self.partition_table
        )
        for device in self.devices:
            device.attach_backend(self.backend)
        self.pipeline = MatchPipeline(
            self.partition_table,
            self.tagset_table,
            self.key_table,
            self.config,
            backend=self.backend,
            epoch=self.epoch,
        )

    # ------------------------------------------------------------------
    # Snapshots (see repro.core.snapshot)
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist the consolidated index to a ``.npz`` snapshot."""
        from repro.core.snapshot import save_snapshot

        save_snapshot(self, path)

    @classmethod
    def load(cls, path: str, config: TagMatchConfig | None = None) -> "TagMatch":
        """Rebuild an engine from a snapshot without re-partitioning."""
        from repro.core.snapshot import load_snapshot

        return load_snapshot(path, config=config)

    def _restore(self, db_blocks, db_keys, partitions) -> None:
        """Install a snapshot: database + precomputed partition layout."""
        start = time.perf_counter()
        self._database = ConsolidatedDatabase(db_blocks, db_keys)
        unique_blocks, inverse = (
            np.unique(db_blocks, axis=0, return_inverse=True)
            if len(db_blocks)
            else (
                np.empty((0, self.hasher.num_blocks), dtype=np.uint64),
                np.empty(0, np.int64),
            )
        )
        inverse = inverse.reshape(-1)
        self.key_table = KeyTable.from_grouped(
            inverse, db_keys, unique_blocks.shape[0]
        )
        partitioning = PartitioningResult(
            partitions=partitions, elapsed_s=0.0, num_sets=unique_blocks.shape[0]
        )
        self._build_tables(unique_blocks, partitions)
        self.epoch += 1
        self._install_backend()
        self.last_consolidate = ConsolidateReport(
            num_associations=len(self._database),
            num_unique_sets=unique_blocks.shape[0],
            partitioning=partitioning,
            elapsed_s=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    # Table 2: match / match-unique
    # ------------------------------------------------------------------
    def encode(self, tags) -> np.ndarray:
        """Encode a tag set into its query block vector."""
        return np.array(self.hasher.encode_set(tags), dtype=np.uint64)

    def encode_queries(self, tag_sets) -> np.ndarray:
        """Encode many query tag sets into an ``(n, blocks)`` array."""
        return self.hasher.encode_sets(list(tag_sets))

    def match(self, tags) -> np.ndarray:
        """All keys whose tag set is a subset of ``tags`` (multiset)."""
        return self._match_one(tags, unique=False)

    def match_unique(self, tags) -> np.ndarray:
        """Distinct keys with at least one indexed subset of ``tags``."""
        return self._match_one(tags, unique=True)

    def _match_one(self, tags, unique: bool) -> np.ndarray:
        self._check_consolidated()
        query = self.encode(tags)
        tag_set = frozenset(tags) if self._store_tags else None
        relevant = self.partition_table.relevant_partitions(query)
        chunks: list[np.ndarray] = []
        batch = query.reshape(1, -1)
        for uid in self.tagset_table.units_for(relevant):
            residency = self.tagset_table.unit_residency(int(uid))
            result = subset_match_kernel(
                residency.sets.array(),
                residency.ids.array(),
                batch,
                thread_block_size=self.config.thread_block_size,
                prefilter=self.config.prefilter,
                cost_model=residency.device.cost_model,
                clock=residency.device.clock,
                prefixes=residency.prefixes.array(),
                block_offsets=residency.block_offsets.array(),
                member_commons=residency.commons.array(),
                member_of_block=residency.member_of_block.array(),
                coarse=self.config.coarse_prefilter,
            )
            set_ids = result.set_ids.astype(np.int64)
            if self._store_tags and set_ids.size:
                set_ids = self._exact_filter(set_ids, tag_set)
            if set_ids.size:
                # Single-query batch: every pair belongs to query 0, so
                # this takes grouped_key_lookup's single-group fast path.
                for _, keys in grouped_key_lookup(
                    np.zeros(set_ids.size, dtype=np.uint8), set_ids, self.key_table
                ):
                    chunks.append(keys)
        return merge_keys(chunks, unique)

    def _exact_filter(self, set_ids: np.ndarray, query_tags: frozenset) -> np.ndarray:
        """Drop Bloom false positives using the stored original sets."""
        keep = [
            sid
            for sid in set_ids
            if any(ts <= query_tags for ts in self._exact_sets.get(int(sid), []))
        ]
        return np.array(keep, dtype=np.int64)

    def match_batch(self, query_blocks: np.ndarray, unique: bool = False) -> list[np.ndarray]:
        """Synchronous batched matching (no pipeline threads).

        Deterministic and single-threaded; used by tests and the CPU-only
        baseline.  ``query_blocks`` is an ``(n, blocks)`` array.
        """
        self._check_consolidated()
        out: list[np.ndarray] = []
        for row in query_blocks:
            relevant = self.partition_table.relevant_partitions(row)
            chunks: list[np.ndarray] = []
            batch = row.reshape(1, -1)
            for uid in self.tagset_table.units_for(relevant):
                residency = self.tagset_table.unit_residency(int(uid))
                result = subset_match_kernel(
                    residency.sets.array(),
                    residency.ids.array(),
                    batch,
                    thread_block_size=self.config.thread_block_size,
                    prefilter=self.config.prefilter,
                    prefixes=residency.prefixes.array(),
                    block_offsets=residency.block_offsets.array(),
                    member_commons=residency.commons.array(),
                    member_of_block=residency.member_of_block.array(),
                    coarse=self.config.coarse_prefilter,
                )
                if result.set_ids.size:
                    chunks.append(
                        self.key_table.keys_of_many(result.set_ids.astype(np.int64))
                    )
            out.append(merge_keys(chunks, unique))
        return out

    def match_stream(
        self,
        query_blocks: np.ndarray,
        unique: bool = False,
        **pipeline_kwargs,
    ) -> PipelineRun:
        """High-throughput matching through the four-stage pipeline.

        Accepts the :meth:`MatchPipeline.run` keyword arguments
        (``num_threads``, ``batch_timeout_s``, ``arrival_rate_qps``).
        """
        self._check_consolidated()
        assert self.pipeline is not None
        return self.pipeline.run(query_blocks, unique=unique, **pipeline_kwargs)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def database(self) -> ConsolidatedDatabase:
        """The consolidated association table (blocks/keys, read-only).

        The serving layer reads this to seed delta bookkeeping and to
        rebuild the index in the background; treat the arrays as frozen.
        """
        self._check_consolidated()
        assert self._database is not None
        return self._database

    def memory_usage(self) -> MemoryUsage:
        """Host/GPU memory breakdown of the consolidated index."""
        self._check_consolidated()
        db = self._database
        database_bytes = (db.blocks.nbytes + db.keys.nbytes) if db is not None else 0
        return MemoryUsage(
            key_table_bytes=self.key_table.nbytes,
            partition_table_bytes=self.partition_table.nbytes,
            database_bytes=database_bytes,
            gpu_tagset_bytes=self.tagset_table.gpu_bytes,
            gpu_total_bytes=sum(d.ledger.allocated_bytes for d in self.devices),
        )

    @property
    def num_unique_sets(self) -> int:
        self._check_consolidated()
        return self.tagset_table.num_sets

    @property
    def num_partitions(self) -> int:
        self._check_consolidated()
        return self.partition_table.num_partitions

    def _check_consolidated(self) -> None:
        if self._closed:
            # The coarse pre-filter can reject a query before any device
            # buffer is touched, so freed-buffer access alone cannot be
            # relied on to flag use-after-close.
            raise DeviceError("engine is closed")
        if self.partition_table is None:
            raise ConsolidationError(
                "index not built: call consolidate() after add_set/remove_set"
            )

    def close(self) -> None:
        """Free device memory and stop all stream workers."""
        if self._closed:
            return
        self._closed = True
        if self.backend is not None:
            self.backend.close()
            self.backend = None
        if self.tagset_table is not None:
            self.tagset_table.free()
        for device in self.devices:
            device.close()

    def __enter__(self) -> "TagMatch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
