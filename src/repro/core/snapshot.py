"""Index persistence: save and restore a consolidated engine.

Consolidation is the expensive offline step (Figure 8); a deployment
restarting a matcher should not pay it again.  A snapshot stores the
association table, the unique signatures, and the partition layout
(masks + row indices), so loading rebuilds the partition/tagset/key
tables directly — no re-partitioning, and bit-identical results.

The format is a single ``.npz`` archive of NumPy arrays; the engine
configuration travels alongside as a small JSON blob inside the archive.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.config import TagMatchConfig
from repro.core.partitioning import Partition
from repro.errors import ValidationError

__all__ = ["save_snapshot", "load_snapshot", "SNAPSHOT_VERSION"]

SNAPSHOT_VERSION = 1

_CONFIG_FIELDS = (
    "width",
    "num_hashes",
    "seed",
    "max_partition_size",
    "batch_size",
    "batch_timeout_s",
    "num_threads",
    "num_gpus",
    "streams_per_gpu",
    "device_memory",
    "thread_block_size",
    "prefilter",
    "fuse_partitions_below",
    "coarse_prefilter",
    "query_memo_size",
    "replicate_tagset_table",
    "replication_factor",
    "exact_check",
    "pivot_strategy",
)


def _config_json(config: TagMatchConfig) -> str:
    payload = {name: getattr(config, name) for name in _CONFIG_FIELDS}
    return json.dumps(payload)


def _config_from_json(raw: str) -> TagMatchConfig:
    return TagMatchConfig(**json.loads(raw))


def save_snapshot(engine, path: str) -> None:
    """Write a consolidated engine's index to ``path`` (.npz).

    Raises if the engine has not been consolidated or has staged,
    unconsolidated changes (a snapshot must capture a coherent index).
    """
    if engine.partition_table is None or engine._database is None:
        raise ValidationError("cannot snapshot an unconsolidated engine")
    if engine._staging.dirty:
        raise ValidationError(
            "staged changes present: consolidate() before saving a snapshot"
        )
    if engine.config.exact_check:
        raise ValidationError(
            "snapshots do not store original tag sets (exact_check engines "
            "cannot be snapshotted)"
        )
    partitioning = engine.last_consolidate.partitioning
    masks = (
        np.stack([p.mask for p in partitioning.partitions])
        if partitioning.partitions
        else np.empty((0, engine.hasher.num_blocks), dtype=np.uint64)
    )
    index_flat = (
        np.concatenate([p.indices for p in partitioning.partitions])
        if partitioning.partitions
        else np.empty(0, dtype=np.int64)
    )
    sizes = np.array([len(p) for p in partitioning.partitions], dtype=np.int64)
    np.savez_compressed(
        path,
        version=np.array([SNAPSHOT_VERSION]),
        config=np.frombuffer(_config_json(engine.config).encode(), dtype=np.uint8),
        db_blocks=engine._database.blocks,
        db_keys=engine._database.keys,
        partition_masks=masks,
        partition_indices=index_flat,
        partition_sizes=sizes,
    )


def load_snapshot(path: str, config: TagMatchConfig | None = None):
    """Rebuild an engine from a snapshot.

    ``config`` overrides the stored configuration (e.g. to load the same
    index on a different GPU topology); the Bloom geometry must match the
    stored one, because signatures are not re-encodable without tags.
    """
    from repro.core.engine import TagMatch  # local import: cycle guard

    with np.load(path) as archive:
        version = int(archive["version"][0])
        if version != SNAPSHOT_VERSION:
            raise ValidationError(f"unsupported snapshot version {version}")
        stored_config = _config_from_json(bytes(archive["config"]).decode())
        if config is None:
            config = stored_config
        elif (
            config.width != stored_config.width
            or config.num_hashes != stored_config.num_hashes
            or config.seed != stored_config.seed
        ):
            raise ValidationError(
                "Bloom geometry of the override config does not match the snapshot"
            )
        db_blocks = archive["db_blocks"]
        db_keys = archive["db_keys"]
        masks = archive["partition_masks"]
        index_flat = archive["partition_indices"]
        sizes = archive["partition_sizes"]

    partitions = []
    offset = 0
    for i in range(masks.shape[0]):
        size = int(sizes[i])
        partitions.append(
            Partition(mask=masks[i], indices=index_flat[offset : offset + size])
        )
        offset += size

    engine = TagMatch(config)
    engine._restore(db_blocks, db_keys, partitions)
    return engine
