"""The tagset table: partitioned, sorted signatures in GPU memory.

Figure 1: the tagset table lives on the GPU and associates each tag set
in each partition with a unique id pointing into the host-side key
table.  Within a partition the signatures are kept in lexicographic
order so that consecutive thread blocks share long common prefixes
(Algorithm 4).

TagMatch "may also replicate the tagset table on all available GPUs to
match queries in parallel on multiple GPUs.  Alternatively, TagMatch can
also partially replicate or simply partition an extremely large tagset
table on multiple GPUs" (§3); both placements are supported here.

Kernel dispatch happens per **dispatch unit**, not per partition: runs of
consecutive partitions smaller than ``fuse_partitions_below`` rows are
coalesced into one unit, uploaded as a single concatenated array with a
partition-offset table, and matched by a single fused kernel launch — the
Figure 7 small-partition regime where per-launch overhead dominates.
Thread blocks never span a member boundary, so every member keeps its own
Algorithm 4 prefixes, and each member carries an AND-of-rows coarse
summary for the hierarchical pre-filter.  With fusing disabled (the
default) every unit holds exactly one partition and the table behaves
like the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bloom.array import SignatureArray
from repro.core.partitioning import Partition
from repro.errors import ValidationError
from repro.gpu.device import Device
from repro.gpu.kernels import block_prefixes_ranges, uniform_block_offsets
from repro.gpu.memory import DeviceBuffer

__all__ = ["PartitionResidency", "TagsetTable"]

#: Most partitions one fused unit may cover.  Bounds the false-sharing
#: cost of unit-granular batching: a unit is dispatched when *any*
#: member is relevant, and non-relevant members must be rejected by the
#: coarse/prefix filters inside the kernel.
_FUSE_MAX_MEMBERS = 64

#: Row budget of one fused unit, in multiples of the thread block size.
_FUSE_ROW_CAP_BLOCKS = 4


@dataclass
class PartitionResidency:
    """One dispatch unit resident on one device.

    ``prefixes`` caches the thread-block common-prefix masks of
    Algorithm 4 — partition contents only change at consolidation, so
    the kernel never recomputes them per invocation.  ``block_offsets``
    (thread-block row bounds that never cross a member boundary),
    ``commons`` (one AND-of-rows coarse summary per member) and
    ``member_of_block`` feed the fused launch and the hierarchical
    pre-filter; for a singleton unit they degenerate to the uniform
    blocks of one partition.
    """

    unit_id: int
    member_pids: np.ndarray
    device: Device
    sets: DeviceBuffer
    ids: DeviceBuffer
    prefixes: DeviceBuffer
    block_offsets: DeviceBuffer
    commons: DeviceBuffer
    member_of_block: DeviceBuffer

    @property
    def partition_id(self) -> int:
        """First member partition (the unit id of an unfused table)."""
        return int(self.member_pids[0])

    @property
    def num_members(self) -> int:
        return int(self.member_pids.shape[0])

    def buffers(self) -> tuple[DeviceBuffer, ...]:
        return (
            self.sets,
            self.ids,
            self.prefixes,
            self.block_offsets,
            self.commons,
            self.member_of_block,
        )

    def __len__(self) -> int:
        return self.sets.array().shape[0]


def _plan_units(
    partitions: list[Partition], fuse_below: int, thread_block_size: int
) -> list[tuple[int, int]]:
    """Greedy contiguous grouping of partitions into dispatch units.

    Returns ``(start_pid, stop_pid)`` ranges covering all partitions in
    order.  Partitions at or above the fuse threshold stand alone; runs
    of smaller ones coalesce until the member or row cap is hit.
    """
    if fuse_below <= 0:
        return [(pid, pid + 1) for pid in range(len(partitions))]
    row_cap = max(thread_block_size, _FUSE_ROW_CAP_BLOCKS * thread_block_size)
    units: list[tuple[int, int]] = []
    group_start: int | None = None
    group_rows = 0
    for pid, partition in enumerate(partitions):
        rows = len(partition.indices)
        if rows >= fuse_below:
            if group_start is not None:
                units.append((group_start, pid))
                group_start = None
                group_rows = 0
            units.append((pid, pid + 1))
            continue
        if group_start is None:
            group_start = pid
            group_rows = 0
        group_rows += rows
        if group_rows >= row_cap or pid + 1 - group_start >= _FUSE_MAX_MEMBERS:
            units.append((group_start, pid + 1))
            group_start = None
            group_rows = 0
    if group_start is not None:
        units.append((group_start, len(partitions)))
    return units


class TagsetTable:
    """Uploads dispatch units to device memory and routes unit → device."""

    def __init__(
        self,
        blocks: np.ndarray,
        partitions: list[Partition],
        devices: list[Device],
        width: int,
        replicate: bool = True,
        thread_block_size: int = 1024,
        replication_factor: int | None = None,
        fuse_partitions_below: int = 0,
    ) -> None:
        if not devices:
            raise ValidationError("need at least one device")
        if replication_factor is not None and not (
            1 <= replication_factor <= len(devices)
        ):
            raise ValidationError("replication_factor out of range")
        self.width = width
        self.devices = devices
        self.replicate = replicate
        #: Copies per unit: full replication, a single home, or the
        #: partial replication middle ground (§3).
        self.copies = (
            replication_factor
            if replication_factor is not None
            else (len(devices) if replicate else 1)
        )
        self.num_sets = blocks.shape[0]
        self.partitions = partitions
        self.fuse_partitions_below = fuse_partitions_below

        units = _plan_units(partitions, fuse_partitions_below, thread_block_size)
        #: ``unit_of_partition[pid]`` → dispatch unit holding ``pid``
        #: (nondecreasing: units are contiguous pid ranges).
        self.unit_of_partition = np.zeros(len(partitions), dtype=np.int64)
        #: First member pid of each unit — the ``reduceat`` bounds that
        #: collapse a per-partition relevance matrix to per-unit columns.
        self.unit_starts = np.array([u[0] for u in units], dtype=np.int64)
        for uid, (start, stop) in enumerate(units):
            self.unit_of_partition[start:stop] = uid

        # residency[unit_id] -> list of PartitionResidency (one per
        # device holding that unit).
        self._residency: list[list[PartitionResidency]] = []
        self._round_robin = 0

        num_words = width // 64
        arr = SignatureArray(blocks, width=width)
        for uid, (start, stop) in enumerate(units):
            member_sets: list[np.ndarray] = []
            member_ids: list[np.ndarray] = []
            commons = np.zeros((stop - start, num_words), dtype=np.uint64)
            bounds: list[int] = [0]
            mob: list[int] = []
            row_base = 0
            for local, pid in enumerate(range(start, stop)):
                partition = partitions[pid]
                sub = arr.take(partition.indices)
                order = sub.lex_sort_order()
                sorted_sets = sub.blocks[order]
                member_sets.append(sorted_sets)
                member_ids.append(partition.indices[order].astype(np.uint32))
                n = sorted_sets.shape[0]
                if n == 0:
                    continue
                commons[local] = np.bitwise_and.reduce(sorted_sets, axis=0)
                offsets = uniform_block_offsets(n, thread_block_size)
                bounds.extend((offsets[1:] + row_base).tolist())
                mob.extend([local] * (offsets.shape[0] - 1))
                row_base += n
            unit_sets = (
                np.vstack(member_sets)
                if row_base
                else np.empty((0, num_words), dtype=np.uint64)
            )
            unit_ids = (
                np.concatenate(member_ids)
                if row_base
                else np.empty(0, dtype=np.uint32)
            )
            block_offsets = np.array(bounds, dtype=np.int64)
            member_of_block = np.array(mob, dtype=np.int64)
            prefixes = block_prefixes_ranges(
                unit_sets, block_offsets[:-1], block_offsets[1:]
            )
            member_pids = np.arange(start, stop, dtype=np.int64)
            targets = [
                devices[(uid + j) % len(devices)] for j in range(self.copies)
            ]
            homes = []
            for device in targets:
                homes.append(
                    PartitionResidency(
                        unit_id=uid,
                        member_pids=member_pids,
                        device=device,
                        sets=device.htod(unit_sets, label=f"unit-{uid}/sets"),
                        ids=device.htod(unit_ids, label=f"unit-{uid}/ids"),
                        prefixes=device.htod(prefixes, label=f"unit-{uid}/prefixes"),
                        block_offsets=device.htod(
                            block_offsets, label=f"unit-{uid}/offsets"
                        ),
                        commons=device.htod(commons, label=f"unit-{uid}/commons"),
                        member_of_block=device.htod(
                            member_of_block, label=f"unit-{uid}/members"
                        ),
                    )
                )
            self._residency.append(homes)

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def num_units(self) -> int:
        return len(self._residency)

    def unit_residency(self, unit_id: int) -> PartitionResidency:
        """Pick a device copy for this dispatch unit.

        With replication the copies rotate round-robin so concurrent
        batches spread across all GPUs (maximal inter-GPU parallelism);
        without replication each unit has a single home.
        """
        if not 0 <= unit_id < len(self._residency):
            raise ValidationError(f"unit id {unit_id} out of range")
        homes = self._residency[unit_id]
        if len(homes) == 1:
            return homes[0]
        self._round_robin = (self._round_robin + 1) % len(homes)
        return homes[self._round_robin]

    def residency(self, partition_id: int) -> PartitionResidency:
        """The residency of the unit containing ``partition_id``.

        With fusing disabled (the default) every unit is one partition
        and this is exactly the seed's per-partition lookup.
        """
        if not 0 <= partition_id < len(self.partitions):
            raise ValidationError(f"partition id {partition_id} out of range")
        return self.unit_residency(int(self.unit_of_partition[partition_id]))

    def units_for(self, partition_ids: np.ndarray) -> np.ndarray:
        """Distinct dispatch units covering the given partitions."""
        pids = np.asarray(partition_ids, dtype=np.int64)
        if pids.size == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(self.unit_of_partition[pids])

    def host_unit_arrays(
        self,
    ) -> list[
        tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    ]:
        """Host views of every unit's ``(sets, ids, prefixes,
        block_offsets, commons, member_of_block)``.

        Used by the process execution backend to publish the consolidated
        units into shared memory exactly once — the host-side analogue of
        this table's one-time device upload.  Views come from the first
        residency copy; they stay valid until :meth:`free`.
        """
        out = []
        for homes in self._residency:
            home = homes[0]
            out.append(tuple(buffer.array() for buffer in home.buffers()))
        return out

    @property
    def gpu_bytes(self) -> int:
        """Total device memory held by the table (Figure 9's GPU bars)."""
        return sum(
            buffer.nbytes
            for homes in self._residency
            for home in homes
            for buffer in home.buffers()
        )

    def free(self) -> None:
        """Release every device buffer."""
        for homes in self._residency:
            for home in homes:
                for buffer in home.buffers():
                    if not buffer.freed:
                        buffer.free()
