"""The tagset table: partitioned, sorted signatures in GPU memory.

Figure 1: the tagset table lives on the GPU and associates each tag set
in each partition with a unique id pointing into the host-side key
table.  Within a partition the signatures are kept in lexicographic
order so that consecutive thread blocks share long common prefixes
(Algorithm 4).

TagMatch "may also replicate the tagset table on all available GPUs to
match queries in parallel on multiple GPUs.  Alternatively, TagMatch can
also partially replicate or simply partition an extremely large tagset
table on multiple GPUs" (§3); both placements are supported here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bloom.array import SignatureArray
from repro.core.partitioning import Partition
from repro.errors import ValidationError
from repro.gpu.device import Device
from repro.gpu.kernels import block_prefixes
from repro.gpu.memory import DeviceBuffer

__all__ = ["PartitionResidency", "TagsetTable"]


@dataclass
class PartitionResidency:
    """One partition resident on one device.

    ``prefixes`` caches the thread-block common-prefix masks of
    Algorithm 4 — partition contents only change at consolidation, so
    the kernel never recomputes them per invocation.
    """

    partition_id: int
    device: Device
    sets: DeviceBuffer
    ids: DeviceBuffer
    prefixes: DeviceBuffer

    def __len__(self) -> int:
        return self.sets.array().shape[0]


class TagsetTable:
    """Uploads partitions to device memory and routes partition → device."""

    def __init__(
        self,
        blocks: np.ndarray,
        partitions: list[Partition],
        devices: list[Device],
        width: int,
        replicate: bool = True,
        thread_block_size: int = 1024,
        replication_factor: int | None = None,
    ) -> None:
        if not devices:
            raise ValidationError("need at least one device")
        if replication_factor is not None and not (
            1 <= replication_factor <= len(devices)
        ):
            raise ValidationError("replication_factor out of range")
        self.width = width
        self.devices = devices
        self.replicate = replicate
        #: Copies per partition: full replication, a single home, or the
        #: partial replication middle ground (§3).
        self.copies = (
            replication_factor
            if replication_factor is not None
            else (len(devices) if replicate else 1)
        )
        self.num_sets = blocks.shape[0]
        self.partitions = partitions

        # residency[partition_id] -> list of PartitionResidency (one per
        # device holding that partition).
        self._residency: list[list[PartitionResidency]] = []
        self._round_robin = 0

        arr = SignatureArray(blocks, width=width)
        for pid, partition in enumerate(partitions):
            sub = arr.take(partition.indices)
            order = sub.lex_sort_order()
            sorted_sets = sub.blocks[order]
            sorted_ids = partition.indices[order].astype(np.uint32)
            prefixes = block_prefixes(sorted_sets, thread_block_size)
            targets = [
                devices[(pid + j) % len(devices)] for j in range(self.copies)
            ]
            homes = []
            for device in targets:
                homes.append(
                    PartitionResidency(
                        partition_id=pid,
                        device=device,
                        sets=device.htod(sorted_sets, label=f"partition-{pid}/sets"),
                        ids=device.htod(sorted_ids, label=f"partition-{pid}/ids"),
                        prefixes=device.htod(
                            prefixes, label=f"partition-{pid}/prefixes"
                        ),
                    )
                )
            self._residency.append(homes)

    @property
    def num_partitions(self) -> int:
        return len(self._residency)

    def residency(self, partition_id: int) -> PartitionResidency:
        """Pick a device copy for this partition.

        With replication the copies rotate round-robin so concurrent
        batches spread across all GPUs (maximal inter-GPU parallelism);
        without replication each partition has a single home.
        """
        if not 0 <= partition_id < len(self._residency):
            raise ValidationError(f"partition id {partition_id} out of range")
        homes = self._residency[partition_id]
        if len(homes) == 1:
            return homes[0]
        self._round_robin = (self._round_robin + 1) % len(homes)
        return homes[self._round_robin]

    def host_partition_arrays(
        self,
    ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Host views of every partition's sorted ``(sets, ids, prefixes)``.

        Used by the process execution backend to publish the consolidated
        partitions into shared memory exactly once — the host-side
        analogue of this table's one-time device upload.  Views come from
        the first residency copy; they stay valid until :meth:`free`.
        """
        out = []
        for homes in self._residency:
            home = homes[0]
            out.append((home.sets.array(), home.ids.array(), home.prefixes.array()))
        return out

    @property
    def gpu_bytes(self) -> int:
        """Total device memory held by the table (Figure 9's GPU bars)."""
        return sum(
            home.sets.nbytes + home.ids.nbytes + home.prefixes.nbytes
            for homes in self._residency
            for home in homes
        )

    def free(self) -> None:
        """Release every device buffer."""
        for homes in self._residency:
            for home in homes:
                for buffer in (home.sets, home.ids, home.prefixes):
                    if not buffer.freed:
                        buffer.free()
