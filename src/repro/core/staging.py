"""Staged additions and removals (the *temporary index* of §2).

``add-set`` and ``remove-set`` are not immediately effective: they are
staged and become visible only after ``consolidate()`` rebuilds the
index.  The staging area stores one row per ``(tag set, key)``
association; consolidation turns the surviving associations into the
unique-signature database that partitioning operates on.
"""

from __future__ import annotations

import numpy as np

from repro.bloom.hashing import TagHasher
from repro.errors import ValidationError

__all__ = ["StagingArea", "ConsolidatedDatabase"]


class ConsolidatedDatabase:
    """The association table after a consolidate: one row per (set, key).

    ``blocks[i]`` is the signature of association ``i`` and ``keys[i]``
    its key.  Unique signatures and the grouped key table are derived
    from this by the engine.  When the staging area stores original tag
    sets (exact-check mode), ``tag_sets[i]`` is the frozenset behind
    association ``i``.
    """

    def __init__(
        self,
        blocks: np.ndarray,
        keys: np.ndarray,
        tag_sets: list[frozenset[str]] | None = None,
    ) -> None:
        if blocks.ndim != 2 or blocks.shape[0] != keys.shape[0]:
            raise ValidationError("blocks and keys must be parallel")
        if tag_sets is not None and len(tag_sets) != blocks.shape[0]:
            raise ValidationError("tag_sets must parallel blocks")
        self.blocks = blocks
        self.keys = keys
        self.tag_sets = tag_sets

    def __len__(self) -> int:
        return self.blocks.shape[0]


class StagingArea:
    """Accumulates pending add/remove operations between consolidations.

    With ``store_tags=True`` the original tag sets are retained alongside
    the signatures so the engine can run the optional exact subset check
    that removes Bloom false positives (§3).
    """

    def __init__(self, hasher: TagHasher, store_tags: bool = False) -> None:
        self._hasher = hasher
        self.store_tags = store_tags
        self._add_blocks: list[tuple[int, ...]] = []
        self._add_keys: list[int] = []
        self._add_tags: list[frozenset[str]] = []
        self._remove_blocks: list[tuple[int, ...]] = []
        self._remove_keys: list[int] = []

    # ------------------------------------------------------------------
    # Staging
    # ------------------------------------------------------------------
    def stage_add(self, tags, key: int) -> None:
        """Stage ``add-set(tags, key)``."""
        tags = frozenset(tags)
        self._add_blocks.append(self._hasher.encode_set(tags))
        self._add_keys.append(int(key))
        if self.store_tags:
            self._add_tags.append(tags)

    def stage_add_signature(self, blocks: tuple[int, ...], key: int) -> None:
        """Fast path: stage an already-encoded signature."""
        if self.store_tags:
            raise ValidationError(
                "signature-only staging is incompatible with store_tags"
            )
        if len(blocks) != self._hasher.num_blocks:
            raise ValidationError("signature block count mismatch")
        self._add_blocks.append(tuple(int(b) for b in blocks))
        self._add_keys.append(int(key))

    def stage_add_bulk(self, blocks: np.ndarray, keys: np.ndarray) -> None:
        """Fast path: stage many pre-encoded associations at once.

        Benchmarks loading hundreds of thousands of workload sets use
        this to skip per-row Python overhead.
        """
        if self.store_tags:
            raise ValidationError("bulk staging is incompatible with store_tags")
        blocks = np.ascontiguousarray(blocks, dtype=np.uint64)
        keys = np.asarray(keys)
        if blocks.ndim != 2 or blocks.shape[1] != self._hasher.num_blocks:
            raise ValidationError("signature block count mismatch")
        if blocks.shape[0] != keys.shape[0]:
            raise ValidationError("blocks and keys must be parallel")
        for row, key in zip(blocks, keys):
            self._add_blocks.append(tuple(int(w) for w in row))
            self._add_keys.append(int(key))

    def stage_remove(self, tags, key: int) -> None:
        """Stage ``remove-set(tags, key)``."""
        self._remove_blocks.append(self._hasher.encode_set(tags))
        self._remove_keys.append(int(key))

    def stage_remove_signature(self, blocks, key: int) -> None:
        """Fast path: stage a removal by pre-encoded signature.

        The serving layer's delta store records unsubscribes as
        ``(signature, key)`` tombstones — the original tag strings are
        gone by reconsolidation time, so folding a tombstone back into
        the staging area has to work from the signature alone.
        """
        blocks = tuple(int(b) for b in np.asarray(blocks).reshape(-1))
        if len(blocks) != self._hasher.num_blocks:
            raise ValidationError("signature block count mismatch")
        self._remove_blocks.append(blocks)
        self._remove_keys.append(int(key))

    @property
    def pending_adds(self) -> int:
        return len(self._add_blocks)

    @property
    def pending_removes(self) -> int:
        return len(self._remove_blocks)

    @property
    def dirty(self) -> bool:
        """True when staged operations have not been consolidated yet."""
        return bool(self._add_blocks or self._remove_blocks)

    # ------------------------------------------------------------------
    # Consolidation
    # ------------------------------------------------------------------
    def apply(self, current: ConsolidatedDatabase | None) -> ConsolidatedDatabase:
        """Apply staged operations to ``current`` and clear the stage.

        Each staged remove deletes *one* matching ``(signature, key)``
        association (matching the interface's multiset semantics); a
        remove with no matching association is ignored, like deleting a
        non-existent row.
        """
        num_blocks = self._hasher.num_blocks
        parts = []
        key_parts = []
        tag_sets: list[frozenset[str]] | None = [] if self.store_tags else None
        if current is not None and len(current):
            parts.append(current.blocks)
            key_parts.append(current.keys)
            if tag_sets is not None:
                if current.tag_sets is None:
                    raise ValidationError(
                        "store_tags staging applied to a database without tag sets"
                    )
                tag_sets.extend(current.tag_sets)
        if self._add_blocks:
            parts.append(np.array(self._add_blocks, dtype=np.uint64))
            key_parts.append(np.array(self._add_keys, dtype=np.int64))
            if tag_sets is not None:
                tag_sets.extend(self._add_tags)
        if parts:
            blocks = np.vstack(parts)
            keys = np.concatenate(key_parts)
        else:
            blocks = np.empty((0, num_blocks), dtype=np.uint64)
            keys = np.empty(0, dtype=np.int64)

        if self._remove_blocks:
            alive = np.ones(len(keys), dtype=bool)
            for sig, key in zip(self._remove_blocks, self._remove_keys):
                hits = np.nonzero(
                    alive
                    & (keys == key)
                    & np.all(blocks == np.array(sig, dtype=np.uint64), axis=1)
                )[0]
                if hits.size:
                    alive[hits[0]] = False
            blocks = blocks[alive]
            keys = keys[alive]
            if tag_sets is not None:
                tag_sets = [ts for ts, ok in zip(tag_sets, alive) if ok]

        self._add_blocks.clear()
        self._add_keys.clear()
        self._add_tags.clear()
        self._remove_blocks.clear()
        self._remove_keys.clear()
        return ConsolidatedDatabase(blocks, keys, tag_sets)
