"""``repro.obs`` — shared observability: tracing, metrics, exposition.

The layer every execution path reports into (DESIGN.md §11):

* :mod:`repro.obs.trace` — low-overhead span tracer with bounded ring
  buffers; wired into the pipeline stage boundaries, kernel launches,
  device transfers, and pool workers.
* :mod:`repro.obs.registry` — counters / gauges / fixed-bucket
  histograms (p50/p90/p99 without raw samples) plus the sliding-window
  rate estimator.
* :mod:`repro.obs.export` — Prometheus text exposition, the
  ``--metrics-port`` endpoint, and the ``repro trace`` flame renderer.
"""

from repro.obs import trace
from repro.obs.export import MetricsServer, format_flame, render_prometheus
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    SlidingRate,
)
from repro.obs.trace import STAGES, Span, Tracer, stage_summary

__all__ = [
    "trace",
    "STAGES",
    "Span",
    "Tracer",
    "stage_summary",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "SlidingRate",
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsServer",
    "format_flame",
    "render_prometheus",
]
