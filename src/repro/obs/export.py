"""Metrics exposition: Prometheus text format, HTTP endpoint, flame text.

Three consumers of the same :class:`~repro.obs.registry.Registry`:

* :func:`render_prometheus` — text exposition format 0.0.4, the lingua
  franca every scrape stack ingests.  Counters get the ``_total``
  suffix, histograms the ``_bucket``/``_sum``/``_count`` triplet with
  cumulative ``le`` edges.
* :class:`MetricsServer` — a deliberately tiny asyncio HTTP/1.0
  responder for ``repro serve --metrics-port``; it answers every GET
  with the current exposition (no routing, no deps).
* :func:`format_flame` — the ``repro trace`` CLI's per-stage flame
  summary: share-of-total bars over recent span durations.
"""

from __future__ import annotations

import asyncio
from typing import Callable

from repro.obs.registry import Counter, Gauge, Histogram, Registry

__all__ = ["render_prometheus", "MetricsServer", "format_flame"]


def _label_str(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _fmt(value: float | int) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(registry: Registry) -> str:
    """Render every registered metric in Prometheus text format."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for name, labels, metric in registry.collect():
        if isinstance(metric, Counter):
            type_line(name, "counter")
            lines.append(f"{name}{_label_str(labels)} {metric.value}")
        elif isinstance(metric, Gauge):
            type_line(name, "gauge")
            lines.append(f"{name}{_label_str(labels)} {_fmt(metric.value)}")
        elif isinstance(metric, Histogram):
            type_line(name, "histogram")
            snap = metric.snapshot()
            cumulative = 0
            for bound, count in zip(
                snap["buckets"]["bounds_s"], snap["buckets"]["counts"]
            ):
                cumulative += count
                edge = dict(labels, le=repr(float(bound)))
                lines.append(f"{name}_bucket{_label_str(edge)} {cumulative}")
            edge = dict(labels, le="+Inf")
            lines.append(f"{name}_bucket{_label_str(edge)} {snap['count']}")
            lines.append(f"{name}_sum{_label_str(labels)} {_fmt(snap['sum_s'])}")
            lines.append(f"{name}_count{_label_str(labels)} {snap['count']}")
    return "\n".join(lines) + "\n"


class MetricsServer:
    """Plaintext metrics endpoint (``GET /metrics`` — or any path).

    ``render_cb`` is called per request so the caller can refresh
    late-bound state (ingest new trace spans, run collectors) before
    rendering; it must return the exposition text.
    """

    def __init__(self, render_cb: Callable[[], str]) -> None:
        self._render_cb = render_cb
        self._server: asyncio.base_events.Server | None = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = await asyncio.start_server(self._handle, host, port)

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=5.0)
            # Drain headers up to the blank line; scrape clients are
            # well-behaved, so a short timeout bounds the worst case.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            method = request.split(b" ", 1)[0].upper() if request else b""
            if method != b"GET":
                writer.write(b"HTTP/1.0 405 Method Not Allowed\r\n\r\n")
            else:
                body = self._render_cb().encode("utf-8")
                writer.write(
                    b"HTTP/1.0 200 OK\r\n"
                    b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
                )
                writer.write(body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


def format_flame(
    stages: dict[str, dict[str, float]], width: int = 28
) -> str:
    """Render a per-stage flame summary as aligned text bars.

    ``stages`` maps stage name to an aggregate dict with at least
    ``count`` and ``total_s`` (as produced by
    :func:`repro.obs.trace.stage_summary` or the ``trace`` verb);
    optional ``p50_ms``/``p99_ms`` columns render when present.
    """
    if not stages:
        return "(no spans recorded)"
    total = sum(entry.get("total_s", 0.0) for entry in stages.values()) or 1.0
    name_w = max(len(name) for name in stages)
    lines = []
    ordered = sorted(
        stages.items(), key=lambda kv: kv[1].get("total_s", 0.0), reverse=True
    )
    for name, entry in ordered:
        share = entry.get("total_s", 0.0) / total
        filled = int(round(share * width))
        bar = "#" * filled + "." * (width - filled)
        line = (
            f"{name:<{name_w}}  {bar} {share * 100:5.1f}%  "
            f"n={int(entry.get('count', 0)):<7d} "
            f"total={entry.get('total_s', 0.0):8.4f}s"
        )
        if "p50_ms" in entry:
            line += f"  p50={entry['p50_ms']:.3f}ms"
        if "p99_ms" in entry:
            line += f"  p99={entry['p99_ms']:.3f}ms"
        lines.append(line)
    return "\n".join(lines)
