"""Low-overhead span tracing for the matching pipeline.

The paper's evaluation (§4.3–§4.5) attributes time to pipeline stages —
pre-processing, kernel execution, transfers, post-processing — and every
scheduling argument (stream counts, thread splits, batch deadlines)
rests on that attribution.  :class:`Tracer` makes the attribution a
first-class runtime facility instead of ad-hoc benchmark timers: hot
paths wrap their work in ``trace.span("kernel", rows=n)`` and a bounded
ring buffer keeps the most recent spans for the ``stats``/``trace``
verbs and the metrics endpoint.

Overhead discipline
-------------------
Tracing is *disabled* by default and the disabled path is one attribute
check plus one shared no-op context manager — no allocation, no clock
read.  The enabled path is two ``perf_counter`` calls and one locked
ring append per span; ``bench_obs_overhead.py`` pins the end-to-end cost
below 5 % of pipeline throughput.

Process-pool workers record into their *own* process-local tracer (this
module is re-imported in the worker); the pool's pipe protocol ships
each task's spans back with its result and the collector merges them
into the host tracer (see :mod:`repro.parallel.pool`), so per-stage
accounting spans process boundaries.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter
from typing import Any, NamedTuple

__all__ = [
    "STAGES",
    "Span",
    "Tracer",
    "TRACER",
    "span",
    "record",
    "enable",
    "disable",
    "is_enabled",
    "merge",
    "drain",
    "since",
    "recent",
    "clear",
    "count",
    "stage_summary",
]

#: Canonical stage names of the four-stage pipeline (§3, Figure 1), as
#: recorded by the built-in instrumentation.  Other names are legal —
#: the tracer is generic — but these are the ones the serving layer's
#: histograms and the acceptance criteria care about.
STAGES = ("pre_process", "kernel", "transfer", "post_process")


class Span(NamedTuple):
    """One completed traced operation.

    ``start_s`` is in the recording process's ``perf_counter`` domain —
    only comparable within one process; ``duration_s`` is always valid,
    which is what the per-stage aggregation uses.
    """

    name: str
    start_s: float
    duration_s: float
    attrs: dict[str, Any]


class _LiveSpan:
    """Context manager recording one span on exit (enabled path)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        t0 = self._t0
        self._tracer.record(self._name, t0, perf_counter() - t0, self._attrs)


class _NoopSpan:
    """Shared do-nothing context manager (disabled path)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NOOP = _NoopSpan()


class Tracer:
    """Bounded ring buffer of :class:`Span` records.

    Appends are serialized by a lock (they come from pipeline threads,
    stream workers, and the pool collector concurrently); readers get
    consistent copies.  The ring drops the oldest spans past
    ``capacity`` — telemetry is best-effort recent history, never an
    unbounded log.
    """

    def __init__(self, capacity: int = 8192, enabled: bool = False) -> None:
        self.capacity = int(capacity)
        self._ring: deque[Span] = deque(maxlen=self.capacity)
        self._count = 0
        self._lock = threading.Lock()
        self._enabled = bool(enabled)

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def enable(self, capacity: int | None = None) -> None:
        """Turn tracing on (optionally resizing the ring)."""
        with self._lock:
            if capacity is not None and capacity != self.capacity:
                self.capacity = int(capacity)
                self._ring = deque(self._ring, maxlen=self.capacity)
            self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def is_enabled(self) -> bool:
        return self._enabled

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """Context manager timing one operation.

        ``with tracer.span("kernel", rows=n): ...`` — a no-op when
        tracing is disabled.
        """
        if not self._enabled:
            return _NOOP
        return _LiveSpan(self, name, attrs)

    def record(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        """Append one pre-timed span (used for simulated durations)."""
        if not self._enabled:
            return
        span_ = Span(name, float(start_s), float(duration_s), attrs or {})
        with self._lock:
            self._ring.append(span_)
            self._count += 1

    def merge(self, spans) -> None:
        """Append spans recorded elsewhere (e.g. a pool worker).

        Accepts :class:`Span` tuples or plain ``(name, start, dur,
        attrs)`` sequences as they come off a pipe.
        """
        if not self._enabled:
            return
        with self._lock:
            for item in spans:
                name, start_s, duration_s, attrs = item
                self._ring.append(
                    Span(str(name), float(start_s), float(duration_s), dict(attrs))
                )
                self._count += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total spans ever recorded (monotonic, survives ring wrap)."""
        return self._count

    def drain(self) -> list[Span]:
        """Take every buffered span and clear the ring (worker export)."""
        with self._lock:
            spans = list(self._ring)
            self._ring.clear()
            return spans

    def since(self, cursor: int) -> tuple[int, list[Span]]:
        """Spans recorded after ``cursor`` (a previous ``count`` value).

        Returns ``(new_cursor, spans)``; spans older than the ring
        capacity are lost — the caller gets whatever survives.
        """
        with self._lock:
            new = self._count - cursor
            if new <= 0:
                return self._count, []
            if new >= len(self._ring):
                return self._count, list(self._ring)
            buffered = len(self._ring)
            return self._count, [self._ring[i] for i in range(buffered - new, buffered)]

    def recent(self, n: int) -> list[Span]:
        """The most recent ``n`` spans, oldest first."""
        with self._lock:
            if n >= len(self._ring):
                return list(self._ring)
            buffered = len(self._ring)
            return [self._ring[i] for i in range(buffered - n, buffered)]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._count = 0


def stage_summary(spans) -> dict[str, dict[str, float]]:
    """Aggregate spans per stage: count, total and extremal durations.

    This is the exact (non-bucketed) aggregation used by the ``trace``
    verb's flame summary; the serving layer's *histograms* (bounded
    memory, mergeable) live in :mod:`repro.obs.registry`.
    """
    out: dict[str, dict[str, float]] = {}
    for span_ in spans:
        entry = out.setdefault(
            span_.name,
            {"count": 0, "total_s": 0.0, "min_s": float("inf"), "max_s": 0.0},
        )
        entry["count"] += 1
        entry["total_s"] += span_.duration_s
        if span_.duration_s < entry["min_s"]:
            entry["min_s"] = span_.duration_s
        if span_.duration_s > entry["max_s"]:
            entry["max_s"] = span_.duration_s
    for entry in out.values():
        entry["mean_s"] = entry["total_s"] / entry["count"] if entry["count"] else 0.0
        if entry["min_s"] == float("inf"):
            entry["min_s"] = 0.0
    return out


#: The process-wide tracer every built-in instrumentation point records
#: to.  Module-level aliases below make call sites read naturally:
#: ``from repro.obs import trace`` … ``with trace.span("kernel"): ...``.
TRACER = Tracer()

span = TRACER.span
record = TRACER.record
enable = TRACER.enable
disable = TRACER.disable
is_enabled = TRACER.is_enabled
merge = TRACER.merge
drain = TRACER.drain
since = TRACER.since
recent = TRACER.recent
clear = TRACER.clear


def count() -> int:
    return TRACER.count
