"""Metrics registry: counters, gauges, and fixed-bucket histograms.

One :class:`Registry` unifies every counter the system previously kept
in scattered ad-hoc structures — ``ServiceMetrics`` attributes, the
per-device :class:`~repro.gpu.timing.DeviceClock`, and
``QueryMemo.stats()`` — behind a single name/label namespace that both
the ``stats`` verb and the Prometheus endpoint render from.

Histograms use *fixed* bucket bounds, so p50/p90/p99 estimates cost
O(buckets) memory regardless of traffic — no raw-sample reservoirs (the
seed's ``latencies_s`` deque) on the serving hot path.  Quantiles are
linearly interpolated within the winning bucket, the same estimator
Prometheus's ``histogram_quantile`` uses.

:class:`SlidingRate` is the ring-buffer rate estimator behind the
``qps`` fix: the seed divided lifetime publishes by lifetime uptime, so
any idle second dragged reported throughput toward zero forever.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left
from typing import Any, Callable

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "SlidingRate",
    "Registry",
]

#: Log-spaced 1-2.5-5 decades from 10 µs to 10 s — wide enough for both
#: sub-millisecond kernel launches and multi-second consolidations.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that goes up and down; always reported as-is."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value: float | int = 0

    def set(self, value: float | int) -> None:
        self._value = value

    @property
    def value(self) -> float | int:
        return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated quantiles.

    ``bounds[i]`` is the inclusive upper edge of bucket ``i``; one
    implicit overflow bucket catches everything above the last bound.
    Counts are plain ints, so the whole structure is mergeable and
    JSON-safe.
    """

    __slots__ = ("bounds", "counts", "overflow", "total", "sum_s", "max_seen", "_lock")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> None:
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.total = 0
        self.sum_s = 0.0
        self.max_seen = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            if idx < len(self.counts):
                self.counts[idx] += 1
            else:
                self.overflow += 1
            self.total += 1
            self.sum_s += value
            if value > self.max_seen:
                self.max_seen = value

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q < 1); 0.0 when empty.

        Linear interpolation inside the winning bucket; the overflow
        bucket reports its lower edge (the last finite bound) — a
        deliberate underestimate rather than an invented upper edge.
        """
        with self._lock:
            if self.total == 0:
                return 0.0
            rank = q * self.total
            cumulative = 0
            for i, c in enumerate(self.counts):
                if c == 0:
                    continue
                if cumulative + c >= rank:
                    lo = self.bounds[i - 1] if i > 0 else 0.0
                    hi = self.bounds[i]
                    frac = (rank - cumulative) / c
                    return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
                cumulative += c
            return self.bounds[-1]

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe copy: counts plus the standard percentile trio."""
        with self._lock:
            counts = list(self.counts)
            overflow = self.overflow
            total = self.total
            sum_s = self.sum_s
            max_seen = self.max_seen
        return {
            "count": total,
            "sum_s": sum_s,
            "max_s": max_seen,
            "p50_s": self.quantile(0.50),
            "p90_s": self.quantile(0.90),
            "p99_s": self.quantile(0.99),
            "buckets": {
                "bounds_s": list(self.bounds),
                "counts": counts,
                "overflow": overflow,
            },
        }


class SlidingRate:
    """Events/second over a sliding window of per-bucket rings.

    The window is a ring of ``resolution_s``-wide buckets; recording
    lazily retires buckets that aged out, so idle periods cost nothing
    and an idle *window* reads exactly 0.0 — the regression the
    lifetime-average ``qps`` could never express.
    """

    def __init__(
        self,
        window_s: float = 30.0,
        resolution_s: float = 1.0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if window_s <= 0 or resolution_s <= 0 or resolution_s > window_s:
            raise ValueError("need 0 < resolution_s <= window_s")
        self.window_s = float(window_s)
        self.resolution_s = float(resolution_s)
        self._clock = clock
        self._nbuckets = int(math.ceil(window_s / resolution_s)) + 1
        self._counts = [0] * self._nbuckets
        self._epochs = [-1] * self._nbuckets
        self._lock = threading.Lock()
        self._started = clock()

    def record(self, n: int = 1) -> None:
        epoch = int(self._clock() / self.resolution_s)
        idx = epoch % self._nbuckets
        with self._lock:
            if self._epochs[idx] != epoch:
                self._epochs[idx] = epoch
                self._counts[idx] = 0
            self._counts[idx] += n

    def rate(self) -> float:
        """Events per second over the trailing window.

        Early in life the divisor is the actual uptime (not the full
        window), so a fresh server under load reports its true rate
        instead of a diluted one.
        """
        now = self._clock()
        current = int(now / self.resolution_s)
        oldest = current - self._nbuckets + 1
        with self._lock:
            events = sum(
                c
                for c, e in zip(self._counts, self._epochs)
                if e >= oldest
            )
        span = min(self.window_s, max(now - self._started, self.resolution_s))
        return events / span


class Registry:
    """Get-or-create namespace of metrics keyed on ``(name, labels)``.

    ``register_collector`` hooks late-bound sources (device clocks, the
    memo, the delta store): collectors run right before every
    ``snapshot()``/render so gauges reflect the current state without
    the sources pushing on their own hot paths.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}
        self._lock = threading.Lock()
        self._collectors: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    @staticmethod
    def _key(name: str, labels: dict[str, Any]) -> tuple[str, tuple[tuple[str, str], ...]]:
        return name, tuple(sorted((k, str(v)) for k, v in labels.items()))

    def _get_or_create(self, name: str, labels: dict[str, Any], factory):
        key = self._key(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(name, labels, Gauge)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._get_or_create(name, labels, lambda: Histogram(buckets))

    def register_collector(self, fn: Callable[[], None]) -> None:
        with self._lock:
            self._collectors.append(fn)

    # ------------------------------------------------------------------
    def collect(self) -> list[tuple[str, dict[str, str], Any]]:
        """Run collectors, then list ``(name, labels, metric)`` sorted."""
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            fn()
        with self._lock:
            items = sorted(self._metrics.items())
        return [(name, dict(labels), metric) for (name, labels), metric in items]

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe dump: ``{name: {label_repr: value_or_histogram}}``.

        Unlabelled metrics collapse to ``{name: value}`` directly.
        """
        out: dict[str, Any] = {}
        for name, labels, metric in self.collect():
            value = (
                metric.snapshot() if isinstance(metric, Histogram) else metric.value
            )
            if not labels:
                out[name] = value
            else:
                label_repr = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                out.setdefault(name, {})[label_repr] = value
        return out
