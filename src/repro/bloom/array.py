"""Packed signature arrays with vectorized bitwise-subset operations.

TagMatch's hot paths — the GPU subset-match kernel (Algorithm 3), the
thread-block pre-filter (Algorithm 4), and the partition pre-process
(Algorithm 2) — all reduce to block-wise operations on 192-bit vectors.
:class:`SignatureArray` stores ``n`` signatures as an ``(n, num_blocks)``
``uint64`` NumPy array and exposes those operations in vectorized form;
this plays the role that SIMD/CUDA data parallelism plays in the paper's
C++/CUDA implementation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.bloom.filter import BloomSignature
from repro.bloom.hashing import BLOCK_BITS, TagHasher
from repro.errors import ValidationError

__all__ = ["SignatureArray"]

_U64 = np.uint64


def _as_blocks(blocks: np.ndarray) -> np.ndarray:
    arr = np.ascontiguousarray(blocks, dtype=_U64)
    if arr.ndim != 2:
        raise ValidationError(f"expected a 2-D block array, got shape {arr.shape}")
    return arr


def _bit_length_u64(x: np.ndarray) -> np.ndarray:
    """Vectorized bit_length for uint64 (0 for zero input)."""
    x = x.astype(_U64, copy=True)
    n = np.zeros(x.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        big = x >= (_U64(1) << _U64(shift))
        n[big] += shift
        x[big] >>= _U64(shift)
    n[x > 0] += 1
    return n


class SignatureArray:
    """A column of Bloom-filter signatures packed into 64-bit blocks.

    The array is the storage format of the tagset table (on the simulated
    GPU) and of the partition masks (on the host).  All operations are
    NumPy-vectorized; none iterate per signature in Python.
    """

    __slots__ = ("blocks", "width")

    def __init__(self, blocks: np.ndarray, width: int | None = None) -> None:
        self.blocks = _as_blocks(blocks)
        inferred = self.blocks.shape[1] * BLOCK_BITS
        self.width = width if width is not None else inferred
        if self.width != inferred:
            raise ValidationError(
                f"width {self.width} does not match {self.blocks.shape[1]} blocks"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_tag_sets(
        cls, tag_sets: Sequence[Iterable[str]], hasher: TagHasher
    ) -> "SignatureArray":
        """Encode many tag sets at once."""
        return cls(hasher.encode_sets(tag_sets), width=hasher.width)

    @classmethod
    def from_signatures(cls, sigs: Sequence[BloomSignature]) -> "SignatureArray":
        """Pack scalar signatures (all of equal width) into an array."""
        if not sigs:
            raise ValidationError("cannot build a SignatureArray from no signatures")
        width = sigs[0].width
        rows = np.empty((len(sigs), width // BLOCK_BITS), dtype=_U64)
        for i, sig in enumerate(sigs):
            if sig.width != width:
                raise ValidationError("mixed signature widths")
            rows[i] = sig.blocks
        return cls(rows, width=width)

    @classmethod
    def zeros(cls, n: int, width: int) -> "SignatureArray":
        """``n`` all-zero signatures of the given width."""
        if width <= 0 or width % BLOCK_BITS != 0:
            raise ValidationError(f"width must be a multiple of {BLOCK_BITS}")
        return cls(np.zeros((n, width // BLOCK_BITS), dtype=_U64), width=width)

    # ------------------------------------------------------------------
    # Size / element access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.blocks.shape[0]

    @property
    def num_blocks(self) -> int:
        return self.blocks.shape[1]

    @property
    def nbytes(self) -> int:
        """Bytes of signature payload (what a device upload would copy)."""
        return self.blocks.nbytes

    def row(self, index: int) -> BloomSignature:
        """Materialize row ``index`` as a scalar signature."""
        return BloomSignature((int(w) for w in self.blocks[index]), width=self.width)

    def take(self, indices: np.ndarray) -> "SignatureArray":
        """Gather the given rows into a new array."""
        return SignatureArray(self.blocks[np.asarray(indices)], width=self.width)

    def signatures(self) -> list[BloomSignature]:
        """Materialize every row (test/debug helper; O(n) Python objects)."""
        return [self.row(i) for i in range(len(self))]

    # ------------------------------------------------------------------
    # Subset relations (the core primitive)
    # ------------------------------------------------------------------
    def subset_of(self, query: np.ndarray) -> np.ndarray:
        """Boolean mask of rows that are bitwise subsets of ``query``.

        ``query`` is a single signature as a ``(num_blocks,)`` uint64
        vector.  Row ``i`` matches iff ``blocks[i] & ~query == 0`` in every
        block — exactly the three block operations of footnote 4.
        """
        q = np.asarray(query, dtype=_U64).reshape(-1)
        if q.shape[0] != self.num_blocks:
            raise ValidationError("query block count mismatch")
        return ~np.any(self.blocks & ~q, axis=1)

    def subset_of_each(self, queries: "SignatureArray") -> np.ndarray:
        """``(n, q)`` boolean matrix: row-``i``-is-subset-of-query-``j``.

        This is the all-pairs form used by the simulated GPU kernel when it
        evaluates a whole batch of queries against a partition.
        """
        if queries.num_blocks != self.num_blocks:
            raise ValidationError("query block count mismatch")
        mismatch = self.blocks[:, None, :] & ~queries.blocks[None, :, :]
        return ~np.any(mismatch, axis=2)

    def contains(self, mask: np.ndarray) -> np.ndarray:
        """Boolean mask of rows ``r`` with ``mask ⊆ r`` (bitwise)."""
        m = np.asarray(mask, dtype=_U64).reshape(-1)
        if m.shape[0] != self.num_blocks:
            raise ValidationError("mask block count mismatch")
        return ~np.any(~self.blocks & m, axis=1)

    # ------------------------------------------------------------------
    # Orderings and bit statistics
    # ------------------------------------------------------------------
    def lex_sort_order(self) -> np.ndarray:
        """Indices that sort rows in lexicographic (bit-string) order.

        The tagset table keeps each partition in this order so that
        consecutive thread blocks share long common prefixes
        (Algorithm 4).
        """
        # np.lexsort sorts by the *last* key first, so feed blocks in
        # reverse column order to make block 0 the primary key.
        keys = tuple(self.blocks[:, col] for col in range(self.num_blocks - 1, -1, -1))
        return np.lexsort(keys)

    def leftmost_one_positions(self) -> np.ndarray:
        """Per-row position of the leftmost one-bit (``width`` if zero)."""
        n = len(self)
        out = np.full(n, self.width, dtype=np.int64)
        undecided = np.ones(n, dtype=bool)
        for col in range(self.num_blocks):
            column = self.blocks[:, col]
            hit = undecided & (column != 0)
            if np.any(hit):
                lengths = _bit_length_u64(column[hit])
                out[hit] = col * BLOCK_BITS + (BLOCK_BITS - lengths)
                undecided &= ~hit
            if not np.any(undecided):
                break
        return out

    def popcounts(self) -> np.ndarray:
        """Per-row number of one-bits."""
        return np.bitwise_count(self.blocks).sum(axis=1).astype(np.int64)

    def bit_frequencies(self) -> np.ndarray:
        """``(width,)`` count of rows having each bit set.

        Used by Algorithm 1 to pick the pivot bit whose frequency is
        closest to 50 % of the current partition.
        """
        if len(self) == 0:
            return np.zeros(self.width, dtype=np.int64)
        big_endian = self.blocks.astype(">u8").view(np.uint8)
        bits = np.unpackbits(big_endian, axis=1)
        return bits.sum(axis=0, dtype=np.int64)

    def unique(self) -> tuple["SignatureArray", np.ndarray]:
        """Deduplicate rows.

        Returns ``(unique_rows, inverse)`` where ``inverse[i]`` is the row
        of the unique array equal to original row ``i``.  The engine uses
        this to merge keys of users with identical interests (the paper's
        300 M users map to 212 M *unique* sets).
        """
        uniq, inverse = np.unique(self.blocks, axis=0, return_inverse=True)
        return SignatureArray(uniq, width=self.width), inverse.reshape(-1)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __getitem__(self, key) -> "SignatureArray":
        sub = self.blocks[key]
        if sub.ndim == 1:
            sub = sub.reshape(1, -1)
        return SignatureArray(sub, width=self.width)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignatureArray):
            return NotImplemented
        return self.width == other.width and np.array_equal(self.blocks, other.blocks)

    def __hash__(self) -> int:  # pragma: no cover - arrays are not hashable
        raise TypeError("SignatureArray is not hashable")

    def __repr__(self) -> str:
        return f"SignatureArray(n={len(self)}, width={self.width})"
