"""False-positive analysis for Bloom-filter subset checks.

Footnote 3 of the paper derives the probability that the bitwise check
``B1 ⊆ B2`` reports a false positive for tag sets with ``S1 ⊄ S2``:

    P(B1 ⊆ B2) = (1 - e^(-k |S2| / m)) ** (k |S1 \\ S2|)

and observes that for the concrete parameters (m = 192, k = 7) the
probability is about 1e-11 both for (|S2| = 10, diff = 3) and for
(|S2| = 5, diff = 2).  These functions reproduce that analysis and help
choose parameters for other application domains.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError

__all__ = [
    "subset_false_positive_probability",
    "expected_fill_fraction",
    "optimal_num_hashes",
    "membership_false_positive_probability",
    "recommend_parameters",
]


def _check_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ValidationError(f"{name} must be positive, got {value}")


def subset_false_positive_probability(
    width: int, num_hashes: int, query_set_size: int, difference_size: int
) -> float:
    """Probability that ``B1 ⊆ B2`` holds although ``S1 ⊄ S2``.

    Parameters mirror footnote 3: ``width`` is ``m``, ``num_hashes`` is
    ``k``, ``query_set_size`` is ``|S2|`` and ``difference_size`` is
    ``|S1 \\ S2| > 0``.
    """
    _check_positive(width=width, num_hashes=num_hashes, query_set_size=query_set_size)
    if difference_size <= 0:
        raise ValidationError(
            "difference_size must be positive (otherwise S1 really is a subset)"
        )
    single_bit = 1.0 - math.exp(-num_hashes * query_set_size / width)
    return single_bit ** (num_hashes * difference_size)


def expected_fill_fraction(width: int, num_hashes: int, set_size: int) -> float:
    """Expected fraction of one-bits after inserting ``set_size`` tags."""
    _check_positive(width=width, num_hashes=num_hashes)
    if set_size < 0:
        raise ValidationError("set_size must be non-negative")
    return 1.0 - math.exp(-num_hashes * set_size / width)


def optimal_num_hashes(width: int, set_size: int) -> int:
    """The ``k`` minimizing membership false positives: ``(m/n) ln 2``."""
    _check_positive(width=width, set_size=set_size)
    return max(1, round(width / set_size * math.log(2)))


def membership_false_positive_probability(
    width: int, num_hashes: int, set_size: int
) -> float:
    """Classic single-element membership false-positive rate."""
    return expected_fill_fraction(width, num_hashes, set_size) ** num_hashes


def recommend_parameters(
    max_query_size: int,
    min_difference: int = 1,
    target_probability: float = 1e-9,
    max_width: int = 1024,
) -> tuple[int, int]:
    """Choose ``(width, num_hashes)`` for an application domain.

    Returns the smallest width (multiple of 64, for block packing) and a
    hash count such that the subset false-positive probability of
    footnote 3 stays below ``target_probability`` for queries of up to
    ``max_query_size`` tags and candidate sets differing by at least
    ``min_difference`` tags.  The paper's own (192, 7) falls out of
    ``recommend_parameters(10, 3, 1e-10)``.
    """
    _check_positive(
        max_query_size=max_query_size,
        min_difference=min_difference,
        target_probability=target_probability,
    )
    for width in range(64, max_width + 1, 64):
        # For fixed width the probability is minimised near k = (m/n) ln2
        # of the *query* size; search the neighbourhood.
        centre = max(1, round(width / max_query_size * math.log(2)))
        for k in range(max(1, centre - 6), centre + 4):
            p = subset_false_positive_probability(
                width, k, max_query_size, min_difference
            )
            if p <= target_probability:
                return width, k
    raise ValidationError(
        f"no (width ≤ {max_width}, k) meets the target probability "
        f"{target_probability} for {max_query_size}-tag queries"
    )
