"""Shared vectorized bit-vector operations.

`containment_matrix` is the all-pairs bitwise-subset primitive used by
the subset-match kernel, the partition-table pre-process, and the
GPU-only matcher.  It accumulates the mismatch mask word by word, which
avoids materialising a 3-D ``(n, m, words)`` temporary — the dominant
cost of the naive broadcast on wide inputs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["containment_matrix"]


def containment_matrix(subs: np.ndarray, supers: np.ndarray) -> np.ndarray:
    """Boolean ``(len(subs), len(supers))``: ``subs[i] ⊆ supers[j]``.

    Both inputs are ``(n, words)`` uint64 block arrays.  Entry ``(i, j)``
    is true iff every one-bit of ``subs[i]`` is set in ``supers[j]``
    (footnote 4's per-block check, evaluated across all pairs).
    """
    if subs.ndim != 2 or supers.ndim != 2 or subs.shape[1] != supers.shape[1]:
        raise ValidationError("containment_matrix needs matching (n, words) arrays")
    mismatch = subs[:, 0][:, None] & ~supers[:, 0][None, :]
    for word in range(1, subs.shape[1]):
        mismatch |= subs[:, word][:, None] & ~supers[:, word][None, :]
    return mismatch == 0
