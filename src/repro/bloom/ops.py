"""Shared vectorized bit-vector operations.

`containment_matrix` is the all-pairs bitwise-subset primitive used by
the subset-match kernel, the partition-table pre-process, and the
GPU-only matcher.  It accumulates the mismatch mask word by word, which
avoids materialising a 3-D ``(n, m, words)`` temporary — the dominant
cost of the naive broadcast on wide inputs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["containment_matrix"]


def containment_matrix(
    subs: np.ndarray, supers: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Boolean ``(len(subs), len(supers))``: ``subs[i] ⊆ supers[j]``.

    Both inputs are ``(n, words)`` uint64 block arrays.  Entry ``(i, j)``
    is true iff every one-bit of ``subs[i]`` is set in ``supers[j]``
    (footnote 4's per-block check, evaluated across all pairs).

    The word loop exits early once the mismatch mask is saturated (every
    pair already disqualified) — later words cannot resurrect a pair.
    ``out``, when given, is a preallocated boolean buffer with capacity
    for at least ``(n, m)``; the result is written into (a view of) it
    instead of a fresh allocation, composing with the kernel's reusable
    result arenas.
    """
    if subs.ndim != 2 or supers.ndim != 2 or subs.shape[1] != supers.shape[1]:
        raise ValidationError("containment_matrix needs matching (n, words) arrays")
    n, m = subs.shape[0], supers.shape[0]
    mismatch = subs[:, 0][:, None] & ~supers[:, 0][None, :]
    for word in range(1, subs.shape[1]):
        # Saturation early-exit: once every pair has a mismatching word,
        # the remaining words cannot change the outcome.
        if mismatch.all():
            break
        np.bitwise_or(
            mismatch, subs[:, word][:, None] & ~supers[:, word][None, :], out=mismatch
        )
    if out is None:
        return mismatch == 0
    if out.ndim != 2 or out.shape[0] < n or out.shape[1] < m:
        raise ValidationError(
            f"containment_matrix out buffer {out.shape} too small for ({n}, {m})"
        )
    view = out[:n, :m]
    np.equal(mismatch, 0, out=view)
    return view
