"""Hashing of string tags into Bloom-filter bit positions.

TagMatch (§3) represents every tag set as an *m*-bit Bloom filter built
with *k* hash functions; the paper's concrete system uses ``m = 192`` and
``k = 7``.  This module maps a string tag to its ``k`` bit positions using
the classic double-hashing scheme of Kirsch and Mitzenmacher: two
independent 64-bit FNV-1a hashes ``h1`` and ``h2`` yield the family
``h_i(tag) = (h1 + i * h2) mod m``.

Bit-numbering convention (used consistently across the whole package):
position ``0`` is the *leftmost* bit, i.e. the most significant bit of
64-bit block ``0``.  With this convention the unsigned lexicographic order
of the block tuples equals the lexicographic order of the bit strings,
which is what both the partition table (Algorithm 2) and the thread-block
common-prefix optimisation (Algorithm 4) rely on.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = ["fnv1a_64", "TagHasher", "BLOCK_BITS", "DEFAULT_WIDTH", "DEFAULT_NUM_HASHES"]

#: Number of bits per signature block (one unsigned 64-bit word).
BLOCK_BITS = 64

#: Bloom-filter width used by the paper's concrete TagMatch implementation.
DEFAULT_WIDTH = 192

#: Number of hash functions used by the paper's concrete implementation.
DEFAULT_NUM_HASHES = 7

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_U64_MASK = 0xFFFFFFFFFFFFFFFF


def fnv1a_64(data: bytes, seed: int = 0) -> int:
    """Return the 64-bit FNV-1a hash of ``data``.

    ``seed`` perturbs the offset basis so that independent hash functions
    can be derived from the same byte string.
    """
    h = (_FNV_OFFSET ^ (seed * 0x9E3779B97F4A7C15)) & _U64_MASK
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _U64_MASK
    return h


class TagHasher:
    """Maps string tags to Bloom-filter bit positions and block masks.

    Parameters
    ----------
    width:
        Bloom filter width in bits.  Must be a positive multiple of 64 so
        that signatures pack exactly into unsigned 64-bit blocks.
    num_hashes:
        Number of hash functions (``k``).
    seed:
        Seed mixed into both FNV hashes; two hashers with different seeds
        produce statistically independent encodings.

    The hasher caches the per-tag block mask, because workloads reuse a
    comparatively small tag vocabulary across hundreds of thousands of
    sets; encoding a set is then just a bitwise OR of cached masks.
    """

    def __init__(
        self,
        width: int = DEFAULT_WIDTH,
        num_hashes: int = DEFAULT_NUM_HASHES,
        seed: int = 0,
    ) -> None:
        if width <= 0 or width % BLOCK_BITS != 0:
            raise ValidationError(
                f"width must be a positive multiple of {BLOCK_BITS}, got {width}"
            )
        if num_hashes <= 0:
            raise ValidationError(f"num_hashes must be positive, got {num_hashes}")
        self.width = width
        self.num_hashes = num_hashes
        self.seed = seed
        self.num_blocks = width // BLOCK_BITS
        self._mask_cache: dict[str, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Per-tag primitives
    # ------------------------------------------------------------------
    def bit_positions(self, tag: str) -> tuple[int, ...]:
        """Return the ``k`` bit positions for ``tag`` (duplicates possible)."""
        data = tag.encode("utf-8")
        h1 = fnv1a_64(data, seed=self.seed)
        # Forcing h2 odd makes the double-hash progression cycle through
        # the whole table for power-of-two widths and avoids h2 == 0.
        h2 = fnv1a_64(data, seed=self.seed + 1) | 1
        return tuple((h1 + i * h2) % self.width for i in range(self.num_hashes))

    def tag_mask(self, tag: str) -> tuple[int, ...]:
        """Return the tag's signature as a tuple of block words (cached)."""
        cached = self._mask_cache.get(tag)
        if cached is not None:
            return cached
        blocks = [0] * self.num_blocks
        for pos in self.bit_positions(tag):
            block, offset = divmod(pos, BLOCK_BITS)
            blocks[block] |= 1 << (BLOCK_BITS - 1 - offset)
        mask = tuple(blocks)
        self._mask_cache[tag] = mask
        return mask

    # ------------------------------------------------------------------
    # Set encoding
    # ------------------------------------------------------------------
    def encode_set(self, tags: Iterable[str]) -> tuple[int, ...]:
        """Encode a tag set as a tuple of block words (OR of tag masks)."""
        blocks = [0] * self.num_blocks
        empty = True
        for tag in tags:
            empty = False
            for i, word in enumerate(self.tag_mask(tag)):
                blocks[i] |= word
        if empty:
            raise ValidationError("cannot encode an empty tag set")
        return tuple(blocks)

    def encode_sets(self, tag_sets: Sequence[Iterable[str]]) -> np.ndarray:
        """Encode many tag sets into a ``(n, num_blocks)`` uint64 array."""
        out = np.zeros((len(tag_sets), self.num_blocks), dtype=np.uint64)
        for row, tags in enumerate(tag_sets):
            out[row] = self.encode_set(tags)
        return out

    def cache_size(self) -> int:
        """Number of distinct tags whose masks are currently cached."""
        return len(self._mask_cache)

    def clear_cache(self) -> None:
        """Drop all cached tag masks (mainly useful in memory experiments)."""
        self._mask_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TagHasher(width={self.width}, num_hashes={self.num_hashes}, "
            f"seed={self.seed})"
        )
