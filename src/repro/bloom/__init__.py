"""Bloom-filter signatures: TagMatch's set representation (paper §3).

Sets of string tags are encoded as fixed-width bit vectors (192 bits with
7 hash functions in the paper's concrete system) that admit constant-time
bitwise subset checks, at the cost of a tiny, quantifiable false-positive
probability (footnote 3, reproduced in :mod:`repro.bloom.analysis`).
"""

from repro.bloom.analysis import (
    expected_fill_fraction,
    membership_false_positive_probability,
    optimal_num_hashes,
    subset_false_positive_probability,
)
from repro.bloom.array import SignatureArray
from repro.bloom.filter import BloomSignature
from repro.bloom.hashing import (
    BLOCK_BITS,
    DEFAULT_NUM_HASHES,
    DEFAULT_WIDTH,
    TagHasher,
    fnv1a_64,
)

__all__ = [
    "BLOCK_BITS",
    "DEFAULT_NUM_HASHES",
    "DEFAULT_WIDTH",
    "BloomSignature",
    "SignatureArray",
    "TagHasher",
    "expected_fill_fraction",
    "fnv1a_64",
    "membership_false_positive_probability",
    "optimal_num_hashes",
    "subset_false_positive_probability",
]
