"""Scalar Bloom-filter signatures.

:class:`BloomSignature` is the readable, immutable, single-signature
counterpart of :class:`repro.bloom.array.SignatureArray`.  The trie-based
baselines and much of the test suite operate on scalar signatures; the hot
paths of TagMatch itself use the packed array form.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.bloom.hashing import BLOCK_BITS, TagHasher
from repro.errors import ValidationError

__all__ = ["BloomSignature"]


class BloomSignature:
    """An immutable ``width``-bit Bloom-filter signature.

    The signature stores its bits as a tuple of unsigned 64-bit block
    words; bit position 0 is the most significant bit of block 0 (see
    :mod:`repro.bloom.hashing` for the convention).
    """

    __slots__ = ("blocks", "width")

    def __init__(self, blocks: Iterable[int], width: int | None = None) -> None:
        self.blocks = tuple(int(b) for b in blocks)
        self.width = width if width is not None else len(self.blocks) * BLOCK_BITS
        if self.width != len(self.blocks) * BLOCK_BITS:
            raise ValidationError(
                f"width {self.width} does not match {len(self.blocks)} blocks"
            )
        for word in self.blocks:
            if word < 0 or word >> BLOCK_BITS:
                raise ValidationError(f"block word out of 64-bit range: {word:#x}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_tags(cls, tags: Iterable[str], hasher: TagHasher) -> "BloomSignature":
        """Encode a tag set with ``hasher``."""
        return cls(hasher.encode_set(tags), width=hasher.width)

    @classmethod
    def from_bits(cls, positions: Iterable[int], width: int) -> "BloomSignature":
        """Build a signature with exactly the given bit positions set."""
        if width <= 0 or width % BLOCK_BITS != 0:
            raise ValidationError(f"width must be a multiple of {BLOCK_BITS}")
        blocks = [0] * (width // BLOCK_BITS)
        for pos in positions:
            pos = int(pos)  # accept NumPy integers without int64 overflow
            if not 0 <= pos < width:
                raise ValidationError(f"bit position {pos} out of range [0, {width})")
            block, offset = divmod(pos, BLOCK_BITS)
            blocks[block] |= 1 << (BLOCK_BITS - 1 - offset)
        return cls(blocks, width=width)

    @classmethod
    def zero(cls, width: int) -> "BloomSignature":
        """The empty (all-zero) signature."""
        if width <= 0 or width % BLOCK_BITS != 0:
            raise ValidationError(f"width must be a multiple of {BLOCK_BITS}")
        return cls((0,) * (width // BLOCK_BITS), width=width)

    # ------------------------------------------------------------------
    # Set-algebra on bit vectors
    # ------------------------------------------------------------------
    def issubset(self, other: "BloomSignature") -> bool:
        """Bitwise inclusion: every one-bit of ``self`` is set in ``other``.

        This is the check at the heart of TagMatch: for tag sets
        ``S1 ⊆ S2`` implies ``B1 ⊆ B2``, and the converse holds with high
        probability (§3, footnote 3).
        """
        return all(a & ~b == 0 for a, b in zip(self.blocks, other.blocks))

    def __or__(self, other: "BloomSignature") -> "BloomSignature":
        self._check_compatible(other)
        return BloomSignature(
            (a | b for a, b in zip(self.blocks, other.blocks)), width=self.width
        )

    def __and__(self, other: "BloomSignature") -> "BloomSignature":
        self._check_compatible(other)
        return BloomSignature(
            (a & b for a, b in zip(self.blocks, other.blocks)), width=self.width
        )

    def with_bit(self, position: int) -> "BloomSignature":
        """Return a copy of this signature with one extra bit set."""
        single = BloomSignature.from_bits([position], self.width)
        return self | single

    # ------------------------------------------------------------------
    # Bit inspection
    # ------------------------------------------------------------------
    def get_bit(self, position: int) -> int:
        """Return bit value (0 or 1) at ``position``."""
        if not 0 <= position < self.width:
            raise ValidationError(f"bit position {position} out of range")
        block, offset = divmod(position, BLOCK_BITS)
        return (self.blocks[block] >> (BLOCK_BITS - 1 - offset)) & 1

    def bits(self) -> Iterator[int]:
        """Yield the positions of all one-bits in increasing order."""
        for block_index, word in enumerate(self.blocks):
            base = block_index * BLOCK_BITS
            while word:
                leading = BLOCK_BITS - word.bit_length()
                yield base + leading
                word &= ~(1 << (word.bit_length() - 1))

    def popcount(self) -> int:
        """Number of one-bits in the signature."""
        return sum(word.bit_count() for word in self.blocks)

    def leftmost_one(self) -> int:
        """Position of the leftmost one-bit, or ``width`` if empty.

        The partition table (Algorithm 2) buckets masks by this value.
        """
        for block_index, word in enumerate(self.blocks):
            if word:
                return block_index * BLOCK_BITS + (BLOCK_BITS - word.bit_length())
        return self.width

    def is_zero(self) -> bool:
        """True when no bit is set."""
        return all(word == 0 for word in self.blocks)

    def to_bitstring(self) -> str:
        """Render as a '0'/'1' string, leftmost bit first (debugging)."""
        return "".join(format(word, f"0{BLOCK_BITS}b") for word in self.blocks)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "BloomSignature") -> None:
        if self.width != other.width:
            raise ValidationError(
                f"signature widths differ: {self.width} vs {other.width}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomSignature):
            return NotImplemented
        return self.width == other.width and self.blocks == other.blocks

    def __hash__(self) -> int:
        return hash((self.width, self.blocks))

    def __lt__(self, other: "BloomSignature") -> bool:
        """Lexicographic (bit-string) order — the tagset-table sort order."""
        self._check_compatible(other)
        return self.blocks < other.blocks

    def __le__(self, other: "BloomSignature") -> bool:
        self._check_compatible(other)
        return self.blocks <= other.blocks

    def __repr__(self) -> str:
        words = ", ".join(f"{word:#018x}" for word in self.blocks)
        return f"BloomSignature([{words}])"
