"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    A one-minute tour of the Table 2 interface on a toy database.
``workload``
    Generate the §4.2 Twitter-like workload and print its statistics.
``build``
    Generate a workload, consolidate an engine over it, and save the
    index as a snapshot.
``bench``
    Quick throughput/latency measurement of the matching pipeline.
``match``
    Load a snapshot and answer one query from the command line.
``serve``
    Run the online pub/sub matching server (``repro.service``) over a
    snapshot or a freshly built index, until SIGINT.
``trace``
    Fetch the per-stage span summary from a running server and render
    it as a flame-style text chart.
``loadgen``
    Drive an open-loop Poisson burst against a running server.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.config import TagMatchConfig
from repro.core.engine import TagMatch
from repro.harness.runner import latency_percentiles
from repro.workloads import generate_twitter_workload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TagMatch: high-throughput subset matching (EuroSys '17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run a small end-to-end demo")

    p_workload = sub.add_parser("workload", help="generate a Twitter-like workload")
    p_workload.add_argument("--users", type=int, default=20_000)
    p_workload.add_argument("--seed", type=int, default=0)

    p_build = sub.add_parser("build", help="build an index and save a snapshot")
    p_build.add_argument("--users", type=int, default=20_000)
    p_build.add_argument("--seed", type=int, default=0)
    p_build.add_argument("--max-partition-size", type=int, default=800)
    p_build.add_argument("--gpus", type=int, default=2)
    p_build.add_argument("--out", required=True, help="snapshot path (.npz)")

    p_bench = sub.add_parser("bench", help="measure matching throughput")
    p_bench.add_argument("--users", type=int, default=20_000)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--queries", type=int, default=2048)
    p_bench.add_argument("--max-partition-size", type=int, default=800)
    p_bench.add_argument("--gpus", type=int, default=2)
    p_bench.add_argument("--unique", action="store_true", help="measure match-unique")
    p_bench.add_argument(
        "--backend",
        choices=("inline", "thread", "process"),
        default="inline",
        help="where stage-2 kernels execute (see DESIGN.md §6)",
    )
    p_bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="backend worker count (pinning it forces a real process pool "
        "even on single-core hosts)",
    )

    p_match = sub.add_parser("match", help="query a saved snapshot")
    p_match.add_argument("--index", required=True, help="snapshot path (.npz)")
    p_match.add_argument("--tags", required=True, help="comma-separated query tags")
    p_match.add_argument("--unique", action="store_true")

    p_serve = sub.add_parser("serve", help="run the pub/sub matching server")
    p_serve.add_argument(
        "--index", default=None, help="start from a snapshot (.npz) instead of building"
    )
    p_serve.add_argument("--users", type=int, default=2_000)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--max-partition-size", type=int, default=800)
    p_serve.add_argument("--gpus", type=int, default=1)
    p_serve.add_argument(
        "--backend", choices=("inline", "thread", "process"), default="inline"
    )
    p_serve.add_argument("--workers", type=int, default=None)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7311)
    p_serve.add_argument("--batch-size", type=int, default=64, dest="ingress_batch")
    p_serve.add_argument(
        "--deadline-ms", type=float, default=10.0, help="initial ingress flush deadline"
    )
    p_serve.add_argument("--max-inflight", type=int, default=1024)
    p_serve.add_argument(
        "--reconsolidate-threshold",
        type=int,
        default=512,
        help="delta size triggering a background rebuild (0 disables)",
    )
    p_serve.add_argument(
        "--save-on-exit",
        default=None,
        help="fold the delta and save a snapshot here on shutdown",
    )
    p_serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="expose Prometheus plaintext metrics on this port (0 = ephemeral)",
    )
    p_serve.add_argument(
        "--no-trace",
        action="store_true",
        help="disable the span tracer (drops per-stage latency histograms)",
    )

    p_trace = sub.add_parser(
        "trace", help="per-stage flame summary from a running server"
    )
    p_trace.add_argument("--host", default="127.0.0.1")
    p_trace.add_argument("--port", type=int, default=7311)
    p_trace.add_argument(
        "--limit", type=int, default=2048, help="recent spans to aggregate"
    )

    p_loadgen = sub.add_parser("loadgen", help="open-loop load against a server")
    p_loadgen.add_argument("--host", default="127.0.0.1")
    p_loadgen.add_argument("--port", type=int, default=7311)
    p_loadgen.add_argument("--duration", type=float, default=5.0)
    p_loadgen.add_argument("--rate", type=float, default=500.0, help="offered ops/s")
    p_loadgen.add_argument("--sub-ratio", type=float, default=0.05)
    p_loadgen.add_argument("--unsub-ratio", type=float, default=0.02)
    p_loadgen.add_argument("--connections", type=int, default=4)
    p_loadgen.add_argument("--seed", type=int, default=0)
    p_loadgen.add_argument("--unique", action="store_true")

    return parser


def _cmd_demo(_: argparse.Namespace) -> int:
    config = TagMatchConfig(max_partition_size=8, num_gpus=1, batch_timeout_s=None)
    with TagMatch(config) as engine:
        engine.add_set({"cats", "memes"}, key=1)
        engine.add_set({"rust", "systems"}, key=2)
        engine.add_set({"cats"}, key=3)
        report = engine.consolidate()
        print(
            f"indexed {report.num_unique_sets} sets in "
            f"{report.partitioning.num_partitions} partitions"
        )
        for query in ({"cats", "memes", "monday"}, {"rust"}, {"nothing"}):
            keys = sorted(engine.match_unique(query).tolist())
            print(f"match-unique({sorted(query)}) -> {keys}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    workload = generate_twitter_workload(num_users=args.users, seed=args.seed)
    print(f"users:              {workload.num_users}")
    print(f"interests (assoc.): {workload.num_associations}")
    print(f"unique sets:        {workload.num_unique_sets}")
    print(f"mean tags/interest: {workload.interests.mean_tags():.2f}")
    print(f"generation time:    {workload.generation_s:.1f}s")
    return 0


def _build_engine(args: argparse.Namespace) -> tuple[TagMatch, object]:
    workload = generate_twitter_workload(num_users=args.users, seed=args.seed)
    config = TagMatchConfig(
        max_partition_size=args.max_partition_size,
        num_gpus=args.gpus,
        batch_size=256,
        batch_timeout_s=None,
        backend=getattr(args, "backend", "inline"),
        backend_workers=getattr(args, "workers", None),
    )
    engine = TagMatch(config)
    engine.add_signatures(workload.blocks, workload.keys)
    report = engine.consolidate()
    print(
        f"consolidated {report.num_associations} associations "
        f"({report.num_unique_sets} unique sets, "
        f"{report.partitioning.num_partitions} partitions) "
        f"in {report.elapsed_s:.1f}s"
    )
    return engine, workload


def _cmd_build(args: argparse.Namespace) -> int:
    engine, _ = _build_engine(args)
    engine.save(args.out)
    usage = engine.memory_usage()
    print(f"snapshot written to {args.out}")
    print(f"host {usage.host_bytes / 1e6:.1f} MB, GPU {usage.gpu_total_bytes / 1e6:.1f} MB")
    engine.close()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    engine, workload = _build_engine(args)
    queries = workload.queries(args.queries, seed=args.seed + 1)
    engine.match_stream(queries.blocks[:256], unique=args.unique)  # warm-up
    run = engine.match_stream(queries.blocks, unique=args.unique)
    pct = latency_percentiles(run.latencies_s)
    mode = "match-unique" if args.unique else "match"
    print(f"backend: {engine.backend.name} (workers={engine.backend.workers})")
    print(f"{mode}: {run.throughput_qps:.0f} queries/s over {run.num_queries} queries")
    print(f"output: {run.output_keys} keys ({run.output_keys / run.num_queries:.1f}/query)")
    print(f"latency p50={pct['p50_ms']:.1f}ms p99={pct['p99_ms']:.1f}ms")
    engine.close()
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    tags = {t.strip() for t in args.tags.split(",") if t.strip()}
    if not tags:
        print("error: --tags needs at least one tag", file=sys.stderr)
        return 2
    engine = TagMatch.load(args.index)
    try:
        keys = (
            engine.match_unique(tags) if args.unique else engine.match(tags)
        )
        print(f"{keys.size} keys:", np.sort(keys).tolist()[:100])
    finally:
        engine.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.config import ServiceConfig
    from repro.service.server import serve_until_interrupted

    if args.index is not None:
        engine = TagMatch.load(args.index)
        print(f"loaded snapshot {args.index}")
    else:
        engine, _ = _build_engine(args)
    service = ServiceConfig(
        host=args.host,
        port=args.port,
        ingress_batch_size=args.ingress_batch,
        batch_deadline_s=args.deadline_ms / 1e3,
        max_inflight=args.max_inflight,
        reconsolidate_threshold=args.reconsolidate_threshold,
        metrics_port=args.metrics_port,
        trace=not args.no_trace,
    )

    def ready(server) -> None:
        print(f"serving on {args.host}:{server.port} (ctrl-C to stop)", flush=True)
        if server.metrics_port is not None:
            print(
                f"metrics on http://{args.host}:{server.metrics_port}/metrics",
                flush=True,
            )

    asyncio.run(
        serve_until_interrupted(
            engine, service, snapshot_path=args.save_on_exit, ready_cb=ready
        )
    )
    print("server stopped")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import asyncio

    from repro.obs.export import format_flame
    from repro.service.protocol import ServiceClient

    async def fetch() -> dict:
        async with await ServiceClient.connect(args.host, args.port) as client:
            return await client.trace(limit=args.limit)

    summary = asyncio.run(fetch())
    if not summary.get("enabled", False):
        print("tracing is disabled on the server (started with --no-trace)")
    print(
        f"spans recorded: {summary.get('span_count', 0)} "
        f"(window: last {summary.get('window', 0)})"
    )
    print(format_flame(summary.get("stages", {})))
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.loadgen import run_loadgen

    report = asyncio.run(
        run_loadgen(
            args.host,
            args.port,
            duration_s=args.duration,
            rate_qps=args.rate,
            sub_ratio=args.sub_ratio,
            unsub_ratio=args.unsub_ratio,
            connections=args.connections,
            seed=args.seed,
            unique=args.unique,
        )
    )
    pct = report.percentiles()
    print(
        f"offered {report.offered_qps:.0f} ops/s, "
        f"achieved {report.qps:.0f} publishes/s over {report.elapsed_s:.1f}s"
    )
    print(
        f"completed={report.completed} overloaded={report.overloaded} "
        f"failed={report.failed} subs={report.subscribes} "
        f"unsubs={report.unsubscribes}"
    )
    print(
        f"publish latency p50={pct['p50_ms']:.1f}ms "
        f"p99={pct['p99_ms']:.1f}ms max={pct['max_ms']:.1f}ms "
        f"(overload rate {report.overload_rate:.1%})"
    )
    return 0 if report.failed == 0 else 1


_COMMANDS = {
    "demo": _cmd_demo,
    "workload": _cmd_workload,
    "build": _cmd_build,
    "bench": _cmd_bench,
    "match": _cmd_match,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "loadgen": _cmd_loadgen,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
