"""Projecting scaled measurements to the paper's full-scale deployment.

The benchmarks run at ``REPRO_SCALE`` of the 212 M-set workload on a
simulated device.  This module answers "what would this configuration do
at full scale on the paper's hardware?" from first principles that are
all either *measured here* or *documented constants*:

* the per-query work density — how many (set × query) subset checks a
  query induces — is measured on the scaled engine and extrapolated
  linearly in the database size (Figure 4 confirms throughput is
  inversely proportional to database size, i.e. work density is linear);
* GPU service time prices those checks with the cost model (launch
  overhead, lane count, per-check cost — the TITAN-X-calibrated numbers
  in :class:`repro.gpu.timing.CostModel`), split across the GPUs;
* CPU stage time is the measured pipeline overhead per query, scaled by
  a documented C++-over-Python factor and divided over the machine's
  cores.

The result is an order-of-magnitude sanity check, not a benchmark: with
the default constants the projection lands within a small factor of the
paper's ~30 K match-unique queries/s, which is what one should expect
from a model with two calibration constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import TagMatch
from repro.gpu.timing import CostModel
from repro.workloads.scaling import PAPER_UNIQUE_SETS
from repro.workloads.workload import TwitterWorkload

__all__ = ["FullScaleProjection", "project_full_scale", "CPP_OVER_PYTHON"]

#: Documented constant: tight C++ pipeline code vs interpreted Python for
#: the per-query bookkeeping of the CPU stages (batching, hashing,
#: counters).  20-50x is the routinely observed range; we use the low end.
CPP_OVER_PYTHON = 20.0


@dataclass
class FullScaleProjection:
    """Projected full-scale performance of one engine configuration."""

    measured_qps: float
    measured_checks_per_query: float
    projected_checks_per_query: float
    gpu_service_s_per_query: float
    cpu_stage_s_per_query: float
    projected_qps: float
    bottleneck: str


def project_full_scale(
    engine: TagMatch,
    workload: TwitterWorkload,
    num_queries: int = 2048,
    paper_cores: int = 24,
    paper_gpus: int = 2,
    cost_model: CostModel | None = None,
) -> FullScaleProjection:
    """Project the engine's throughput to the paper's scale and hardware.

    Measures the scaled work density and pipeline overhead on ``engine``
    (which must be consolidated over ``workload``), then prices the
    full-scale equivalents.
    """
    cost = cost_model if cost_model is not None else CostModel()
    queries = workload.queries(num_queries, seed=123)

    # Measure work density: subset checks per query on the scaled DB.
    matrix = engine.partition_table.relevant_matrix(queries.blocks)
    partition_sizes = [
        len(p) for p in engine.last_consolidate.partitioning.partitions
    ]
    checks = 0.0
    for pid, size in enumerate(partition_sizes):
        checks += float(matrix[:, pid].sum()) * size
    checks_per_query = checks / num_queries

    # Measure pipeline throughput and derive the CPU-stage overhead.
    engine.match_stream(queries.blocks[:256], unique=True)  # warm-up
    run = engine.match_stream(queries.blocks, unique=True)
    measured_qps = run.throughput_qps

    scale_up = PAPER_UNIQUE_SETS / max(1, engine.num_unique_sets)
    projected_checks = checks_per_query * scale_up

    # GPU side: one thread per scanned set, each checking the whole
    # 256-query batch (Algorithm 3), folded onto the device lanes and
    # split across the GPUs.  ``projected_checks`` is scanned sets per
    # query, which is also the thread count of the batch's kernels.
    kernel_s = cost.kernel_time(
        threads=int(projected_checks), checks_per_thread=256
    )
    gpu_per_query = kernel_s / 256 / paper_gpus + cost.transfer_time(192 // 8) / 256

    # CPU side: measured per-query pipeline overhead, rescaled to a C++
    # implementation spread over the paper's cores.
    cpu_per_query_here = 1.0 / measured_qps
    cpu_per_query = cpu_per_query_here / CPP_OVER_PYTHON / paper_cores

    per_query = max(gpu_per_query, cpu_per_query)
    return FullScaleProjection(
        measured_qps=measured_qps,
        measured_checks_per_query=checks_per_query,
        projected_checks_per_query=projected_checks,
        gpu_service_s_per_query=gpu_per_query,
        cpu_stage_s_per_query=cpu_per_query,
        projected_qps=1.0 / per_query,
        bottleneck="gpu" if gpu_per_query >= cpu_per_query else "cpu",
    )
