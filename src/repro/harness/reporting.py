"""Text rendering of experiment results (paper-style tables/series)."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ExperimentResult", "format_table", "save_result"]


def _render(value: Any) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: list[str], rows: list[list[Any]]) -> str:
    """Render an aligned plain-text table."""
    cells = [[_render(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    def line(parts):
        return "  ".join(p.rjust(w) for p, w in zip(parts, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


@dataclass
class ExperimentResult:
    """One reproduced table or figure: headers, rows, raw data, notes."""

    name: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    notes: str = ""
    data: dict = field(default_factory=dict)

    def to_text(self) -> str:
        parts = [f"== {self.name}: {self.title} ==", format_table(self.headers, self.rows)]
        if self.notes:
            parts.append(self.notes.rstrip())
        return "\n".join(parts) + "\n"


def save_result(result: ExperimentResult, directory: str = "benchmarks/results") -> str:
    """Write the rendered result under ``benchmarks/results`` and return
    the path (the bench harness also prints the same text)."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{result.name}.txt")
    with open(path, "w") as handle:
        handle.write(result.to_text())
    return path


def format_series_chart(
    x_values: list,
    series: dict[str, list[float]],
    width: int = 64,
    height: int = 12,
    log_y: bool = False,
) -> str:
    """Render line series as an ASCII chart (figures in terminal form).

    Each series gets a marker character; points are plotted on a
    ``height`` x ``width`` grid with a y-axis scaled linearly or
    logarithmically.  Intended for the figure-style experiment results.
    """
    import math

    markers = "ox+*#@%&"
    values = [v for ys in series.values() for v in ys if v is not None and v > 0]
    if not values:
        return "(no data)"
    y_min, y_max = min(values), max(values)
    if log_y:
        y_min, y_max = math.log10(y_min), math.log10(y_max)
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    n = len(x_values)
    for si, (name, ys) in enumerate(series.items()):
        marker = markers[si % len(markers)]
        for i, y in enumerate(ys):
            if y is None or y <= 0:
                continue
            yv = math.log10(y) if log_y else y
            col = int(i * (width - 1) / max(1, n - 1))
            row = int((yv - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker

    top = 10 ** y_max if log_y else y_max
    bottom = 10 ** y_min if log_y else y_min
    lines = [f"{top:>10.3g} ┤" + "".join(grid[0])]
    lines += ["           │" + "".join(row) for row in grid[1:-1]]
    lines.append(f"{bottom:>10.3g} ┤" + "".join(grid[-1]))
    lines.append("           └" + "─" * width)
    x_label = f"{x_values[0]} … {x_values[-1]}"
    lines.append("            " + x_label)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append("            " + legend)
    return "\n".join(lines)
