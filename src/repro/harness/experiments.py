"""One experiment function per table/figure of the paper (DESIGN.md §3).

Each function drives the systems under test over the scaled workload and
returns an :class:`ExperimentResult` whose rows mirror the paper's table
or figure series.  The benchmark modules under ``benchmarks/`` are thin
wrappers that run these functions, save their output, and assert the
paper's qualitative shape (who wins, trend directions, crossovers).
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.cpu_tagmatch import CpuTagMatchMatcher
from repro.baselines.gpu_only import GpuBatchedMatcher, GpuPlainMatcher
from repro.baselines.icn_matcher import BUILD_BYTES_PER_SET, ICNMatcher
from repro.baselines.mongodb_sim import MongoDBSim
from repro.baselines.prefix_tree import PrefixTreeMatcher
from repro.bloom.hashing import TagHasher
from repro.core.partitioning import balanced_partition
from repro.errors import CapacityError
from repro.gpu.device import Device
from repro.gpu.dynamic_parallelism import DevicePartition, DynamicParallelismMatcher
from repro.gpu.packing import naive_aligned_size, packed_size
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import latency_percentiles, measure_matcher
from repro.harness.workload_cache import (
    BENCH_MAX_P,
    build_engine,
    default_engine_config,
)
from repro.workloads.workload import TwitterWorkload

__all__ = [
    "icn_memory_budget",
    "table1_summary",
    "table3_cpu_systems",
    "fig2_fig3_query_size",
    "fig4_db_size",
    "fig5_threads",
    "fig6_latency",
    "fig7_maxp",
    "fig8_partitioning_time",
    "fig9_memory",
    "fig10_mongodb",
    "fig11_mongo_sharding",
    "sec45_gpu_only_design",
    "ablation_prefilter",
    "ablation_packing",
    "ablation_pivot",
]

#: Database sizes of Table 1, as fractions of the full 212 M-set workload.
TABLE1_SIZES = [("20M", 20 / 212), ("40M", 40 / 212), ("212M", 1.0)]


def icn_memory_budget(full_unique_sets: int) -> int:
    """The 64 GB build budget, scaled to the active workload.

    On the paper's machine the ICN matcher's restructuring working set
    fits in 64 GB only for databases up to ~20 % of the full workload.
    Database fractions here are fractions of *associations*, and
    deduplication is sublinear — 20 % of the associations covers ~27 %
    of the unique sets — so the scaled budget admits up to 30 % of the
    full workload's unique sets, which reproduces the paper's threshold:
    the 10 %/20 % databases build, the full one does not.
    """
    return int(BUILD_BYTES_PER_SET * full_unique_sets * 0.30)


def _best_run(engine, blocks, unique: bool = False, repeats: int = 2):
    """Warm up the pipeline, then return the best of ``repeats`` runs.

    Short streams pay fixed costs (thread spin-up, buffer allocation,
    shutdown flushes of partial batches); a warm-up pass plus best-of
    keeps the table rows representative of steady state.
    """
    engine.match_stream(blocks[: min(512, blocks.shape[0])], unique=unique)
    best = None
    for _ in range(repeats):
        run = engine.match_stream(blocks, unique=unique)
        if best is None or run.throughput_qps > best.throughput_qps:
            best = run
    return best


# ----------------------------------------------------------------------
# Table 1 — summary throughput of all six systems
# ----------------------------------------------------------------------
def table1_summary(workload: TwitterWorkload, fast_queries: int = 4096) -> ExperimentResult:
    budget = icn_memory_budget(workload.num_unique_sets)
    systems = [
        "GPU-only, plain",
        "GPU-only, plain with batching",
        "CPU-only, fast prefix tree",
        "CPU-only, state-of-the-art ICN",
        "CPU-only, TagMatch",
        "TagMatch",
    ]
    kqps: dict[str, list[float | None]] = {name: [] for name in systems}

    for _, frac in TABLE1_SIZES:
        blocks, keys = workload.fraction(frac)
        queries = workload.queries(fast_queries, seed=11, fraction=frac)

        plain = GpuPlainMatcher()
        plain.build(blocks, keys)
        r = measure_matcher("gpu-plain", plain.match_many, queries.blocks[:128])
        kqps["GPU-only, plain"].append(r.kqps)
        plain.close()

        batched = GpuBatchedMatcher(batch_size=256)
        batched.build(blocks, keys)
        r = measure_matcher("gpu-batched", batched.match_many, queries.blocks[:512])
        kqps["GPU-only, plain with batching"].append(r.kqps)
        batched.close()

        tree = PrefixTreeMatcher()
        tree.build(blocks, keys)
        r = measure_matcher("prefix-tree", tree.match_many, queries.blocks[:256])
        kqps["CPU-only, fast prefix tree"].append(r.kqps)

        icn = ICNMatcher(memory_budget_bytes=budget)
        try:
            icn.build(blocks, keys)
            r = measure_matcher("icn", icn.match_many, queries.blocks[:256])
            kqps["CPU-only, state-of-the-art ICN"].append(r.kqps)
        except CapacityError:
            # As in the paper: the index cannot be built for large sizes.
            kqps["CPU-only, state-of-the-art ICN"].append(None)

        cpu_tm = CpuTagMatchMatcher(max_partition_size=BENCH_MAX_P)
        cpu_tm.build(blocks, keys)
        r = measure_matcher("cpu-tagmatch", cpu_tm.match_many, queries.blocks[:256])
        kqps["CPU-only, TagMatch"].append(r.kqps)

        engine = build_engine(blocks, keys)
        run = _best_run(engine, queries.blocks)
        kqps["TagMatch"].append(run.throughput_qps / 1000.0)
        engine.close()

    rows = [[name] + kqps[name] for name in systems]
    return ExperimentResult(
        name="table1_summary",
        title="Throughput of TagMatch vs CPU-only and GPU-only systems "
        "(thousand queries per second)",
        headers=["system"] + [label for label, _ in TABLE1_SIZES],
        rows=rows,
        notes=(
            "Database sizes are the paper's 20M/40M/212M scaled by "
            f"REPRO_SCALE; full database here has {workload.num_unique_sets} "
            "unique sets.  '—' = index construction exceeded the scaled "
            "64 GB memory budget, as in the paper."
        ),
        data={"kqps": kqps},
    )


# ----------------------------------------------------------------------
# Table 3 — TagMatch vs prefix tree vs ICN at 10 % / 20 %
# ----------------------------------------------------------------------
def table3_cpu_systems(workload: TwitterWorkload) -> ExperimentResult:
    budget = icn_memory_budget(workload.num_unique_sets)
    fractions = [0.1, 0.2]
    cells: dict[tuple[str, str, float], float | None] = {}

    for frac in fractions:
        blocks, keys = workload.fraction(frac)
        queries = workload.queries(4096, seed=13, fraction=frac)

        engine = build_engine(blocks, keys)
        for mode, unique in (("match", False), ("match-unique", True)):
            run = _best_run(engine, queries.blocks, unique=unique)
            cells[("TagMatch", mode, frac)] = run.throughput_qps / 1000.0
        engine.close()

        tree = PrefixTreeMatcher()
        tree.build(blocks, keys)
        icn = ICNMatcher(memory_budget_bytes=budget)
        icn.build(blocks, keys)  # 10 % and 20 % fit, as in the paper
        for system, matcher in (("Prefix tree", tree), ("ICN matcher", icn)):
            for mode, unique in (("match", False), ("match-unique", True)):
                r = measure_matcher(
                    system,
                    lambda q, m=matcher, u=unique: m.match_many(q, unique=u),
                    queries.blocks[:256],
                )
                cells[(system, mode, frac)] = r.kqps

    rows = []
    for system in ("TagMatch", "Prefix tree", "ICN matcher"):
        rows.append(
            [system]
            + [cells[(system, "match", f)] for f in fractions]
            + [cells[(system, "match-unique", f)] for f in fractions]
        )
    return ExperimentResult(
        name="table3_cpu_systems",
        title="TagMatch vs CPU prefix tree vs ICN matcher, 10 % and 20 % of "
        "the full database (thousand queries per second)",
        headers=["system", "match 10%", "match 20%", "uniq 10%", "uniq 20%"],
        rows=rows,
        data={"cells": {f"{s}|{m}|{f}": v for (s, m, f), v in cells.items()}},
    )


# ----------------------------------------------------------------------
# Figures 2 and 3 — throughput and output rate vs query size
# ----------------------------------------------------------------------
def fig2_fig3_query_size(
    workload: TwitterWorkload, extra_tag_counts: tuple[int, ...] = tuple(range(1, 11))
) -> ExperimentResult:
    engine = build_engine(workload.blocks, workload.keys)
    tree = PrefixTreeMatcher()
    tree.build(workload.blocks, workload.keys)

    rows = []
    data: dict[str, list[float]] = {
        "tm_qps": [], "tm_out": [], "tree_qps": [], "tree_out": []
    }
    for extras in extra_tag_counts:
        queries = workload.queries(2048, seed=20 + extras, extra_tags=(extras, extras))
        run = _best_run(engine, queries.blocks, unique=True)
        tr = measure_matcher(
            "prefix-tree",
            lambda q: tree.match_many(q, unique=True),
            queries.blocks[:128],
        )
        data["tm_qps"].append(run.throughput_qps)
        data["tm_out"].append(run.output_keys / run.elapsed_s)
        data["tree_qps"].append(tr.qps)
        data["tree_out"].append(tr.output_rate)
        rows.append(
            [extras, run.throughput_qps, tr.qps,
             run.output_keys / run.elapsed_s, tr.output_rate]
        )
    engine.close()
    return ExperimentResult(
        name="fig2_fig3_query_size",
        title="match-unique with queries of different sizes: input throughput "
        "(Fig. 2) and output key rate (Fig. 3)",
        headers=["extra tags", "TagMatch q/s", "tree q/s", "TagMatch keys/s", "tree keys/s"],
        rows=rows,
        data=data,
    )


# ----------------------------------------------------------------------
# Figure 4 — throughput vs database size
# ----------------------------------------------------------------------
def fig4_db_size(
    workload: TwitterWorkload, fractions: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)
) -> ExperimentResult:
    rows = []
    data: dict[str, list[float]] = {
        "tm_match": [], "tm_unique": [], "tree_match": [], "tree_unique": []
    }
    for frac in fractions:
        blocks, keys = workload.fraction(frac)
        queries = workload.queries(4096, seed=31, fraction=frac)
        engine = build_engine(blocks, keys)
        tm_match = _best_run(engine, queries.blocks).throughput_qps
        tm_unique = _best_run(engine, queries.blocks, unique=True).throughput_qps
        engine.close()
        tree = PrefixTreeMatcher()
        tree.build(blocks, keys)
        tree_match = measure_matcher(
            "tree", tree.match_many, queries.blocks[:128]
        ).qps
        tree_unique = measure_matcher(
            "tree", lambda q: tree.match_many(q, unique=True), queries.blocks[:128]
        ).qps
        data["tm_match"].append(tm_match)
        data["tm_unique"].append(tm_unique)
        data["tree_match"].append(tree_match)
        data["tree_unique"].append(tree_unique)
        rows.append([f"{frac:.0%}", tm_match, tm_unique, tree_match, tree_unique])
    return ExperimentResult(
        name="fig4_db_size",
        title="Average throughput for match and match-unique vs database size "
        "(queries per second)",
        headers=["db size", "TagMatch match", "TagMatch uniq", "tree match", "tree uniq"],
        rows=rows,
        data=data,
    )


# ----------------------------------------------------------------------
# Figure 5 — throughput vs number of CPU threads
# ----------------------------------------------------------------------
#: Parallelism model for the thread-scaling experiment: the evaluation
#: host has a single CPU core, so the paper's 24-core (48-thread) curve
#: is reconstructed from *measured* serial stage costs.  CPU-stage time
#: scales with min(threads, CORES) real cores plus diminishing
#: hyper-threading gains beyond them (the paper's machine behaves this
#: way past 24 threads); the GPU service time is fixed work spread over
#: the two devices, degraded slightly per submitting thread by stream
#: contention (the paper's 20-stream limit).
FIG5_CORES = 24
FIG5_HYPERTHREAD_GAIN = 0.35
FIG5_CONTENTION_PER_THREAD = 0.006
#: The kernel wall time measured here is NumPy on one CPU core; a TITAN X
#: executes the same bitwise-scan workload roughly an order of magnitude
#: faster (a conservative figure for a 3072-lane part against one core).
FIG5_GPU_SPEEDUP = 16.0


def fig5_threads(
    workload: TwitterWorkload,
    thread_counts: tuple[int, ...] = (4, 8, 16, 24, 32, 40, 48),
) -> ExperimentResult:
    from repro.gpu.kernels import subset_match_kernel

    engine = build_engine(workload.blocks, workload.keys)
    queries = workload.queries(4096, seed=41)
    blocks = queries.blocks
    n = blocks.shape[0]

    # ---- measured serial stage decomposition ----
    t0 = time.perf_counter()
    matrix_parts = [
        engine.partition_table.relevant_matrix(blocks[lo : lo + 256])
        for lo in range(0, n, 256)
    ]
    matrix = np.vstack(matrix_parts)
    t_pre = time.perf_counter() - t0

    t0 = time.perf_counter()
    per_query_sets: list[list[np.ndarray]] = [[] for _ in range(n)]
    for pid in range(matrix.shape[1]):
        members = np.nonzero(matrix[:, pid])[0]
        if members.size == 0:
            continue
        residency = engine.tagset_table.residency(pid)
        for lo in range(0, members.size, 256):
            chunk = members[lo : lo + 256]
            result = subset_match_kernel(
                residency.sets.array(),
                residency.ids.array(),
                blocks[chunk],
                thread_block_size=engine.config.thread_block_size,
                prefixes=residency.prefixes.array(),
            )
            for local, sid in zip(result.query_ids, result.set_ids):
                per_query_sets[chunk[local]].append(sid)
    t_kernel = time.perf_counter() - t0

    # The CPU-stage cost is what the real pipeline spends outside the
    # kernels: measured pipeline elapsed minus the standalone kernel time.
    # match-unique adds the merge stage's np.unique per query, measured
    # separately so the two modes differ by the real merge cost rather
    # than by run-to-run noise of two pipeline measurements.
    run = engine.match_stream(blocks, num_threads=2)
    cpu_match = max(run.elapsed_s - t_kernel, 0.05 * run.elapsed_s)
    t0 = time.perf_counter()
    for keys in run.results:
        if keys.size:
            np.unique(keys)
    t_merge = (time.perf_counter() - t0) * 3  # unique-merge + dedup bookkeeping
    gpu_service = t_kernel / engine.config.num_gpus / FIG5_GPU_SPEEDUP
    stage = {
        "match": {
            "cpu_stage_s": cpu_match,
            "gpu_service_s": gpu_service,
            "serial_qps": run.throughput_qps,
        },
        "match-unique": {
            "cpu_stage_s": cpu_match + t_merge,
            "gpu_service_s": gpu_service,
            "serial_qps": run.throughput_qps,
        },
    }
    engine.close()

    def effective_cores(threads: int) -> float:
        base = min(threads, FIG5_CORES)
        return base + FIG5_HYPERTHREAD_GAIN * max(0, threads - FIG5_CORES)

    rows = []
    data: dict[str, list[float]] = {"match": [], "unique": []}
    for threads in thread_counts:
        row = [threads]
        for mode in ("match", "match-unique"):
            m = stage[mode]
            cpu_s = m["cpu_stage_s"] / effective_cores(threads)
            gpu_s = m["gpu_service_s"] * (1.0 + FIG5_CONTENTION_PER_THREAD * threads)
            qps = n / max(cpu_s, gpu_s)
            row.append(qps)
            data["match" if mode == "match" else "unique"].append(qps)
        rows.append(row)
    return ExperimentResult(
        name="fig5_threads",
        title="Throughput vs CPU threads (measured serial stage costs + "
        "parallelism model; single-core evaluation host)",
        headers=["threads", "match q/s", "match-unique q/s"],
        rows=rows,
        notes=(
            f"Measured per 4096 queries: pre-process {t_pre:.2f}s, kernel "
            f"{t_kernel:.2f}s; pipeline CPU stages — match "
            f"{stage['match']['cpu_stage_s']:.2f}s, match-unique "
            f"{stage['match-unique']['cpu_stage_s']:.2f}s.  Thread scaling "
            "applies the documented core/hyper-thread/stream-contention "
            "model (the host has one core)."
        ),
        data=dict(data, measured=stage),
    )


# ----------------------------------------------------------------------
# Figure 6 — latency distribution vs batch flush timeout
# ----------------------------------------------------------------------
def fig6_latency(
    workload: TwitterWorkload,
    timeouts_s: tuple[float | None, ...] = (None, 0.01, 0.02, 0.03, 0.05),
    num_queries: int = 3000,
) -> ExperimentResult:
    engine = build_engine(workload.blocks, workload.keys)
    queries = workload.queries(num_queries, seed=51)
    # Feed well below saturation so latency reflects batching delay, not
    # queueing behind an overloaded pipeline.
    probe = engine.match_stream(queries.blocks[:2048], unique=True)
    arrival = 0.4 * probe.throughput_qps
    rows = []
    data: dict[str, dict[str, float]] = {}
    for timeout in timeouts_s:
        run = engine.match_stream(
            queries.blocks,
            unique=True,
            batch_timeout_s=timeout,
            arrival_rate_qps=arrival,
        )
        pct = latency_percentiles(run.latencies_s)
        label = "none" if timeout is None else f"{timeout * 1000:.0f}ms"
        data[label] = dict(
            pct,
            qps=run.throughput_qps,
            batches=run.stats.batches,
            sim_kernel_s=run.stats.simulated_kernel_s,
        )
        rows.append(
            [label, pct["p50_ms"], pct["p90_ms"], pct["p99_ms"], pct["max_ms"],
             run.throughput_qps, run.stats.batches,
             run.stats.simulated_kernel_s * 1000]
        )
    engine.close()
    return ExperimentResult(
        name="fig6_latency",
        title="End-to-end match-unique latency for different flush timeouts "
        "(timeouts are the paper's 100–500 ms grid scaled 1/10)",
        headers=["timeout", "p50 ms", "p90 ms", "p99 ms", "max ms", "q/s",
                 "batches", "sim GPU ms"],
        rows=rows,
        notes=(
            f"arrival rate {arrival:.0f} q/s (40% of saturation).  Short "
            "timeouts flush many under-filled batches: the 'sim GPU ms' "
            "column (cost-model device time) shows the extra load that "
            "costs the paper's real GPUs ~20% throughput at 100 ms."
        ),
        data=data,
    )


# ----------------------------------------------------------------------
# Figure 7 — throughput vs MAX_P
# ----------------------------------------------------------------------
def fig7_maxp(
    workload: TwitterWorkload,
    maxp_values: tuple[int, ...] = (50, 100, 200, 400, 800, 1600, 3200, 6400),
) -> ExperimentResult:
    queries = workload.queries(4096, seed=61)
    rows = []
    data: dict[str, list[float]] = {"match": [], "unique": [], "partitions": []}
    for maxp in maxp_values:
        engine = build_engine(
            workload.blocks,
            workload.keys,
            default_engine_config(max_partition_size=maxp),
        )
        m = _best_run(engine, queries.blocks).throughput_qps
        u = _best_run(engine, queries.blocks, unique=True).throughput_qps
        data["match"].append(m)
        data["unique"].append(u)
        data["partitions"].append(engine.num_partitions)
        rows.append([maxp, engine.num_partitions, m, u])
        engine.close()
    return ExperimentResult(
        name="fig7_maxp",
        title="Average throughput vs maximum partition size MAX_P "
        "(queries per second)",
        headers=["MAX_P", "partitions", "match q/s", "match-unique q/s"],
        rows=rows,
        data=data,
    )


# ----------------------------------------------------------------------
# Figure 8 — partitioning time vs database size (+ §4.3.6 MongoDB compare)
# ----------------------------------------------------------------------
def fig8_partitioning_time(
    workload: TwitterWorkload,
    fractions: tuple[float, ...] = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
) -> ExperimentResult:
    rows = []
    data: dict[str, list[float]] = {"sets": [], "seconds": []}
    for frac in fractions:
        blocks, _ = workload.fraction(frac)
        unique_blocks = np.unique(blocks, axis=0)
        result = balanced_partition(unique_blocks, BENCH_MAX_P, 192)
        data["sets"].append(unique_blocks.shape[0])
        data["seconds"].append(result.elapsed_s)
        rows.append(
            [f"{frac:.0%}", unique_blocks.shape[0], result.elapsed_s,
             result.num_partitions]
        )

    # §4.3.6: MongoDB needs ~33 s to index 5 M sets; partitioning ~2 s.
    mongo_frac = min(1.0, 5 / 212)
    n_docs = max(1000, int(mongo_frac * workload.num_associations))
    t0 = time.perf_counter()
    mongo = MongoDBSim.load(
        workload.interests.tag_sets[:n_docs], workload.keys[:n_docs]
    )
    mongo_s = time.perf_counter() - t0
    mongo.close()
    part_blocks = np.unique(workload.blocks[:n_docs], axis=0)
    part_s = balanced_partition(part_blocks, BENCH_MAX_P, 192).elapsed_s
    notes = (
        f"§4.3.6 comparison at the scaled 5M-set size ({n_docs} docs): "
        f"MongoDB insert+index {mongo_s:.2f}s vs TagMatch partitioning "
        f"{part_s:.2f}s"
    )
    data["mongo_index_s"] = [mongo_s]
    data["partition_5m_s"] = [part_s]
    return ExperimentResult(
        name="fig8_partitioning_time",
        title=f"TagMatch partitioning time, MAX_P={BENCH_MAX_P}",
        headers=["db size", "unique sets", "seconds", "partitions"],
        rows=rows,
        notes=notes,
        data=data,
    )


# ----------------------------------------------------------------------
# Figure 9 — host vs GPU memory usage
# ----------------------------------------------------------------------
def fig9_memory(
    workload: TwitterWorkload, fractions: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)
) -> ExperimentResult:
    rows = []
    data: dict[str, list[float]] = {"host_mb": [], "gpu_mb": []}
    for frac in fractions:
        blocks, keys = workload.fraction(frac)
        engine = build_engine(blocks, keys)
        usage = engine.memory_usage()
        host_mb = usage.host_bytes / 1e6
        gpu_mb = usage.gpu_total_bytes / 1e6
        data["host_mb"].append(host_mb)
        data["gpu_mb"].append(gpu_mb)
        rows.append(
            [f"{frac:.0%}", host_mb, usage.key_table_bytes / 1e6,
             usage.partition_table_bytes / 1e6, gpu_mb]
        )
        engine.close()
    return ExperimentResult(
        name="fig9_memory",
        title="TagMatch memory usage (MB at the active scale; the paper "
        "reports GB at full scale)",
        headers=["db size", "host MB", "key table MB", "partition table MB", "GPU MB"],
        rows=rows,
        notes="GPU MB covers both devices (full tagset-table replication).",
        data=data,
    )


# ----------------------------------------------------------------------
# Figure 10 — MongoDB vs TagMatch (crafted small workloads)
# ----------------------------------------------------------------------
#: The MongoDB experiments run at 1/10 of the paper's sizes (1M/3M/5M
#: documents -> 100K/300K/500K).  The simulator's collection scan is far
#: cheaper than real MongoDB's per-document BSON matching (a constant
#: factor noted in EXPERIMENTS.md); the *shapes* — degradation with
#: database size, insensitivity to tag counts, sublinear sharding — are
#: what these experiments reproduce.
MONGO_SCALE = 1 / 10


def _crafted_documents(
    num_docs: int, tags_per_set: int, rng: np.random.Generator, universe: int = 4000
):
    names = [f"m{t}" for t in range(universe)]
    idx = rng.integers(0, universe, size=(num_docs, tags_per_set))
    docs = [frozenset(names[j] for j in row) for row in idx]
    return docs, list(range(num_docs))


def _crafted_queries(
    docs, num_queries: int, query_tags: int, rng: np.random.Generator,
    universe: int = 4000,
):
    names = [f"m{t}" for t in range(universe)]
    out = []
    for _ in range(num_queries):
        base = set(docs[int(rng.integers(0, len(docs)))])
        while len(base) < query_tags:
            base.add(names[int(rng.integers(0, universe))])
        out.append(frozenset(base))
    return out


def fig10_mongodb(
    db_sizes_m: tuple[int, ...] = (1, 3, 5),
    tags_per_set_values: tuple[int, ...] = (2, 3),
    query_tag_values: tuple[int, ...] = (4, 6, 8, 10),
) -> ExperimentResult:
    rng = np.random.default_rng(71)
    hasher = TagHasher()
    rows = []
    data: dict[str, float] = {}
    hardest = None  # (docs, keys) of the most challenging configuration
    for millions in db_sizes_m:
        num_docs = int(millions * 1e6 * MONGO_SCALE)
        for tags_per_set in tags_per_set_values:
            docs, keys = _crafted_documents(num_docs, tags_per_set, rng)
            mongo = MongoDBSim.load(docs, keys)
            for query_tags in query_tag_values:
                queries = _crafted_queries(docs, 30, query_tags, rng)
                t0 = time.perf_counter()
                for q in queries:
                    mongo.find_subsets(q)
                mongo_qps = len(queries) / (time.perf_counter() - t0)
                rows.append([f"{millions}M", tags_per_set, query_tags, mongo_qps])
                data[f"{millions}|{tags_per_set}|{query_tags}|mongo"] = mongo_qps
            if millions == max(db_sizes_m) and tags_per_set == min(tags_per_set_values):
                hardest = (docs, keys)
            mongo.close()

    # The paper quotes TagMatch once, on the most challenging scenario:
    # the largest database with 2-tag sets and 10-tag queries.
    docs, keys = hardest
    blocks = hasher.encode_sets(docs)
    engine = build_engine(
        blocks, np.array(keys),
        default_engine_config(max_partition_size=max(400, len(docs) // 128)),
    )
    tm_queries = hasher.encode_sets(
        _crafted_queries(docs, 4096, max(query_tag_values), rng)
    )
    tm_qps = engine.match_stream(tm_queries).throughput_qps
    engine.close()
    data["tagmatch_hardest"] = tm_qps
    rows.append(
        [f"{max(db_sizes_m)}M (TagMatch)", min(tags_per_set_values),
         max(query_tag_values), tm_qps]
    )
    return ExperimentResult(
        name="fig10_mongodb",
        title="MongoDB vs TagMatch: match throughput vs tags per query "
        f"(document counts are the paper's sizes x {MONGO_SCALE})",
        headers=["db size", "tags/set", "tags/query", "q/s"],
        rows=rows,
        notes="Last row: TagMatch on the most challenging configuration "
        "(the paper quotes >32,000 q/s there at full scale).",
        data=data,
    )


def fig11_mongo_sharding(
    instance_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 24),
    num_docs: int = int(3e6 * MONGO_SCALE),
    tags_per_set: int = 3,
    query_tags: int = 6,
    num_queries: int = 40,
) -> ExperimentResult:
    """MongoDB sharding scalability (measured scans + parallelism model).

    The evaluation host has one CPU core, so true shard parallelism is
    reconstructed from measurements: every shard's collection scan is
    timed individually, the modeled parallel latency of a query is the
    *maximum* per-shard scan time (shards run concurrently on the
    paper's 24-core machine) plus the measured router dispatch/merge
    overhead, which grows with the instance count — the effect that
    bends the paper's curve after ~8 instances.
    """
    rng = np.random.default_rng(81)
    docs, keys = _crafted_documents(num_docs, tags_per_set, rng)
    queries = _crafted_queries(docs, num_queries, query_tags, rng)
    hasher = TagHasher()

    # Measured router overhead per dispatched shard: thread-pool submit +
    # result collection + merge of one empty partial result.
    from concurrent.futures import ThreadPoolExecutor

    pool = ThreadPoolExecutor(4)
    t0 = time.perf_counter()
    rounds = 300
    for _ in range(rounds):
        pool.submit(lambda: None).result()
    dispatch_per_shard_s = (time.perf_counter() - t0) / rounds
    pool.shutdown()

    rows = []
    data: dict[str, list[float]] = {"instances": [], "qps": []}
    base_qps = None
    for instances in instance_counts:
        db = MongoDBSim(num_shards=instances)
        db.insert_many(docs, keys)
        db.ensure_index()
        total_latency = 0.0
        for q in queries:
            q = frozenset(q)
            qb = np.array(hasher.encode_set(q), dtype=np.uint64)
            shard_times = []
            for shard in db.shards:
                best = float("inf")
                for _ in range(2):  # best-of-2 de-noises scheduler blips
                    t0 = time.perf_counter()
                    shard.scan(q, qb)
                    best = min(best, time.perf_counter() - t0)
                shard_times.append(best)
            total_latency += max(shard_times) + instances * dispatch_per_shard_s
        db.close()
        qps = num_queries / total_latency
        if base_qps is None:
            base_qps = qps
        data["instances"].append(instances)
        data["qps"].append(qps)
        rows.append([instances, qps, qps / base_qps])
    return ExperimentResult(
        name="fig11_mongo_sharding",
        title="Scalability of MongoDB with sharding "
        f"({num_docs} documents x {tags_per_set} tags, {query_tags}-tag "
        "queries; measured per-shard scans + parallel-shard model)",
        headers=["instances", "q/s", "speedup"],
        rows=rows,
        notes=(
            f"Measured router dispatch overhead: "
            f"{dispatch_per_shard_s * 1e6:.0f} µs per shard per query."
        ),
        data=data,
    )


# ----------------------------------------------------------------------
# §4.5 — the GPU-only dynamic-parallelism design
# ----------------------------------------------------------------------
def sec45_gpu_only_design(
    workload: TwitterWorkload,
    match_fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0),
    db_fraction: float = 0.1,
    batch: int = 256,
) -> ExperimentResult:
    blocks, keys = workload.fraction(db_fraction)
    unique_blocks = np.unique(blocks, axis=0)
    partitioning = balanced_partition(unique_blocks, BENCH_MAX_P, 192)

    hybrid_device = Device(device_id=0, num_streams=1)
    gpu_only_device = Device(device_id=1, num_streams=1)
    partitions = []
    order_cache = []
    for p in partitioning.partitions:
        sub = unique_blocks[p.indices]
        order = np.lexsort(tuple(sub[:, c] for c in range(sub.shape[1] - 1, -1, -1)))
        partitions.append(
            DevicePartition(
                mask=p.mask,
                sets=sub[order],
                ids=p.indices[order].astype(np.uint32),
            )
        )
        order_cache.append(order)
    gpu_only = DynamicParallelismMatcher(gpu_only_device, partitions)

    matching = workload.queries(batch, seed=91, fraction=db_fraction).blocks
    rng = np.random.default_rng(92)
    hasher = workload.hasher
    nonmatching = hasher.encode_sets(
        [
            {f"zz_{rng.integers(0, 10**9)}" for _ in range(7)}
            for _ in range(batch)
        ]
    )

    from repro.bloom.ops import containment_matrix
    from repro.gpu.kernels import subset_match_kernel

    rows = []
    data: dict[str, list[float]] = {"hybrid_us": [], "gpu_only_us": []}
    masks = np.stack([p.mask for p in partitions])
    for frac in match_fractions:
        k = int(round(frac * batch))
        queries = np.vstack([matching[:k], nonmatching[: batch - k]])

        # Hybrid: pre-process on the CPU (free for the device), then one
        # kernel per relevant partition with the matching sub-batch.
        hybrid_device.clock.reset()
        relevance = containment_matrix(masks, queries)  # (P, B)
        for pid in range(len(partitions)):
            members = np.nonzero(relevance[pid])[0]
            if members.size == 0:
                continue
            subset_match_kernel(
                partitions[pid].sets,
                partitions[pid].ids,
                queries[members],
                cost_model=hybrid_device.cost_model,
                clock=hybrid_device.clock,
            )
        hybrid_us = hybrid_device.clock.total_s / batch * 1e6

        _, _, timings = gpu_only.match_batch(queries)
        gpu_only_us = timings.total_s / batch * 1e6

        data["hybrid_us"].append(hybrid_us)
        data["gpu_only_us"].append(gpu_only_us)
        rows.append(
            [f"{frac:.0%}", hybrid_us, gpu_only_us, gpu_only_us / max(hybrid_us, 1e-9)]
        )
    hybrid_device.close()
    gpu_only_device.close()
    return ExperimentResult(
        name="sec45_gpu_only_design",
        title="Hybrid vs GPU-only (dynamic parallelism) design: simulated "
        "device time per query (µs) vs fraction of queries reaching "
        "subset match",
        headers=["match frac", "hybrid µs/q", "GPU-only µs/q", "GPU-only / hybrid"],
        rows=rows,
        notes=(
            "§4.5: the GPU-only design is competitive when pre-processing "
            "filters out most queries, and loses (atomic appends + random "
            "global-memory access) when many queries reach subset match."
        ),
        data=data,
    )


# ----------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ----------------------------------------------------------------------
def ablation_prefilter(
    workload: TwitterWorkload, maxp: int = 12800
) -> ExperimentResult:
    queries = workload.queries(2048, seed=95)
    rows = []
    data: dict[str, float] = {}
    for label, prefilter in (("on", True), ("off", False)):
        engine = build_engine(
            workload.blocks,
            workload.keys,
            default_engine_config(max_partition_size=maxp, prefilter=prefilter),
        )
        run = engine.match_stream(queries.blocks, unique=True)
        data[f"qps_{label}"] = run.throughput_qps
        data[f"sim_kernel_s_{label}"] = run.stats.simulated_kernel_s
        rows.append(
            [label, run.throughput_qps, run.stats.simulated_kernel_s,
             run.stats.kernel_invocations]
        )
        engine.close()
    return ExperimentResult(
        name="ablation_prefilter",
        title=f"Algorithm 4 pre-filtering on/off (MAX_P={maxp})",
        headers=["prefilter", "q/s", "simulated kernel s", "kernels"],
        rows=rows,
        data=data,
    )


def ablation_packing(workload: TwitterWorkload) -> ExperimentResult:
    engine = build_engine(workload.blocks, workload.keys)
    queries = workload.queries(4096, seed=96)
    run = engine.match_stream(queries.blocks)
    pairs = run.stats.pairs
    cost = engine.devices[0].cost_model
    packed = packed_size(pairs)
    naive = naive_aligned_size(pairs)
    rows = [
        ["packed 4q+4s (§3.3.1)", packed, cost.transfer_time(packed) * 1e3],
        ["aligned struct", naive, cost.transfer_time(naive) * 1e3],
        ["two arrays (2 copies)", 5 * pairs,
         2 * cost.pcie_latency_s * 1e3 + 5 * pairs / cost.pcie_bandwidth_bytes_per_s * 1e3],
    ]
    engine.close()
    return ExperimentResult(
        name="ablation_packing",
        title=f"Result layout transfer cost for one run's {pairs} (q,s) pairs",
        headers=["layout", "bytes", "simulated transfer ms"],
        rows=rows,
        notes="The packed layout saves 37.5% of result bytes vs the aligned "
        "struct and avoids the extra per-copy latency of split arrays.",
        data={"pairs": pairs, "packed": packed, "naive": naive},
    )


def ablation_pivot(workload: TwitterWorkload) -> ExperimentResult:
    queries = workload.queries(2048, seed=97)
    rows = []
    data: dict[str, float] = {}
    for strategy in ("balanced", "first_unused"):
        engine = build_engine(
            workload.blocks,
            workload.keys,
            default_engine_config(pivot_strategy=strategy),
        )
        part = engine.last_consolidate.partitioning
        sizes = np.array([len(p) for p in part.partitions], dtype=float)
        weighted_mean = float((sizes**2).sum() / sizes.sum())
        run = engine.match_stream(queries.blocks, unique=True)
        data[f"qps_{strategy}"] = run.throughput_qps
        data[f"partitions_{strategy}"] = part.num_partitions
        rows.append(
            [strategy, part.num_partitions, part.max_size, weighted_mean,
             part.elapsed_s, run.throughput_qps]
        )
        engine.close()
    return ExperimentResult(
        name="ablation_pivot",
        title="Algorithm 1 pivot selection: balanced (closest to 50%) vs "
        "first-unused bit",
        headers=["pivot", "partitions", "max size", "weighted mean size",
                 "partition s", "q/s"],
        rows=rows,
        data=data,
    )
