"""Process-wide caches of generated workloads and built systems.

Benchmark modules share one full-scale Twitter workload (≈ 10 s to
generate) and reuse built engines/tries across experiments where the
configuration allows it.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import TagMatchConfig
from repro.core.engine import TagMatch
from repro.workloads.scaling import PAPER_USERS, scaled
from repro.workloads.workload import TwitterWorkload, generate_twitter_workload

__all__ = [
    "twitter_workload",
    "build_engine",
    "default_engine_config",
    "BENCH_MAX_P",
]

#: MAX_P used by non-Figure-7 benchmarks; near the measured optimum of
#: the scaled workload, playing the role of the paper's 200 K setting.
BENCH_MAX_P = 1600

_workloads: dict[tuple[int, int], TwitterWorkload] = {}


def twitter_workload(num_users: int | None = None, seed: int = 0) -> TwitterWorkload:
    """The (cached) Twitter workload at the active scale."""
    users = num_users if num_users is not None else scaled(PAPER_USERS)
    key = (users, seed)
    if key not in _workloads:
        _workloads[key] = generate_twitter_workload(num_users=users, seed=seed)
    return _workloads[key]


def default_engine_config(**overrides) -> TagMatchConfig:
    """The engine configuration benchmarks use unless they sweep a knob."""
    base = dict(
        max_partition_size=BENCH_MAX_P,
        batch_size=256,
        num_gpus=2,
        num_threads=8,
        batch_timeout_s=None,
    )
    base.update(overrides)
    return TagMatchConfig(**base)


def build_engine(
    blocks: np.ndarray, keys: np.ndarray, config: TagMatchConfig | None = None
) -> TagMatch:
    """Build a consolidated engine over pre-encoded associations."""
    engine = TagMatch(config if config is not None else default_engine_config())
    engine.add_signatures(blocks, keys)
    engine.consolidate()
    return engine
