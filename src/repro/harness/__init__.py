"""Benchmark harness: measurement, experiments, reporting (DESIGN.md §3)."""

from repro.harness.projection import FullScaleProjection, project_full_scale
from repro.harness.reporting import (
    ExperimentResult,
    format_series_chart,
    format_table,
    save_result,
)
from repro.harness.runner import ThroughputResult, latency_percentiles, measure_matcher
from repro.harness.workload_cache import (
    BENCH_MAX_P,
    build_engine,
    default_engine_config,
    twitter_workload,
)

__all__ = [
    "BENCH_MAX_P",
    "ExperimentResult",
    "FullScaleProjection",
    "ThroughputResult",
    "build_engine",
    "default_engine_config",
    "format_series_chart",
    "format_table",
    "project_full_scale",
    "latency_percentiles",
    "measure_matcher",
    "save_result",
    "twitter_workload",
]
