"""Throughput and latency measurement helpers."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["ThroughputResult", "measure_matcher", "latency_percentiles"]


@dataclass
class ThroughputResult:
    """One throughput measurement of one system."""

    system: str
    num_queries: int
    elapsed_s: float
    output_keys: int

    @property
    def qps(self) -> float:
        return self.num_queries / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def kqps(self) -> float:
        """Thousands of queries per second — the paper's table unit."""
        return self.qps / 1000.0

    @property
    def output_rate(self) -> float:
        """Result keys emitted per second (Figure 3's metric)."""
        return self.output_keys / self.elapsed_s if self.elapsed_s > 0 else 0.0


def measure_matcher(
    system: str,
    match_many: Callable[[np.ndarray], Sequence[np.ndarray]],
    queries: np.ndarray,
) -> ThroughputResult:
    """Time one pass of ``match_many`` over the query block array."""
    start = time.perf_counter()
    results = match_many(queries)
    elapsed = time.perf_counter() - start
    return ThroughputResult(
        system=system,
        num_queries=queries.shape[0],
        elapsed_s=elapsed,
        output_keys=int(sum(r.size for r in results)),
    )


def latency_percentiles(latencies_s: np.ndarray) -> dict[str, float]:
    """The latency summary reported for Figure 6 (in milliseconds)."""
    ms = np.asarray(latencies_s) * 1000.0
    return {
        "p50_ms": float(np.percentile(ms, 50)),
        "p90_ms": float(np.percentile(ms, 90)),
        "p99_ms": float(np.percentile(ms, 99)),
        "max_ms": float(ms.max()),
    }
