"""Counting inverted-index subset matcher (§5, Yan & Garcia-Molina).

The second classic family of subset-matching algorithms: for each
element ``x`` keep the list of database sets containing ``x``; for a
query ``q``, walk the lists of every ``x ∈ q`` and count how many times
each set appears — a set matches iff its count equals its cardinality
(every one of its elements is in the query).

Operating on Bloom signatures, "elements" are bit positions: the index
maps each of the 192 positions to the sets with that bit, and a set
matches when all of its one-bits are covered by the query's one-bits.
The counting is vectorized with a per-set accumulator.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.interface import SubsetMatcher
from repro.bloom.array import SignatureArray

__all__ = ["InvertedIndexMatcher"]


class InvertedIndexMatcher(SubsetMatcher):
    """Per-bit postings lists with per-query counting."""

    name = "inverted index (counting)"

    def __init__(self, width: int = 192) -> None:
        super().__init__()
        self.width = width

    def _build_index(self, unique_blocks: np.ndarray) -> int:
        arr = SignatureArray(unique_blocks, width=self.width)
        self._popcounts = arr.popcounts().astype(np.int32)
        big_endian = np.ascontiguousarray(unique_blocks).astype(">u8").view(np.uint8)
        bits = np.unpackbits(big_endian, axis=1)  # (n, width)
        #: postings[j]: ids of sets whose bit j is one.
        self._postings: list[np.ndarray] = [
            np.nonzero(bits[:, j])[0].astype(np.int64) for j in range(self.width)
        ]
        self._num_sets = unique_blocks.shape[0]
        index_bytes = sum(p.nbytes for p in self._postings) + self._popcounts.nbytes
        return index_bytes

    def match_set_ids(self, query: np.ndarray) -> np.ndarray:
        q = np.asarray(query, dtype=np.uint64).reshape(-1)
        big_endian = q.astype(">u8").view(np.uint8)
        positions = np.nonzero(np.unpackbits(big_endian))[0]
        counts = np.zeros(self._num_sets, dtype=np.int32)
        for j in positions:
            counts[self._postings[j]] += 1
        # A set matches iff every one of its bits was counted.  Sets with
        # zero bits (empty signature) match any query.
        hits = counts == self._popcounts
        return np.nonzero(hits)[0].astype(np.int64)
