"""Common interface for the comparison systems of §4.

Every baseline consumes the same input as TagMatch — ``(signature,
key)`` association arrays — and answers block-encoded subset queries, so
the benchmark harness can drive all systems identically.  (The MongoDB
simulator is the exception: it stores documents with raw tag lists, as
the real system does; see :mod:`repro.baselines.mongodb_sim`.)
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass

import numpy as np

from repro.core.key_table import KeyTable
from repro.core.results import merge_keys
from repro.errors import ValidationError

__all__ = ["BuildReport", "SubsetMatcher"]


@dataclass
class BuildReport:
    """Index construction cost (Figure 8 / §4.3.6 compare these)."""

    elapsed_s: float
    index_bytes: int
    num_unique_sets: int


class SubsetMatcher(abc.ABC):
    """A subset-matching system under test."""

    #: Human-readable system name as it appears in the paper's tables.
    name: str = "abstract"

    def __init__(self) -> None:
        self.key_table: KeyTable | None = None
        self.build_report: BuildReport | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, blocks: np.ndarray, keys: np.ndarray) -> BuildReport:
        """Index ``(signature, key)`` associations.

        Deduplicates signatures into unique sets with grouped keys (as the
        engine's consolidate does) and calls :meth:`_build_index`.
        """
        if blocks.ndim != 2 or blocks.shape[0] != keys.shape[0]:
            raise ValidationError("blocks and keys must be parallel")
        start = time.perf_counter()
        unique_blocks, inverse = np.unique(blocks, axis=0, return_inverse=True)
        inverse = inverse.reshape(-1)
        self.key_table = KeyTable.from_grouped(inverse, keys, unique_blocks.shape[0])
        index_bytes = self._build_index(unique_blocks)
        self.build_report = BuildReport(
            elapsed_s=time.perf_counter() - start,
            index_bytes=index_bytes + self.key_table.nbytes,
            num_unique_sets=unique_blocks.shape[0],
        )
        return self.build_report

    @abc.abstractmethod
    def _build_index(self, unique_blocks: np.ndarray) -> int:
        """Index the unique signatures; return the index size in bytes."""

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def match_set_ids(self, query: np.ndarray) -> np.ndarray:
        """Set ids (rows of the unique signature array) ⊆ ``query``."""

    def match_blocks(self, query: np.ndarray, unique: bool = False) -> np.ndarray:
        """Keys matching one block-encoded query."""
        if self.key_table is None:
            raise ValidationError(f"{self.name}: build() must be called first")
        set_ids = self.match_set_ids(query)
        if set_ids.size == 0:
            return np.empty(0, dtype=np.int64)
        return merge_keys([self.key_table.keys_of_many(set_ids)], unique)

    def match_many(
        self, queries: np.ndarray, unique: bool = False
    ) -> list[np.ndarray]:
        """Keys for every row of a query block array."""
        return [self.match_blocks(q, unique=unique) for q in queries]
