"""Brute-force linear scan: the reference oracle.

This is the first of the two trivial solutions of §5 — scan the whole
database per query, ``O(n)`` space and ``O(n·m)`` time.  Exact by
construction at the signature level, it serves as the ground truth every
other system is tested against.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.interface import SubsetMatcher

__all__ = ["LinearScanMatcher"]


class LinearScanMatcher(SubsetMatcher):
    """Vectorized full-database scan per query."""

    name = "linear scan"

    def _build_index(self, unique_blocks: np.ndarray) -> int:
        self._blocks = unique_blocks
        return unique_blocks.nbytes

    def match_set_ids(self, query: np.ndarray) -> np.ndarray:
        q = np.asarray(query, dtype=np.uint64).reshape(-1)
        hits = ~np.any(self._blocks & ~q, axis=1)
        return np.nonzero(hits)[0].astype(np.int64)
