"""Query-subset enumeration over a hash table (§1/§5, Rivest).

The other classic family: instead of scanning database sets, *"iterate
over the subsets q_j ⊆ q directly in the database (e.g., using a hash
table)"*.  The database is a hash map from tag sets to keys; a query
enumerates its subsets and probes each.  Exact by construction (no
signatures), but exponential in the query size — the reason the paper
dismisses this family for large queries — so the matcher enforces a
configurable query-size limit.

Two standard prunings keep the constant factors honest:

* only tags that appear in *some* database set participate in the
  enumeration (others can never help a probe hit);
* subsets larger than the largest database set are skipped.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.errors import ValidationError

__all__ = ["QuerySubsetHashMatcher", "DEFAULT_MAX_QUERY_TAGS"]

#: 2^20 probes is already seconds of work; refuse anything bigger.
DEFAULT_MAX_QUERY_TAGS = 20


class QuerySubsetHashMatcher:
    """Exact subset matching by probing every subset of the query."""

    name = "query-subset hash table"

    def __init__(self, max_query_tags: int = DEFAULT_MAX_QUERY_TAGS) -> None:
        self.max_query_tags = max_query_tags
        self._table: dict[frozenset[str], list[int]] = {}
        self._vocabulary: set[str] = set()
        self._largest_set = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, tag_sets, keys) -> None:
        """Index ``(tag set, key)`` associations (tags, not signatures)."""
        self._table = {}
        self._vocabulary = set()
        self._largest_set = 0
        for tags, key in zip(tag_sets, keys):
            tags = frozenset(tags)
            if not tags:
                raise ValidationError("empty tag sets are not indexable")
            self._table.setdefault(tags, []).append(int(key))
            self._vocabulary.update(tags)
            self._largest_set = max(self._largest_set, len(tags))

    @property
    def num_sets(self) -> int:
        return len(self._table)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, query_tags, unique: bool = False) -> np.ndarray:
        """Keys of all indexed sets contained in ``query_tags``."""
        relevant = sorted(set(query_tags) & self._vocabulary)
        if len(relevant) > self.max_query_tags:
            raise ValidationError(
                f"query with {len(relevant)} indexable tags exceeds the "
                f"enumeration limit of {self.max_query_tags} "
                "(subset enumeration is exponential in the query size)"
            )
        out: list[int] = []
        limit = min(len(relevant), self._largest_set)
        for size in range(1, limit + 1):
            for combo in combinations(relevant, size):
                hit = self._table.get(frozenset(combo))
                if hit is not None:
                    out.extend(hit)
        merged = np.array(sorted(out), dtype=np.int64)
        if unique:
            return np.unique(merged)
        return merged

    def probes_for(self, query_tags) -> int:
        """Number of hash probes a query would need (cost transparency)."""
        relevant = len(set(query_tags) & self._vocabulary)
        limit = min(relevant, self._largest_set)
        total = 0
        binom = 1
        for size in range(1, limit + 1):
            binom = binom * (relevant - size + 1) // size
            total += binom
        return total
