"""Patricia-trie subset matcher (the paper's *prefix tree* baseline).

§4.1: *"a main-memory implementation of a subset matching algorithm that
indexes database sets into a prefix tree.  Specifically, this system uses
a Patricia tree and solves the subset matching problem by navigating such
tree.  This implementation is representative of most state-of-the-art
approaches based on trees"* — conceptually the PTSJ algorithm of Luo et
al. [9], applied to the same 192-bit Bloom signatures TagMatch uses.

Keys are fixed-width bit strings.  Subset matching navigates the trie:
an edge whose label has a one-bit where the query has a zero can lead to
no subset, so the whole subtree is pruned; where the query has a one,
both branches may contain subsets and both are explored.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.interface import SubsetMatcher

__all__ = ["PrefixTreeMatcher", "blocks_to_ints", "int_to_blocks"]

_NODE_BYTES_ESTIMATE = 120  # rough per-node footprint for memory reports


def blocks_to_ints(blocks: np.ndarray) -> list[int]:
    """Convert signature rows to big Python ints (bit 0 = MSB)."""
    big_endian = np.ascontiguousarray(blocks).astype(">u8").tobytes()
    row_bytes = blocks.shape[1] * 8
    return [
        int.from_bytes(big_endian[i : i + row_bytes], "big")
        for i in range(0, len(big_endian), row_bytes)
    ]


def int_to_blocks(value: int, num_words: int) -> np.ndarray:
    """Inverse of :func:`blocks_to_ints` for one value."""
    raw = value.to_bytes(num_words * 8, "big")
    return np.frombuffer(raw, dtype=">u8").astype(np.uint64)


class _Node:
    """One Patricia node: the compressed edge from its parent plus
    children and (at full depth) the stored set ids."""

    __slots__ = ("edge_bits", "edge_len", "children", "set_ids")

    def __init__(self, edge_bits: int, edge_len: int) -> None:
        self.edge_bits = edge_bits
        self.edge_len = edge_len
        self.children: list["_Node | None"] = [None, None]
        self.set_ids: list[int] | None = None


class PrefixTreeMatcher(SubsetMatcher):
    """Patricia trie over fixed-width signatures with subset navigation."""

    name = "prefix tree"

    def __init__(self, width: int = 192) -> None:
        super().__init__()
        self.width = width
        self._root = _Node(0, 0)
        self._num_nodes = 1
        #: Nodes visited by the most recent query (pruning diagnostics).
        self.last_nodes_visited = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_index(self, unique_blocks: np.ndarray) -> int:
        self._root = _Node(0, 0)
        self._num_nodes = 1
        for set_id, key in enumerate(blocks_to_ints(unique_blocks)):
            self._insert(key, set_id)
        return self._num_nodes * _NODE_BYTES_ESTIMATE

    def _segment(self, key: int, depth: int, length: int) -> int:
        """Bits [depth, depth+length) of ``key`` as an int."""
        return (key >> (self.width - depth - length)) & ((1 << length) - 1)

    def _insert(self, key: int, set_id: int) -> None:
        node = self._root
        depth = 0
        while True:
            if depth == self.width:
                if node.set_ids is None:
                    node.set_ids = []
                node.set_ids.append(set_id)
                return
            branch = (key >> (self.width - depth - 1)) & 1
            child = node.children[branch]
            if child is None:
                leaf_len = self.width - depth
                leaf = _Node(self._segment(key, depth, leaf_len), leaf_len)
                leaf.set_ids = [set_id]
                node.children[branch] = leaf
                self._num_nodes += 1
                return
            seg = self._segment(key, depth, child.edge_len)
            if seg == child.edge_bits:
                node = child
                depth += child.edge_len
                continue
            # Split the child edge at the first differing bit.
            diff = seg ^ child.edge_bits
            common = child.edge_len - diff.bit_length()
            mid = _Node(child.edge_bits >> (child.edge_len - common), common)
            rest_len = child.edge_len - common
            child_first = (child.edge_bits >> (rest_len - 1)) & 1
            child.edge_bits &= (1 << rest_len) - 1
            child.edge_len = rest_len
            mid.children[child_first] = child
            node.children[branch] = mid
            self._num_nodes += 1
            # Continue inserting the remaining key bits below `mid`.
            node = mid
            depth += common

    # ------------------------------------------------------------------
    # Subset matching
    # ------------------------------------------------------------------
    def match_set_ids(self, query: np.ndarray) -> np.ndarray:
        q = int.from_bytes(
            np.asarray(query, dtype=np.uint64).astype(">u8").tobytes(), "big"
        )
        return self._match_int(q)

    def _match_int(self, q: int) -> np.ndarray:
        out: list[int] = []
        visited = 0
        # Stack of (node, depth at node's parent edge start).
        stack: list[tuple[_Node, int]] = [(self._root, 0)]
        width = self.width
        while stack:
            node, depth = stack.pop()
            visited += 1
            if node.edge_len:
                seg = (q >> (width - depth - node.edge_len)) & (
                    (1 << node.edge_len) - 1
                )
                if node.edge_bits & ~seg:
                    continue  # edge needs a bit the query lacks: prune
                depth += node.edge_len
            if depth == width:
                if node.set_ids:
                    out.extend(node.set_ids)
                continue
            zero_child = node.children[0]
            if zero_child is not None:
                stack.append((zero_child, depth))
            one_child = node.children[1]
            if one_child is not None and (q >> (width - depth - 1)) & 1:
                stack.append((one_child, depth))
        self.last_nodes_visited = visited
        return np.array(sorted(out), dtype=np.int64)

    @property
    def num_nodes(self) -> int:
        return self._num_nodes
