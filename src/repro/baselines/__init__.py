"""Comparison systems from the paper's evaluation (§4.1, Table 1).

All baselines are built from scratch (DESIGN.md §2): a brute-force
linear scan (the reference oracle), the Patricia prefix tree, the
ICN matcher of Papalini et al., the two GPU-only designs, CPU-only
TagMatch, and a MongoDB-like document store with sharding.
"""

from repro.baselines.cpu_tagmatch import CpuTagMatchMatcher
from repro.baselines.gpu_only import GpuBatchedMatcher, GpuPlainMatcher
from repro.baselines.icn_matcher import BUILD_BYTES_PER_SET, ICNMatcher
from repro.baselines.interface import BuildReport, SubsetMatcher
from repro.baselines.inverted_index import InvertedIndexMatcher
from repro.baselines.linear_scan import LinearScanMatcher
from repro.baselines.mongodb_sim import MongoBuildReport, MongoDBSim
from repro.baselines.query_subset_hash import QuerySubsetHashMatcher
from repro.baselines.prefix_tree import (
    PrefixTreeMatcher,
    blocks_to_ints,
    int_to_blocks,
)

__all__ = [
    "BUILD_BYTES_PER_SET",
    "BuildReport",
    "CpuTagMatchMatcher",
    "GpuBatchedMatcher",
    "GpuPlainMatcher",
    "ICNMatcher",
    "InvertedIndexMatcher",
    "LinearScanMatcher",
    "MongoBuildReport",
    "MongoDBSim",
    "PrefixTreeMatcher",
    "QuerySubsetHashMatcher",
    "SubsetMatcher",
    "blocks_to_ints",
    "int_to_blocks",
]
