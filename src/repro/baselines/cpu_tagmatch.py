"""CPU-only TagMatch (Table 1, row 5).

The same data organisation as TagMatch — balanced partitioning and the
partition-table pre-process — but the subset-match stage runs on the CPU,
one query at a time, with no batching and no GPU offload.  The paper uses
this configuration to show that TagMatch's algorithm alone is *not* the
source of its advantage: without the massively parallel subset match and
the batched pipeline it is slower than the prefix tree (3.9 vs 21.1 kq/s
at 20 M sets), and the hybrid system wins by combining both.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.interface import SubsetMatcher
from repro.core.partition_table import PartitionTable
from repro.core.partitioning import balanced_partition

__all__ = ["CpuTagMatchMatcher"]


class CpuTagMatchMatcher(SubsetMatcher):
    """TagMatch's index, matched sequentially on the CPU."""

    name = "CPU-only, TagMatch"

    def __init__(self, max_partition_size: int = 8192, width: int = 192) -> None:
        super().__init__()
        self.max_partition_size = max_partition_size
        self.width = width

    def _build_index(self, unique_blocks: np.ndarray) -> int:
        self._blocks = unique_blocks
        result = balanced_partition(
            unique_blocks, self.max_partition_size, self.width
        )
        self.partitioning = result
        self.partition_table = PartitionTable(result.partitions, self.width)
        # Per-partition row gathers, so matching touches only relevant rows.
        self._partition_rows = [p.indices for p in result.partitions]
        self._partition_blocks = [unique_blocks[p.indices] for p in result.partitions]
        return unique_blocks.nbytes + self.partition_table.nbytes

    def match_set_ids(self, query: np.ndarray) -> np.ndarray:
        q = np.asarray(query, dtype=np.uint64).reshape(-1)
        relevant = self.partition_table.relevant_partitions(q)
        hits: list[np.ndarray] = []
        for pid in relevant:
            rows = self._partition_blocks[pid]
            mask = ~np.any(rows & ~q, axis=1)
            if mask.any():
                hits.append(self._partition_rows[pid][mask])
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(hits)).astype(np.int64)
