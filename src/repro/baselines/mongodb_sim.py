"""A MongoDB-like document store with subset queries (§4.4).

The paper compares TagMatch with MongoDB 3.2.10 storing tag-array
documents on a RAM disk, indexed, queried through a subset operator, both
single-server and sharded over up to 24 instances (Figures 10–11).
MongoDB is not available offline, so this module implements a document
store with the behaviours those experiments exercise:

* documents are ``(tag array, key)`` pairs kept per shard;
* ``ensure_index`` builds a per-tag B-tree-like inverted index.  As in
  the real system the subset predicate cannot be answered from that
  index (a matching document must have *all* of its tags inside the
  query, which is not an index-serviceable condition), so the index only
  adds build time and memory — matching the paper's observation that
  indexing does not rescue MongoDB's query performance;
* a subset query runs a collection scan on every shard: a signature
  pre-filter over the shard followed by per-document verification of the
  actual tag arrays (the analogue of BSON fetch + filter), with results
  merged at the router;
* a sharded deployment fans the query to all shards in parallel; the
  scan portion parallelises, the router-side merge and per-candidate
  document filtering do not — which is what bends Figure 11's scaling
  curve after ~8 instances.

Throughput is orders of magnitude below TagMatch and essentially
insensitive to the number of tags per document or per query, reproducing
the shape of Figure 10.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.bloom.hashing import TagHasher
from repro.errors import ValidationError

__all__ = ["MongoBuildReport", "MongoDBSim"]


@dataclass
class MongoBuildReport:
    """Insert + index construction costs (§4.3.6 compares index time)."""

    insert_s: float
    index_s: float
    index_bytes: int
    num_documents: int


class _Shard:
    """One MongoDB instance: documents plus scan machinery."""

    def __init__(self, hasher: TagHasher) -> None:
        self._hasher = hasher
        self.tag_sets: list[frozenset[str]] = []
        self.keys: list[int] = []
        self.signatures: np.ndarray | None = None
        self.tag_index: dict[str, list[int]] = {}

    def insert(self, tags: frozenset[str], key: int) -> None:
        self.tag_sets.append(tags)
        self.keys.append(int(key))
        self.signatures = None  # invalidate

    def ensure_index(self) -> int:
        """Build the per-tag inverted index and the scan signatures."""
        self.tag_index = {}
        for doc_id, tags in enumerate(self.tag_sets):
            for tag in tags:
                self.tag_index.setdefault(tag, []).append(doc_id)
        self.signatures = self._hasher.encode_sets(self.tag_sets)
        self._keys_arr = np.array(self.keys, dtype=np.int64)
        index_bytes = sum(
            len(t) + 8 * len(ids) for t, ids in self.tag_index.items()
        )
        return index_bytes + self.signatures.nbytes

    def scan(self, query_tags: frozenset[str], query_blocks: np.ndarray) -> np.ndarray:
        """COLLSCAN: signature pre-filter, then per-document verification."""
        if self.signatures is None:
            raise ValidationError("ensure_index() must run before queries")
        candidates = np.nonzero(~np.any(self.signatures & ~query_blocks, axis=1))[0]
        if candidates.size == 0:
            return np.empty(0, dtype=np.int64)
        # Document fetch + filter: the serial, per-document part.
        verified = [
            doc_id for doc_id in candidates.tolist()
            if self.tag_sets[doc_id] <= query_tags
        ]
        return self._keys_arr[verified]


class MongoDBSim:
    """Single-server (``num_shards=1``) or sharded document store."""

    def __init__(self, num_shards: int = 1, hasher: TagHasher | None = None) -> None:
        if num_shards <= 0:
            raise ValidationError("num_shards must be positive")
        self.hasher = hasher if hasher is not None else TagHasher()
        self.shards = [_Shard(self.hasher) for _ in range(num_shards)]
        self._pool = (
            ThreadPoolExecutor(max_workers=num_shards, thread_name_prefix="mongo-shard")
            if num_shards > 1
            else None
        )
        self.build_report: MongoBuildReport | None = None

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_documents(self) -> int:
        return sum(len(s.tag_sets) for s in self.shards)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def insert_many(self, tag_sets, keys) -> None:
        """Insert documents, distributed round-robin over the shards."""
        for i, (tags, key) in enumerate(zip(tag_sets, keys)):
            self.shards[i % len(self.shards)].insert(frozenset(tags), key)

    def ensure_index(self) -> MongoBuildReport:
        """Index every shard (the paper forces indexing, §4.4)."""
        start = time.perf_counter()
        index_bytes = sum(shard.ensure_index() for shard in self.shards)
        index_s = time.perf_counter() - start
        self.build_report = MongoBuildReport(
            insert_s=0.0,
            index_s=index_s,
            index_bytes=index_bytes,
            num_documents=self.num_documents,
        )
        return self.build_report

    @classmethod
    def load(cls, tag_sets, keys, num_shards: int = 1) -> "MongoDBSim":
        """Insert + index in one step, timing both phases."""
        db = cls(num_shards=num_shards)
        start = time.perf_counter()
        db.insert_many(tag_sets, keys)
        insert_s = time.perf_counter() - start
        report = db.ensure_index()
        report.insert_s = insert_s
        return db

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def find_subsets(self, query_tags, unique: bool = False) -> np.ndarray:
        """All keys of documents whose tag set is a subset of the query.

        The router sends the query to every shard (in parallel for a
        sharded deployment) and merges the partial results.
        """
        query_tags = frozenset(query_tags)
        query_blocks = np.array(self.hasher.encode_set(query_tags), dtype=np.uint64)
        if self._pool is None:
            parts = [self.shards[0].scan(query_tags, query_blocks)]
        else:
            futures = [
                self._pool.submit(shard.scan, query_tags, query_blocks)
                for shard in self.shards
            ]
            parts = [f.result() for f in futures]
        merged = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        if unique:
            return np.unique(merged)
        return np.sort(merged)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "MongoDBSim":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
