"""GPU-only designs: the first two rows of Table 1.

*GPU-only, plain* ships every query to the device individually and scans
the whole (unpartitioned) tagset table — one transfer/kernel/transfer
round trip per query, so the fixed per-invocation costs dominate.

*GPU-only, plain with batching* amortises those costs over a batch of
queries but still scans the whole table for every batch; it lacks
TagMatch's partition pre-filtering, so it remains an order of magnitude
behind the hybrid design (Table 1: 11.5 vs 268.8 kq/s at 20 M sets).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.interface import SubsetMatcher
from repro.errors import ValidationError
from repro.gpu.device import Device
from repro.gpu.kernels import subset_match_kernel

__all__ = ["GpuPlainMatcher", "GpuBatchedMatcher"]


class GpuPlainMatcher(SubsetMatcher):
    """One kernel round trip per query over the whole database."""

    name = "GPU-only, plain"

    def __init__(self, device: Device | None = None, thread_block_size: int = 1024) -> None:
        super().__init__()
        self.device = device if device is not None else Device(num_streams=1)
        self._owns_device = device is None
        self.thread_block_size = thread_block_size

    def _build_index(self, unique_blocks: np.ndarray) -> int:
        order = np.lexsort(
            tuple(unique_blocks[:, c] for c in range(unique_blocks.shape[1] - 1, -1, -1))
        )
        self._ids = order.astype(np.uint32)
        self._table = self.device.htod(unique_blocks[order], label="gpu-plain/table")
        return 0  # the table lives in device memory, not the host index

    def match_set_ids(self, query: np.ndarray) -> np.ndarray:
        q = np.asarray(query, dtype=np.uint64).reshape(1, -1)
        # Per-query round trip: copy the query in, run the kernel over the
        # full table, copy the result out (charged to the device clock).
        qbuf = self.device.htod(q, label="gpu-plain/query")
        result = subset_match_kernel(
            self._table.array(),
            self._ids,
            qbuf.array(),
            thread_block_size=self.thread_block_size,
            prefilter=False,
            cost_model=self.device.cost_model,
            clock=self.device.clock,
        )
        qbuf.free()
        self.device.charge_dtoh(result.set_ids.nbytes)
        return np.sort(result.set_ids).astype(np.int64)

    def close(self) -> None:
        if self._owns_device and not self.device.closed:
            self.device.close()


class GpuBatchedMatcher(GpuPlainMatcher):
    """Full-table scan per *batch* of queries (costs amortised)."""

    name = "GPU-only, plain with batching"

    def __init__(
        self,
        device: Device | None = None,
        batch_size: int = 256,
        thread_block_size: int = 1024,
    ) -> None:
        super().__init__(device=device, thread_block_size=thread_block_size)
        if not 1 <= batch_size <= 256:
            raise ValidationError("batch_size must be in [1, 256]")
        self.batch_size = batch_size

    def match_many(
        self, queries: np.ndarray, unique: bool = False
    ) -> list[np.ndarray]:
        if self.key_table is None:
            raise ValidationError(f"{self.name}: build() must be called first")
        out: list[np.ndarray] = [None] * queries.shape[0]  # type: ignore[list-item]
        for start in range(0, queries.shape[0], self.batch_size):
            batch = queries[start : start + self.batch_size]
            qbuf = self.device.htod(batch, label="gpu-batched/queries")
            result = subset_match_kernel(
                self._table.array(),
                self._ids,
                qbuf.array(),
                thread_block_size=self.thread_block_size,
                prefilter=False,
                cost_model=self.device.cost_model,
                clock=self.device.clock,
            )
            qbuf.free()
            self.device.charge_dtoh(result.set_ids.nbytes + result.query_ids.nbytes)
            for local in range(batch.shape[0]):
                hits = result.set_ids[result.query_ids == local].astype(np.int64)
                if hits.size:
                    keys = self.key_table.keys_of_many(np.sort(hits))
                    out[start + local] = np.unique(keys) if unique else keys
                else:
                    out[start + local] = np.empty(0, dtype=np.int64)
        return out
