"""ICN-style subset matcher (Papalini et al., ANCS '16).

§4.1: an algorithm designed for tag-based packet forwarding in
Information Centric Networks.  Like the prefix tree it is trie-based,
but it applies *"a number of heuristics to rearrange and compress the
trie"*; the restructuring makes it faster at match time, while it
requires so much working memory during index construction that the paper
could only build it for at most 20 % of the full workload in 64 GB
(§4.3.2, Table 3).

Reproduction of both properties:

* **Compression** — after the Patricia trie is built, every subtree
  holding at most ``leaf_size`` sets is collapsed into a *compressed
  leaf*: a packed block array scanned with one vectorized subset check.
  Trie navigation prunes whole regions as before, but the pointer-chasing
  tail of each descent is replaced by a flat scan — the Python analogue
  of the cache-friendly flattened tables of the ANCS '16 matcher.
* **Build memory** — the restructuring phase materialises per-subtree
  tables whose size is accounted explicitly; a configurable
  ``memory_budget_bytes`` makes the build fail for databases that exceed
  it, exactly as on the paper's 64 GB machine.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.prefix_tree import PrefixTreeMatcher, _Node, int_to_blocks
from repro.errors import CapacityError

__all__ = ["ICNMatcher", "BUILD_BYTES_PER_SET", "DEFAULT_LEAF_SIZE"]

#: Estimated working-set bytes per database set during the restructuring
#: phase (the expanded per-subtree tables).  Calibrated so that, like in
#: the paper, building much more than ~20 % of a full workload exhausts
#: a proportionally scaled 64 GB budget.
BUILD_BYTES_PER_SET = 1500

#: Subtrees at most this large are flattened into compressed leaves.
DEFAULT_LEAF_SIZE = 128


class _CompressedLeaf:
    """A flattened subtree: packed signatures scanned vectorized."""

    __slots__ = ("edge_bits", "edge_len", "blocks", "ids")

    def __init__(self, edge_bits: int, edge_len: int, blocks: np.ndarray, ids: np.ndarray) -> None:
        self.edge_bits = edge_bits
        self.edge_len = edge_len
        self.blocks = blocks
        self.ids = ids


class ICNMatcher(PrefixTreeMatcher):
    """Compressed trie with a memory-hungry build (ANCS '16 style)."""

    name = "ICN matcher"

    def __init__(
        self,
        width: int = 192,
        memory_budget_bytes: int | None = None,
        leaf_size: int = DEFAULT_LEAF_SIZE,
    ) -> None:
        super().__init__(width=width)
        self.memory_budget_bytes = memory_budget_bytes
        self.leaf_size = leaf_size
        self.peak_build_bytes = 0
        self.num_compressed_leaves = 0

    def _build_index(self, unique_blocks: np.ndarray) -> int:
        n = unique_blocks.shape[0]
        # The restructuring working set exists only during the build, but
        # it must fit in memory for the build to succeed at all.
        self.peak_build_bytes = n * BUILD_BYTES_PER_SET
        if (
            self.memory_budget_bytes is not None
            and self.peak_build_bytes > self.memory_budget_bytes
        ):
            raise CapacityError(
                f"ICN index construction needs ~{self.peak_build_bytes} bytes "
                f"of working memory for {n} sets, budget is "
                f"{self.memory_budget_bytes}"
            )
        index_bytes = super()._build_index(unique_blocks)
        self.num_compressed_leaves = 0
        self._root = self._compress(self._root)  # type: ignore[assignment]
        return index_bytes + n * unique_blocks.shape[1] * 8

    # ------------------------------------------------------------------
    # Compression pass
    # ------------------------------------------------------------------
    def _collect(self, node: _Node, out: list[tuple[int, list[int]]], depth: int, prefix: int) -> None:
        """Gather (full key, set ids) pairs of a subtree."""
        prefix = (prefix << node.edge_len) | node.edge_bits
        depth += node.edge_len
        if depth == self.width:
            assert node.set_ids is not None
            out.append((prefix, list(node.set_ids)))
            return
        for child in node.children:
            if child is not None:
                self._collect(child, out, depth, prefix)

    def _subtree_size(self, node: _Node) -> int:
        if node.set_ids is not None:
            return len(node.set_ids)
        return sum(
            self._subtree_size(child) for child in node.children if child is not None
        )

    def _compress(self, node: _Node, depth: int = 0):
        """Replace small subtrees by flat, vectorized scan blocks."""
        if node.set_ids is not None:
            return node
        if node.edge_len:  # never flatten the root itself
            size = self._subtree_size(node)
            if size <= self.leaf_size:
                # Collect the subtree's keys.  Each collected value holds
                # the bits from this node's edge start down to the full
                # width, so as a width-bit row it is already aligned at
                # absolute positions [depth, width).
                pairs: list[tuple[int, list[int]]] = []
                self._collect(node, pairs, depth, 0)
                num_words = self.width // 64
                rows: list[int] = []
                ids: list[int] = []
                for key, set_ids in pairs:
                    for sid in set_ids:
                        rows.append(key)
                        ids.append(sid)
                full_rows = (
                    np.vstack([int_to_blocks(r, num_words) for r in rows])
                    if rows
                    else np.empty((0, num_words), dtype=np.uint64)
                )
                self.num_compressed_leaves += 1
                return _CompressedLeaf(
                    node.edge_bits,
                    node.edge_len,
                    full_rows,
                    np.array(ids, dtype=np.int64),
                )
        for branch in (0, 1):
            child = node.children[branch]
            if child is not None:
                node.children[branch] = self._compress(
                    child, depth + node.edge_len
                )
        return node

    # ------------------------------------------------------------------
    # Matching over the compressed structure
    # ------------------------------------------------------------------
    def _match_int(self, q: int) -> np.ndarray:
        out: list[int] = []
        chunks: list[np.ndarray] = []
        visited = 0
        width = self.width
        stack: list[tuple[object, int]] = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            visited += 1
            if node.edge_len:
                seg = (q >> (width - depth - node.edge_len)) & (
                    (1 << node.edge_len) - 1
                )
                if node.edge_bits & ~seg:
                    continue
                depth += node.edge_len
            if isinstance(node, _CompressedLeaf):
                # Vectorized scan of the flattened subtree.  Rows store
                # the *remaining* bits below `depth`; the edge (and all
                # bits above) were already checked, and bits above depth
                # are zero in the stored rows by construction.
                q_blocks = self._query_tail_blocks(q, depth)
                hits = ~np.any(node.blocks & ~q_blocks, axis=1)
                if hits.any():
                    chunks.append(node.ids[hits])
                continue
            if depth == width:
                if node.set_ids:
                    out.extend(node.set_ids)
                continue
            zero_child = node.children[0]
            if zero_child is not None:
                stack.append((zero_child, depth))
            one_child = node.children[1]
            if one_child is not None and (q >> (width - depth - 1)) & 1:
                stack.append((one_child, depth))
        self.last_nodes_visited = visited
        if chunks:
            out.extend(np.concatenate(chunks).tolist())
        return np.array(sorted(out), dtype=np.int64)

    def _query_tail_blocks(self, q: int, depth: int) -> np.ndarray:
        """The query with bits above ``depth`` forced to one.

        Compressed-leaf rows contain the subtree's *remaining* key bits
        (positions ≥ depth) plus the already-verified prefix; setting the
        query's upper bits makes the single vectorized containment check
        depend only on the remaining positions.
        """
        mask = ((1 << depth) - 1) << (self.width - depth)
        return np.asarray(
            int_to_blocks(q | mask, self.width // 64), dtype=np.uint64
        )
