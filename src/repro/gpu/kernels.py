"""SPMD subset-match kernels (Algorithms 3 and 4).

The paper's kernel assigns one indexed tag set per GPU thread; each
thread checks its set against every query of the batch and atomically
appends matches to a shared output vector.  Threads are organised in
blocks of consecutive ids, and because the tagset table is stored in
lexicographic order, the first thread of each block can compute the
longest common prefix of all sets in the block and use it to *pre-filter*
the query batch in shared memory (Algorithm 4) — the paper's single most
significant kernel optimisation.

Here one NumPy broadcast plays the role of one thread block: the loop
over thread blocks is explicit (it is also the unit of pre-filtering),
and everything inside a block is vectorized.

Three hot-path refinements sit on top of the seed kernel:

* **Fused launches** — ``block_offsets`` lets one invocation cover the
  concatenation of several small partitions (each aligned to its own
  thread blocks), charging a single launch overhead where the seed paid
  one per partition (Figure 7's small-partition regime).
* **Hierarchical pre-filtering** — with ``coarse=True`` each fused
  member carries an AND-of-rows summary checked with *one*
  ``containment_matrix`` row before any per-thread-block work, and each
  thread block's first (lexicographically minimal) row bounds the block
  from below: a subset of ``q`` is numerically ≤ ``q``, so blocks whose
  minimum exceeds the query are rejected without a containment scan.
* **Zero-allocation outputs** — a :class:`ResultArena` owned by the
  calling stream replaces the per-block list-append + ``concatenate``
  with growable preallocated output arrays reused across invocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.bloom.hashing import BLOCK_BITS
from repro.bloom.ops import containment_matrix
from repro.errors import ValidationError
from repro.gpu.packing import pack_results, packed_size
from repro.gpu.timing import CostModel, DeviceClock
from repro.obs import trace

__all__ = [
    "KernelStats",
    "KernelResult",
    "ResultArena",
    "subset_match_kernel",
    "block_prefixes",
    "block_prefixes_ranges",
    "uniform_block_offsets",
    "DEFAULT_THREAD_BLOCK_SIZE",
]

#: Threads (indexed sets) per thread block.
DEFAULT_THREAD_BLOCK_SIZE = 1024

_U64 = np.uint64
_ALL_ONES = _U64(0xFFFFFFFFFFFFFFFF)


@dataclass
class KernelStats:
    """Observable work performed by one kernel invocation."""

    num_threads: int
    num_thread_blocks: int
    batch_size: int
    #: Query slots surviving Algorithm 4 across all blocks; equals
    #: ``num_thread_blocks * batch_size`` when pre-filtering is disabled.
    surviving_query_slots: int
    num_pairs: int
    simulated_time_s: float
    #: Partitions covered by this (possibly fused) invocation.
    num_members: int = 1

    @property
    def prefilter_ratio(self) -> float:
        """Fraction of per-block query slots removed by pre-filtering."""
        total = self.num_thread_blocks * self.batch_size
        if total == 0:
            return 0.0
        return 1.0 - self.surviving_query_slots / total


@dataclass
class KernelResult:
    """Matches found by one kernel invocation.

    ``query_ids[i]`` is the batch-local 8-bit id of the matched query and
    ``set_ids[i]`` the 32-bit global id of the matching indexed set — the
    ``(q, s)`` pairs of §3.3.1, before packing.

    When the kernel ran with a caller-owned :class:`ResultArena` the id
    arrays are views into it, valid until the arena's next invocation.
    """

    query_ids: np.ndarray
    set_ids: np.ndarray
    stats: KernelStats


class ResultArena:
    """Growable preallocated output buffers for kernel invocations.

    One arena is owned by one serial execution context — a stream (whose
    FIFO guarantees at most one kernel in flight), a pool worker process,
    or a lookup thread — and reused across invocations, so the steady
    state allocates nothing: the per-block match pairs are written
    straight into the ``query_ids``/``set_ids`` arrays, boolean scratch
    matrices back the containment calls, and :meth:`pack` emits the
    §3.3.1 packed bytes into a resident buffer.
    """

    def __init__(self, capacity_pairs: int = 1024) -> None:
        capacity_pairs = max(1, int(capacity_pairs))
        self._q = np.empty(capacity_pairs, dtype=np.uint8)
        self._s = np.empty(capacity_pairs, dtype=np.uint32)
        self._packed = np.empty(packed_size(capacity_pairs), dtype=np.uint8)
        self._bools: dict[str, np.ndarray] = {}
        self._count = 0
        #: Invocations served since construction (reuse observability).
        self.invocations = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def capacity_pairs(self) -> int:
        return self._q.shape[0]

    def begin(self) -> None:
        """Start a new invocation: rewind the pair cursor."""
        self._count = 0
        self.invocations += 1

    def append_slots(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Reserve ``k`` output pairs; returns (query, set) views to fill."""
        need = self._count + k
        if need > self._q.shape[0]:
            new_cap = max(need, 2 * self._q.shape[0])
            grown_q = np.empty(new_cap, dtype=np.uint8)
            grown_s = np.empty(new_cap, dtype=np.uint32)
            grown_q[: self._count] = self._q[: self._count]
            grown_s[: self._count] = self._s[: self._count]
            self._q, self._s = grown_q, grown_s
        lo, self._count = self._count, need
        return self._q[lo:need], self._s[lo:need]

    def query_ids(self) -> np.ndarray:
        return self._q[: self._count]

    def set_ids(self) -> np.ndarray:
        return self._s[: self._count]

    def bools(self, name: str, rows: int, cols: int) -> np.ndarray:
        """A reusable ``(rows, cols)`` boolean scratch matrix."""
        need = rows * cols
        buf = self._bools.get(name)
        if buf is None or buf.shape[0] < need:
            buf = np.empty(max(need, 1), dtype=bool)
            self._bools[name] = buf
        return buf[:need].reshape(rows, cols)

    def pack(self) -> np.ndarray:
        """Pack the current pairs into the resident §3.3.1 byte buffer."""
        need = packed_size(self._count)
        if need > self._packed.shape[0]:
            self._packed = np.empty(max(need, 2 * self._packed.shape[0]), dtype=np.uint8)
        return pack_results(
            self._q[: self._count], self._s[: self._count], out=self._packed
        )


def _bit_length_u64(x: np.ndarray) -> np.ndarray:
    x = x.astype(_U64, copy=True)
    n = np.zeros(x.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        big = x >= (_U64(1) << _U64(shift))
        n[big] += shift
        x[big] >>= _U64(shift)
    n[x > 0] += 1
    return n


def _leftmost_one(blocks: np.ndarray, width: int) -> np.ndarray:
    """Leftmost one-bit position per row; ``width`` for all-zero rows."""
    n, num_blocks = blocks.shape
    out = np.full(n, width, dtype=np.int64)
    undecided = np.ones(n, dtype=bool)
    for col in range(num_blocks):
        column = blocks[:, col]
        hit = undecided & (column != 0)
        if np.any(hit):
            lengths = _bit_length_u64(column[hit])
            out[hit] = col * BLOCK_BITS + (BLOCK_BITS - lengths)
            undecided &= ~hit
        if not np.any(undecided):
            break
    return out


def uniform_block_offsets(n: int, thread_block_size: int) -> np.ndarray:
    """Thread-block row bounds ``[0, tbs, 2·tbs, ..., n]`` for one partition."""
    if n <= 0:
        return np.zeros(1, dtype=np.int64)
    starts = np.arange(0, n, thread_block_size, dtype=np.int64)
    return np.append(starts, np.int64(n))


def block_prefixes_ranges(
    sets: np.ndarray, starts: np.ndarray, stops: np.ndarray
) -> np.ndarray:
    """Longest-common-prefix masks for explicit thread-block row ranges.

    Each range ``[starts[i], stops[i])`` must be lexicographically sorted
    (ranges never span fused-partition boundaries, which preserves that
    invariant); the prefix of a block is the first row with every bit at
    position ≥ the leftmost bit differing between first and last row
    cleared.  Returns a ``(num_blocks, num_words)`` uint64 array.
    """
    num_blocks = sets.shape[1]
    width = num_blocks * BLOCK_BITS
    firsts = sets[starts]
    lasts = sets[stops - 1]
    prefix_len = _leftmost_one(firsts ^ lasts, width)

    # Per block-word: how many leading bits of this word belong to the
    # common prefix (0..64), then build the keep-mask.
    word_base = np.arange(num_blocks, dtype=np.int64) * BLOCK_BITS
    kept = np.clip(prefix_len[:, None] - word_base[None, :], 0, BLOCK_BITS)
    shift = (BLOCK_BITS - kept).astype(_U64)
    # shift == 64 (kept == 0) would overflow; mask those lanes to zero.
    safe_shift = np.minimum(shift, _U64(BLOCK_BITS - 1))
    masks = np.where(kept > 0, _ALL_ONES << safe_shift, _U64(0))
    return firsts & masks.astype(_U64)


def block_prefixes(sets: np.ndarray, thread_block_size: int) -> np.ndarray:
    """Longest-common-prefix masks per uniform thread block (Algorithm 4).

    ``sets`` is the lexicographically sorted ``(n, num_blocks)`` uint64
    partition.  For each chunk of ``thread_block_size`` consecutive rows
    the prefix is the first row with every bit at position ≥ the leftmost
    differing bit (between first and last row) cleared.  Returns a
    ``(num_thread_blocks, num_blocks)`` uint64 array.
    """
    offsets = uniform_block_offsets(sets.shape[0], thread_block_size)
    return block_prefixes_ranges(sets, offsets[:-1], offsets[1:])


def _lex_le_matrix(rows: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Boolean ``(n, b)``: ``rows[i] ≤ queries[j]`` in bit-string order.

    Word 0 is the most significant; a bitwise subset of ``q`` is always
    numerically ≤ ``q`` in this order, so a sorted block whose minimum
    row exceeds the query cannot contain any match.
    """
    n, words = rows.shape
    b = queries.shape[0]
    le = np.ones((n, b), dtype=bool)
    decided = np.zeros((n, b), dtype=bool)
    for w in range(words):
        rw = rows[:, w][:, None]
        qw = queries[:, w][None, :]
        gt = ~decided & (rw > qw)
        le &= ~gt
        decided |= gt | (~decided & (rw < qw))
        if decided.all():
            break
    return le


def subset_match_kernel(
    sets: np.ndarray,
    set_ids: np.ndarray,
    queries: np.ndarray,
    thread_block_size: int = DEFAULT_THREAD_BLOCK_SIZE,
    prefilter: bool = True,
    cost_model: CostModel | None = None,
    clock: DeviceClock | None = None,
    prefixes: np.ndarray | None = None,
    block_offsets: np.ndarray | None = None,
    member_commons: np.ndarray | None = None,
    member_of_block: np.ndarray | None = None,
    coarse: bool = False,
    arena: ResultArena | None = None,
) -> KernelResult:
    """Match a batch of queries against one partition (Algorithms 3–4).

    Parameters
    ----------
    sets:
        ``(n, num_blocks)`` uint64 partition rows.  Must be sorted
        lexicographically when ``prefilter`` is on (the tagset table
        guarantees this); the prefix trick is only correct on sorted data.
        With ``block_offsets`` it may be the concatenation of several
        sorted partitions (each member sorted, blocks never spanning a
        member boundary).
    set_ids:
        ``(n,)`` uint32 global set ids parallel to ``sets``.
    queries:
        ``(b, num_blocks)`` uint64 query batch; ``b`` must fit the 8-bit
        batch-local query id of the output format (≤ 256).
    prefilter:
        Enable the Algorithm 4 shared-memory pre-filter.  Disabling it is
        the ablation of `bench_ablation_prefilter`.
    cost_model, clock:
        When given, the kernel's simulated device time (launch overhead +
        folded thread work + atomic appends) is charged to ``clock``.  A
        fused invocation charges the launch overhead exactly once.
    prefixes:
        Optional precomputed :func:`block_prefixes` for ``sets`` at this
        ``thread_block_size`` (the tagset table caches them at upload
        time, since partition contents only change at consolidation).
    block_offsets:
        Optional ``(num_thread_blocks + 1,)`` explicit row bounds for the
        thread blocks (fused multi-partition launches).  When omitted the
        blocks are the uniform ``thread_block_size`` chunks.
    member_commons, member_of_block, coarse:
        The hierarchical coarse pre-filter.  ``member_commons`` holds one
        AND-of-rows summary per fused member and ``member_of_block`` maps
        each thread block to its member; with ``coarse=True`` a member
        whose common bits are not contained in a query rejects every one
        of its blocks with a single containment row, and each surviving
        block is additionally bounded below by its first row in
        bit-string order.  Both checks are necessary conditions, so the
        match set is bitwise identical with the filter on or off.
    arena:
        Optional caller-owned :class:`ResultArena` reused across
        invocations (zero-allocation steady state).  The returned id
        arrays are views into it, valid until its next invocation.
    """
    if sets.ndim != 2 or queries.ndim != 2:
        raise ValidationError("sets and queries must be 2-D block arrays")
    if sets.shape[1] != queries.shape[1]:
        raise ValidationError("sets and queries have different block counts")
    if len(set_ids) != len(sets):
        raise ValidationError("set_ids must parallel sets")
    batch_size = queries.shape[0]
    if batch_size > 256:
        raise ValidationError(
            f"batch of {batch_size} queries does not fit 8-bit query ids"
        )
    n = sets.shape[0]
    num_members = 1 if member_commons is None else int(member_commons.shape[0])
    if n == 0 or batch_size == 0:
        empty_stats = KernelStats(0, 0, batch_size, 0, 0, 0.0, num_members)
        return KernelResult(
            np.empty(0, dtype=np.uint8), np.empty(0, dtype=np.uint32), empty_stats
        )

    # One launch == one span: fused launches record once for the whole
    # dispatch unit, so span counts mirror the launch amortisation the
    # cost model charges (§3.3.2).  Disabled tracing costs one flag read.
    launch_t0 = perf_counter() if trace.is_enabled() else 0.0

    ids = np.ascontiguousarray(set_ids, dtype=np.uint32)
    if block_offsets is None:
        starts = np.arange(0, n, thread_block_size, dtype=np.int64)
        stops = np.minimum(starts + thread_block_size, n)
    else:
        offsets = np.asarray(block_offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.shape[0] < 2 or offsets[-1] != n:
            raise ValidationError("block_offsets must be row bounds ending at n")
        starts = offsets[:-1]
        stops = offsets[1:]
    num_tblocks = starts.shape[0]

    if arena is None:
        arena = ResultArena()
    arena.begin()

    if prefilter:
        if prefixes is None:
            prefixes = block_prefixes_ranges(sets, starts, stops)
        survive: np.ndarray | None = None
        if coarse:
            member_surv = None
            if num_members > 1:
                # Level 1: one containment row per member rejects whole
                # partitions before any per-thread-block work.  With a
                # single member the block prefixes already imply the
                # member mask (prefix bits are a superset of the AND of
                # all member rows), so the check is pure overhead there.
                mob = member_of_block
                if mob is None:
                    mob = np.zeros(num_tblocks, dtype=np.int64)
                member_surv = containment_matrix(member_commons, queries)
            if member_surv is not None and not member_surv.any():
                survive = arena.bools("survive", num_tblocks, batch_size)
                survive[:] = False
            else:
                # Level 2: the Algorithm 4 prefix check per block, masked
                # down to live members, plus the lexicographic lower
                # bound of each block's first row.
                survive = containment_matrix(
                    prefixes, queries, out=arena.bools("survive", num_tblocks, batch_size)
                )
                if member_surv is not None:
                    survive &= member_surv[mob]
                survive &= _lex_le_matrix(sets[starts], queries)
        else:
            survive = containment_matrix(
                prefixes, queries, out=arena.bools("survive", num_tblocks, batch_size)
            )
    else:
        survive = arena.bools("survive", num_tblocks, batch_size)
        survive[:] = True

    if num_members > 1:
        # Fused launch: the per-block loop would cost one host-side
        # iteration per tiny partition — exactly the overhead fusing is
        # meant to amortise.  Gather every row of every surviving block
        # and run one containment over the lot, masking each row down to
        # the queries its block survived.  Rows stay in ascending order
        # and np.nonzero is row-major, so the emitted (query, set) pairs
        # are bitwise identical to the per-block loop's.
        surviving_slots = int(np.count_nonzero(survive))
        alive = survive.any(axis=1)
        if alive.any():
            row_block = np.repeat(
                np.arange(num_tblocks, dtype=np.int64), stops - starts
            )
            rows_alive = np.nonzero(alive[row_block])[0]
            matches = containment_matrix(
                sets[rows_alive],
                queries,
                out=arena.bools("matches", rows_alive.size, batch_size),
            )
            matches &= survive[row_block[rows_alive]]
            rows, cols = np.nonzero(matches)
            if rows.size:
                out_q, out_s = arena.append_slots(rows.size)
                out_q[:] = cols
                out_s[:] = ids[rows_alive[rows]]
    else:
        surviving_slots = 0
        for tb in range(num_tblocks):
            q_idx = np.nonzero(survive[tb])[0]
            if q_idx.size == 0:
                continue
            surviving_slots += q_idx.size
            start = int(starts[tb])
            stop = int(stops[tb])
            chunk = sets[start:stop]
            # (threads, surviving queries): thread t matches query j iff
            # chunk[t] & ~query[j] == 0 in every block word (footnote 4).
            matches = containment_matrix(
                chunk,
                queries if q_idx.size == batch_size else queries[q_idx],
                out=arena.bools("matches", stop - start, q_idx.size),
            )
            rows, cols = np.nonzero(matches)
            if rows.size:
                out_q, out_s = arena.append_slots(rows.size)
                out_q[:] = q_idx[cols]
                out_s[:] = ids[start + rows]

    query_ids = arena.query_ids()
    found_ids = arena.set_ids()

    simulated = 0.0
    if cost_model is not None:
        checks_per_thread = surviving_slots / num_tblocks if num_tblocks else 0.0
        prefilter_scan = batch_size / thread_block_size if prefilter else 0.0
        simulated = cost_model.kernel_time(n, checks_per_thread + prefilter_scan)
        simulated += query_ids.size * cost_model.atomic_op_s
        if clock is not None:
            clock.add_kernel(simulated)

    if launch_t0:
        trace.record(
            "kernel",
            launch_t0,
            perf_counter() - launch_t0,
            {
                "rows": int(n),
                "batch": int(batch_size),
                "members": num_members,
                "pairs": int(query_ids.size),
            },
        )

    stats = KernelStats(
        num_threads=n,
        num_thread_blocks=num_tblocks,
        batch_size=batch_size,
        surviving_query_slots=surviving_slots
        if prefilter
        else num_tblocks * batch_size,
        num_pairs=int(query_ids.size),
        simulated_time_s=simulated,
        num_members=num_members,
    )
    return KernelResult(query_ids=query_ids, set_ids=found_ids, stats=stats)
