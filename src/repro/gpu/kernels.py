"""SPMD subset-match kernels (Algorithms 3 and 4).

The paper's kernel assigns one indexed tag set per GPU thread; each
thread checks its set against every query of the batch and atomically
appends matches to a shared output vector.  Threads are organised in
blocks of consecutive ids, and because the tagset table is stored in
lexicographic order, the first thread of each block can compute the
longest common prefix of all sets in the block and use it to *pre-filter*
the query batch in shared memory (Algorithm 4) — the paper's single most
significant kernel optimisation.

Here one NumPy broadcast plays the role of one thread block: the loop
over thread blocks is explicit (it is also the unit of pre-filtering),
and everything inside a block is vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bloom.hashing import BLOCK_BITS
from repro.bloom.ops import containment_matrix
from repro.errors import ValidationError
from repro.gpu.timing import CostModel, DeviceClock

__all__ = [
    "KernelStats",
    "KernelResult",
    "subset_match_kernel",
    "block_prefixes",
    "DEFAULT_THREAD_BLOCK_SIZE",
]

#: Threads (indexed sets) per thread block.
DEFAULT_THREAD_BLOCK_SIZE = 1024

_U64 = np.uint64
_ALL_ONES = _U64(0xFFFFFFFFFFFFFFFF)


@dataclass
class KernelStats:
    """Observable work performed by one kernel invocation."""

    num_threads: int
    num_thread_blocks: int
    batch_size: int
    #: Query slots surviving Algorithm 4 across all blocks; equals
    #: ``num_thread_blocks * batch_size`` when pre-filtering is disabled.
    surviving_query_slots: int
    num_pairs: int
    simulated_time_s: float

    @property
    def prefilter_ratio(self) -> float:
        """Fraction of per-block query slots removed by pre-filtering."""
        total = self.num_thread_blocks * self.batch_size
        if total == 0:
            return 0.0
        return 1.0 - self.surviving_query_slots / total


@dataclass
class KernelResult:
    """Matches found by one kernel invocation.

    ``query_ids[i]`` is the batch-local 8-bit id of the matched query and
    ``set_ids[i]`` the 32-bit global id of the matching indexed set — the
    ``(q, s)`` pairs of §3.3.1, before packing.
    """

    query_ids: np.ndarray
    set_ids: np.ndarray
    stats: KernelStats


def _bit_length_u64(x: np.ndarray) -> np.ndarray:
    x = x.astype(_U64, copy=True)
    n = np.zeros(x.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        big = x >= (_U64(1) << _U64(shift))
        n[big] += shift
        x[big] >>= _U64(shift)
    n[x > 0] += 1
    return n


def _leftmost_one(blocks: np.ndarray, width: int) -> np.ndarray:
    """Leftmost one-bit position per row; ``width`` for all-zero rows."""
    n, num_blocks = blocks.shape
    out = np.full(n, width, dtype=np.int64)
    undecided = np.ones(n, dtype=bool)
    for col in range(num_blocks):
        column = blocks[:, col]
        hit = undecided & (column != 0)
        if np.any(hit):
            lengths = _bit_length_u64(column[hit])
            out[hit] = col * BLOCK_BITS + (BLOCK_BITS - lengths)
            undecided &= ~hit
        if not np.any(undecided):
            break
    return out


def block_prefixes(sets: np.ndarray, thread_block_size: int) -> np.ndarray:
    """Longest-common-prefix masks per thread block (Algorithm 4).

    ``sets`` is the lexicographically sorted ``(n, num_blocks)`` uint64
    partition.  For each chunk of ``thread_block_size`` consecutive rows
    the prefix is the first row with every bit at position ≥ the leftmost
    differing bit (between first and last row) cleared.  Returns a
    ``(num_thread_blocks, num_blocks)`` uint64 array.
    """
    n, num_blocks = sets.shape
    width = num_blocks * BLOCK_BITS
    starts = np.arange(0, n, thread_block_size)
    ends = np.minimum(starts + thread_block_size - 1, n - 1)
    firsts = sets[starts]
    lasts = sets[ends]
    prefix_len = _leftmost_one(firsts ^ lasts, width)

    # Per block-word: how many leading bits of this word belong to the
    # common prefix (0..64), then build the keep-mask.
    word_base = np.arange(num_blocks, dtype=np.int64) * BLOCK_BITS
    kept = np.clip(prefix_len[:, None] - word_base[None, :], 0, BLOCK_BITS)
    shift = (BLOCK_BITS - kept).astype(_U64)
    # shift == 64 (kept == 0) would overflow; mask those lanes to zero.
    safe_shift = np.minimum(shift, _U64(BLOCK_BITS - 1))
    masks = np.where(kept > 0, _ALL_ONES << safe_shift, _U64(0))
    return firsts & masks.astype(_U64)


def subset_match_kernel(
    sets: np.ndarray,
    set_ids: np.ndarray,
    queries: np.ndarray,
    thread_block_size: int = DEFAULT_THREAD_BLOCK_SIZE,
    prefilter: bool = True,
    cost_model: CostModel | None = None,
    clock: DeviceClock | None = None,
    prefixes: np.ndarray | None = None,
) -> KernelResult:
    """Match a batch of queries against one partition (Algorithms 3–4).

    Parameters
    ----------
    sets:
        ``(n, num_blocks)`` uint64 partition rows.  Must be sorted
        lexicographically when ``prefilter`` is on (the tagset table
        guarantees this); the prefix trick is only correct on sorted data.
    set_ids:
        ``(n,)`` uint32 global set ids parallel to ``sets``.
    queries:
        ``(b, num_blocks)`` uint64 query batch; ``b`` must fit the 8-bit
        batch-local query id of the output format (≤ 256).
    prefilter:
        Enable the Algorithm 4 shared-memory pre-filter.  Disabling it is
        the ablation of `bench_ablation_prefilter`.
    cost_model, clock:
        When given, the kernel's simulated device time (launch overhead +
        folded thread work + atomic appends) is charged to ``clock``.
    prefixes:
        Optional precomputed :func:`block_prefixes` for ``sets`` at this
        ``thread_block_size`` (the tagset table caches them at upload
        time, since partition contents only change at consolidation).
    """
    if sets.ndim != 2 or queries.ndim != 2:
        raise ValidationError("sets and queries must be 2-D block arrays")
    if sets.shape[1] != queries.shape[1]:
        raise ValidationError("sets and queries have different block counts")
    if len(set_ids) != len(sets):
        raise ValidationError("set_ids must parallel sets")
    batch_size = queries.shape[0]
    if batch_size > 256:
        raise ValidationError(
            f"batch of {batch_size} queries does not fit 8-bit query ids"
        )
    n = sets.shape[0]
    if n == 0 or batch_size == 0:
        empty_stats = KernelStats(0, 0, batch_size, 0, 0, 0.0)
        return KernelResult(
            np.empty(0, dtype=np.uint8), np.empty(0, dtype=np.uint32), empty_stats
        )

    ids = np.ascontiguousarray(set_ids, dtype=np.uint32)
    num_tblocks = -(-n // thread_block_size)

    if prefilter:
        if prefixes is None:
            prefixes = block_prefixes(sets, thread_block_size)
        # prefix ⊆ q, vectorized over (thread block × query).
        survive = containment_matrix(prefixes, queries)
    else:
        survive = np.ones((num_tblocks, batch_size), dtype=bool)

    out_q: list[np.ndarray] = []
    out_s: list[np.ndarray] = []
    surviving_slots = 0
    for tb in range(num_tblocks):
        q_idx = np.nonzero(survive[tb])[0]
        if q_idx.size == 0:
            continue
        surviving_slots += q_idx.size
        start = tb * thread_block_size
        stop = min(start + thread_block_size, n)
        chunk = sets[start:stop]
        # (threads, surviving queries): thread t matches query j iff
        # chunk[t] & ~query[j] == 0 in every block word (footnote 4).
        matches = containment_matrix(
            chunk, queries if q_idx.size == batch_size else queries[q_idx]
        )
        rows, cols = np.nonzero(matches)
        if rows.size:
            out_q.append(q_idx[cols].astype(np.uint8))
            out_s.append(ids[start + rows])

    if out_q:
        query_ids = np.concatenate(out_q)
        found_ids = np.concatenate(out_s)
    else:
        query_ids = np.empty(0, dtype=np.uint8)
        found_ids = np.empty(0, dtype=np.uint32)

    simulated = 0.0
    if cost_model is not None:
        checks_per_thread = surviving_slots / num_tblocks if num_tblocks else 0.0
        prefilter_scan = batch_size / thread_block_size if prefilter else 0.0
        simulated = cost_model.kernel_time(n, checks_per_thread + prefilter_scan)
        simulated += query_ids.size * cost_model.atomic_op_s
        if clock is not None:
            clock.add_kernel(simulated)

    stats = KernelStats(
        num_threads=n,
        num_thread_blocks=num_tblocks,
        batch_size=batch_size,
        surviving_query_slots=surviving_slots
        if prefilter
        else num_tblocks * batch_size,
        num_pairs=int(query_ids.size),
        simulated_time_s=simulated,
    )
    return KernelResult(query_ids=query_ids, set_ids=found_ids, stats=stats)
