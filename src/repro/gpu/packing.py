"""The packed (query, set) result layout of §3.3.1.

The subset-match kernel reports matches as pairs ``(q, s)`` with an 8-bit
query id (position within its batch) and a 32-bit set id.  A naive
``struct { uint8 q; uint32 s; }`` costs 8 bytes per pair after alignment
— a 37.5 % waste of device memory and bus bandwidth.  The paper instead
stores groups of four pairs as four packed query ids followed by four
packed set ids::

    | q1 q2 q3 q4 | s1 s2 s3 s4 |     (4 + 16 = 20 bytes per 4 pairs)

A partial trailing group still reserves the full 4 query-id bytes but
only the set ids actually present, so the worst-case total loss is three
bytes — exactly the paper's claim.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "pack_results",
    "unpack_results",
    "packed_size",
    "naive_aligned_size",
    "GROUP",
]

#: Pairs per packed group.
GROUP = 4

_GROUP_BYTES = GROUP * (1 + 4)  # 4 query bytes + 4 × 4 set-id bytes


def packed_size(num_pairs: int) -> int:
    """Bytes occupied by ``num_pairs`` results in the packed layout."""
    if num_pairs < 0:
        raise ValidationError("num_pairs must be non-negative")
    full, tail = divmod(num_pairs, GROUP)
    return full * _GROUP_BYTES + (GROUP + 4 * tail if tail else 0)


def naive_aligned_size(num_pairs: int) -> int:
    """Bytes for the naive aligned ``(uint8, uint32)`` struct layout."""
    if num_pairs < 0:
        raise ValidationError("num_pairs must be non-negative")
    return 8 * num_pairs


def pack_results(
    query_ids: np.ndarray, set_ids: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Pack parallel ``(query, set)`` id arrays into the §3.3.1 layout.

    ``query_ids`` must fit in uint8 (batches hold at most 256 queries) and
    ``set_ids`` in uint32.  Returns a flat ``uint8`` array.  ``out``, when
    given, is a preallocated uint8 buffer of at least ``packed_size(n)``
    bytes; the result is a view of it (padding bytes are re-zeroed, so the
    view is bit-identical to a fresh allocation).
    """
    q = np.ascontiguousarray(query_ids, dtype=np.uint8)
    s = np.ascontiguousarray(set_ids, dtype=np.uint32)
    if q.shape != s.shape or q.ndim != 1:
        raise ValidationError("query_ids and set_ids must be equal-length 1-D arrays")
    n = q.shape[0]
    full, tail = divmod(n, GROUP)
    nbytes = packed_size(n)
    if out is None:
        out = np.zeros(nbytes, dtype=np.uint8)
    else:
        if out.ndim != 1 or out.dtype != np.uint8 or out.shape[0] < nbytes:
            raise ValidationError(
                f"pack_results out buffer too small for {n} pairs ({nbytes} bytes)"
            )
        out = out[:nbytes]
    if full:
        groups = out[: full * _GROUP_BYTES].reshape(full, _GROUP_BYTES)
        groups[:, :GROUP] = q[: full * GROUP].reshape(full, GROUP)
        groups[:, GROUP:] = (
            s[: full * GROUP].astype("<u4").reshape(full, GROUP).view(np.uint8)
        )
    if tail:
        rest = out[full * _GROUP_BYTES :]
        rest[:tail] = q[full * GROUP :]
        rest[tail:GROUP] = 0  # unused query-id padding of the partial group
        rest[GROUP : GROUP + 4 * tail] = s[full * GROUP :].astype("<u4").view(np.uint8)
    return out


def unpack_results(
    packed: np.ndarray,
    num_pairs: int,
    out: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_results`; needs the pair count (transferred
    through the double-buffer length slot, §3.3.2).

    ``out``, when given, is a ``(query_buf, set_buf)`` pair of
    preallocated uint8/uint32 arrays with capacity ≥ ``num_pairs``; the
    returned arrays are views of them, so a lookup thread can reuse one
    unpack scratch across every delivered batch.
    """
    buf = np.ascontiguousarray(packed, dtype=np.uint8)
    expected = packed_size(num_pairs)
    if buf.shape[0] < expected:
        raise ValidationError(
            f"packed buffer of {buf.shape[0]} bytes too small for "
            f"{num_pairs} pairs ({expected} bytes)"
        )
    if out is None:
        q = np.empty(num_pairs, dtype=np.uint8)
        s = np.empty(num_pairs, dtype=np.uint32)
    else:
        q_buf, s_buf = out
        if q_buf.shape[0] < num_pairs or s_buf.shape[0] < num_pairs:
            raise ValidationError(
                f"unpack_results out buffers too small for {num_pairs} pairs"
            )
        q = q_buf[:num_pairs]
        s = s_buf[:num_pairs]
    full, tail = divmod(num_pairs, GROUP)
    if full:
        groups = buf[: full * _GROUP_BYTES].reshape(full, _GROUP_BYTES)
        q[: full * GROUP] = groups[:, :GROUP].reshape(-1)
        s[: full * GROUP] = groups[:, GROUP:].copy().view("<u4").reshape(-1)
    if tail:
        rest = buf[full * _GROUP_BYTES : expected]
        q[full * GROUP :] = rest[:tail]
        s[full * GROUP :] = rest[GROUP : GROUP + 4 * tail].copy().view("<u4")
    return q, s
