"""A software model of a CUDA-class GPU (see DESIGN.md §1).

The paper runs its subset-match stage on two NVIDIA TITAN X cards; this
package replaces them with a simulated device that preserves everything
TagMatch's design actually depends on: SPMD kernels over thread blocks
(with the Algorithm 4 shared-memory pre-filter), FIFO streams with
asynchronous submission, explicit host<->device copies priced by a PCIe
cost model, device memory capacity accounting, the packed result layout
of §3.3.1, and the even/odd double-buffered transfer protocol of §3.3.2.
"""

from repro.gpu.device import (
    DEFAULT_DEVICE_MEMORY,
    DEFAULT_STREAMS_PER_DEVICE,
    Device,
)
from repro.gpu.doublebuffer import CycleResult, DoubleBufferedResults
from repro.gpu.dynamic_parallelism import (
    DevicePartition,
    DynamicParallelismMatcher,
    GpuOnlyTimings,
)
from repro.gpu.kernels import (
    DEFAULT_THREAD_BLOCK_SIZE,
    KernelResult,
    KernelStats,
    ResultArena,
    block_prefixes,
    block_prefixes_ranges,
    subset_match_kernel,
    uniform_block_offsets,
)
from repro.gpu.memory import DeviceBuffer, MemoryLedger, TransferDirection, TransferStats
from repro.gpu.packing import (
    GROUP,
    naive_aligned_size,
    pack_results,
    packed_size,
    unpack_results,
)
from repro.gpu.stream import Stream, StreamOp
from repro.gpu.timing import CostModel, DeviceClock

__all__ = [
    "DEFAULT_DEVICE_MEMORY",
    "DEFAULT_STREAMS_PER_DEVICE",
    "DEFAULT_THREAD_BLOCK_SIZE",
    "GROUP",
    "CostModel",
    "CycleResult",
    "Device",
    "DeviceBuffer",
    "DeviceClock",
    "DevicePartition",
    "DoubleBufferedResults",
    "DynamicParallelismMatcher",
    "GpuOnlyTimings",
    "KernelResult",
    "KernelStats",
    "MemoryLedger",
    "ResultArena",
    "Stream",
    "StreamOp",
    "TransferDirection",
    "TransferStats",
    "block_prefixes",
    "block_prefixes_ranges",
    "uniform_block_offsets",
    "naive_aligned_size",
    "pack_results",
    "packed_size",
    "subset_match_kernel",
    "unpack_results",
]
