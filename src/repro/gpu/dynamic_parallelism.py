"""The alternative GPU-only design of §4.5 (dynamic parallelism).

Early TagMatch prototypes ran *both* the pre-process and the subset-match
phases on the GPU: a parent kernel classifies queries against partition
masks and appends them to per-partition queues in global memory, and
launches a child subset-match kernel whenever a queue fills — CUDA
"dynamic parallelism".  The paper reports that this design only wins when
the pre-process phase filters out most queries; otherwise the atomic
appends and the nearly random global-memory access pattern of queue
maintenance dominate.

This module reproduces that architecture over the simulated device so the
trade-off can be measured (`bench_sec45_gpu_only_design`).  Functional
output is identical to the hybrid pipeline; only the simulated time
breakdown differs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.gpu.device import Device
from repro.gpu.kernels import subset_match_kernel

__all__ = ["DevicePartition", "DynamicParallelismMatcher", "GpuOnlyTimings"]


@dataclass
class DevicePartition:
    """One partition resident in device memory.

    ``sets`` must be lexicographically sorted; ``ids`` are the global set
    ids parallel to ``sets``; ``mask`` is the partition's defining bit
    mask (all sets contain it).
    """

    mask: np.ndarray
    sets: np.ndarray
    ids: np.ndarray


@dataclass
class GpuOnlyTimings:
    """Simulated time breakdown of one GPU-only batch."""

    preprocess_kernel_s: float
    atomic_append_s: float
    random_access_s: float
    child_kernels_s: float
    result_transfer_s: float

    @property
    def total_s(self) -> float:
        return (
            self.preprocess_kernel_s
            + self.atomic_append_s
            + self.random_access_s
            + self.child_kernels_s
            + self.result_transfer_s
        )


class DynamicParallelismMatcher:
    """GPU-only matcher: pre-process and subset match both on the device."""

    def __init__(
        self,
        device: Device,
        partitions: list[DevicePartition],
        thread_block_size: int = 1024,
    ) -> None:
        if not partitions:
            raise ValidationError("need at least one partition")
        self.device = device
        self.partitions = partitions
        self.thread_block_size = thread_block_size
        self._masks = np.stack([p.mask for p in partitions])

    def match_batch(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, GpuOnlyTimings]:
        """Match a query batch entirely on the device.

        Returns ``(query_ids, set_ids, timings)``.  Query ids are batch
        positions (int64 here: the GPU-only design keeps results in global
        memory, so the 8-bit packing constraint does not apply).
        """
        if queries.ndim != 2:
            raise ValidationError("queries must be a 2-D block array")
        cost = self.device.cost_model
        clock = self.device.clock
        batch = queries.shape[0]
        num_partitions = len(self.partitions)

        # Parent kernel: one thread per (query, partition-mask) check.
        relevant = ~np.any(
            self._masks[:, None, :] & ~queries[None, :, :], axis=2
        )  # (partitions, batch)
        preprocess_s = cost.kernel_time(
            threads=batch, checks_per_thread=num_partitions
        )
        clock.add_kernel(preprocess_s)

        # Every relevant (partition, query) pair is one atomic slot
        # reservation plus an uncoalesced copy of the query's block words
        # into that partition's queue in global memory.
        copies = int(relevant.sum())
        words_per_query = queries.shape[1]
        atomic_s = copies * cost.atomic_op_s
        random_s = copies * words_per_query * cost.random_access_s
        clock.add_atomic(atomic_s)
        clock.add_random_access(random_s)

        # Child kernels: one launch per partition with a non-empty queue.
        out_q: list[np.ndarray] = []
        out_s: list[np.ndarray] = []
        child_s = 0.0
        for pi, partition in enumerate(self.partitions):
            q_idx = np.nonzero(relevant[pi])[0]
            if q_idx.size == 0:
                continue
            sub = queries[q_idx]
            # Child kernels inherit the 8-bit in-batch id limit per launch;
            # split the queue if it exceeds 256 entries.
            for start in range(0, q_idx.size, 256):
                chunk_idx = q_idx[start : start + 256]
                result = subset_match_kernel(
                    partition.sets,
                    partition.ids,
                    sub[start : start + 256],
                    thread_block_size=self.thread_block_size,
                    prefilter=True,
                    cost_model=cost,
                    clock=clock,
                )
                child_s += result.stats.simulated_time_s
                if result.query_ids.size:
                    out_q.append(chunk_idx[result.query_ids.astype(np.int64)])
                    out_s.append(result.set_ids)

        if out_q:
            query_ids = np.concatenate(out_q)
            set_ids = np.concatenate(out_s)
        else:
            query_ids = np.empty(0, dtype=np.int64)
            set_ids = np.empty(0, dtype=np.uint32)

        transfer_s = cost.transfer_time(query_ids.size * 12)
        clock.add_transfer(transfer_s)
        timings = GpuOnlyTimings(
            preprocess_kernel_s=preprocess_s,
            atomic_append_s=atomic_s,
            random_access_s=random_s,
            child_kernels_s=child_s,
            result_transfer_s=transfer_s,
        )
        return query_ids, set_ids, timings
