"""The simulated GPU device.

A :class:`Device` bundles the pieces a CUDA device exposes to TagMatch:
device memory (with capacity accounting), host<->device copies (charged
to the PCIe cost model), and a fixed pool of streams (the paper's
platform allows 10 per GPU, §4.3.3).  Kernels themselves live in
:mod:`repro.gpu.kernels`; they take device buffers and charge their
simulated execution time to the device clock.
"""

from __future__ import annotations

import contextlib
import queue
import threading
from time import perf_counter
from typing import Iterator

import numpy as np

from repro.errors import DeviceError, StreamError
from repro.gpu.memory import (
    DeviceBuffer,
    MemoryLedger,
    TransferDirection,
    TransferStats,
)
from repro.gpu.stream import Stream
from repro.gpu.timing import CostModel, DeviceClock
from repro.obs import trace

__all__ = ["Device", "DEFAULT_DEVICE_MEMORY", "DEFAULT_STREAMS_PER_DEVICE"]

#: 12 GB of GDDR5, as on the paper's TITAN X cards.
DEFAULT_DEVICE_MEMORY = 12 * 1024**3

#: The paper's platform supports at most 10 streams per GPU (§4.3.3).
DEFAULT_STREAMS_PER_DEVICE = 10


class Device:
    """One simulated GPU: memory ledger, clock, transfer stats, streams."""

    def __init__(
        self,
        device_id: int = 0,
        memory_capacity: int = DEFAULT_DEVICE_MEMORY,
        cost_model: CostModel | None = None,
        num_streams: int = DEFAULT_STREAMS_PER_DEVICE,
    ) -> None:
        if num_streams <= 0:
            raise DeviceError(f"num_streams must be positive, got {num_streams}")
        self.device_id = device_id
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.ledger = MemoryLedger(memory_capacity)
        self.clock = DeviceClock()
        self.transfers = TransferStats()
        self.streams: list[Stream] = [Stream(self, i) for i in range(num_streams)]
        self._available: queue.Queue[Stream] = queue.Queue()
        for stream in self.streams:
            self._available.put(stream)
        self._closed = False
        self._lock = threading.Lock()
        #: Execution backend the streams dispatch kernel work to (set by
        #: the engine at consolidation; ``None`` means inline execution).
        self.backend = None

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def allocate(self, shape: tuple[int, ...], dtype, label: str = "") -> DeviceBuffer:
        """Allocate an uninitialized device array."""
        self._check_open()
        data = np.empty(shape, dtype=dtype)
        self.ledger.allocate(data.nbytes)
        return DeviceBuffer(self, data, label=label)

    def htod(self, host_array: np.ndarray, label: str = "") -> DeviceBuffer:
        """Copy a host array to a fresh device buffer (charged to the bus)."""
        self._check_open()
        data = np.array(host_array, copy=True)
        self.ledger.allocate(data.nbytes)
        self._charge_transfer(TransferDirection.HOST_TO_DEVICE, data.nbytes)
        return DeviceBuffer(self, data, label=label)

    def dtoh(self, buffer: DeviceBuffer, nbytes: int | None = None) -> np.ndarray:
        """Copy a device buffer back to the host (charged to the bus).

        ``nbytes`` lets callers account for a *partial* copy — the double
        buffering protocol of §3.3.2 transfers exactly the result size
        learned in the previous cycle, not the whole buffer.
        """
        self._check_open()
        if buffer.device is not self:
            raise DeviceError("dtoh of a buffer owned by another device")
        payload = np.array(buffer.array(), copy=True)
        self._charge_transfer(
            TransferDirection.DEVICE_TO_HOST,
            payload.nbytes if nbytes is None else nbytes,
        )
        return payload

    def charge_dtoh(self, nbytes: int) -> None:
        """Account a device→host result copy without a named buffer.

        Used by matchers that return kernel output directly instead of
        going through the double-buffer protocol.
        """
        self._check_open()
        self._charge_transfer(TransferDirection.DEVICE_TO_HOST, nbytes)

    def _charge_transfer(self, direction: TransferDirection, nbytes: int) -> None:
        self.transfers.record(direction, nbytes)
        seconds = self.cost_model.transfer_time(nbytes)
        self.clock.add_transfer(seconds)
        if trace.is_enabled():
            # The span duration is the *simulated* PCIe time — the
            # quantity the paper's stage breakdown attributes to
            # transfers; the host-side memcpy wall time is not the
            # modelled cost (DESIGN.md §1).
            trace.record(
                "transfer",
                perf_counter(),
                seconds,
                {
                    "direction": direction.value,
                    "nbytes": int(nbytes),
                    "device": self.device_id,
                    "simulated": True,
                },
            )

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def acquire_stream(self, timeout: float | None = None) -> Stream:
        """Take an available stream from the pool (blocks if all busy).

        Mirrors §3.3.2: *"each CPU thread that needs to invoke a kernel on
        a batch of queries acquires an available stream."*
        """
        self._check_open()
        try:
            return self._available.get(timeout=timeout)
        except queue.Empty:
            raise StreamError(
                f"no stream available on device {self.device_id} within timeout"
            ) from None

    def release_stream(self, stream: Stream) -> None:
        """Return a stream to the pool."""
        if stream.device is not self:
            raise StreamError("releasing a stream owned by another device")
        self._available.put(stream)

    @contextlib.contextmanager
    def stream(self, timeout: float | None = None) -> Iterator[Stream]:
        """Context-managed acquire/release of a pooled stream."""
        acquired = self.acquire_stream(timeout=timeout)
        try:
            yield acquired
        finally:
            self.release_stream(acquired)

    def synchronize(self) -> None:
        """Wait for all streams to drain (device-wide barrier)."""
        for stream in self.streams:
            if not stream.closed:
                stream.synchronize()

    # ------------------------------------------------------------------
    # Execution backend
    # ------------------------------------------------------------------
    def attach_backend(self, backend) -> None:
        """Route this device's kernel work through an execution backend.

        Stream ops submitted by the pipeline call ``backend.run_kernel``
        instead of executing the kernel inline (§3.3.2's "CPU thread
        acquires a stream, submits the sequence, moves on" — with the
        compute itself now free to land on another core).
        """
        self.backend = backend

    def detach_backend(self) -> None:
        self.backend = None

    def stream_busy_s(self) -> float:
        """Total wall time streams spent executing ops (utilisation)."""
        return sum(stream.busy_s for stream in self.streams)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain and stop all stream workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.backend = None
        for stream in self.streams:
            stream.close()

    def _check_open(self) -> None:
        if self._closed:
            raise DeviceError(f"device {self.device_id} is closed")

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Device":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Device(id={self.device_id}, "
            f"mem={self.ledger.allocated_bytes}/{self.ledger.capacity_bytes}, "
            f"streams={len(self.streams)})"
        )
