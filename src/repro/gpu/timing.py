"""Cost model and simulated clock for the software GPU device.

The reproduction replaces the paper's NVIDIA TITAN X cards with a software
device (see DESIGN.md §1).  Real wall-clock time of the NumPy-vectorized
kernels drives the throughput benchmarks, but several of the paper's
arguments are about *device-side* costs that a host-side simulation cannot
observe directly:

* kernel launch overhead and PCIe round trips (§3.3.2 motivates streams
  and double buffering with them),
* bus bandwidth (§3.3.1 motivates the packed result layout with it),
* atomic operations and random global-memory access (§4.5 explains why
  the GPU-only design loses with them).

:class:`CostModel` prices those events with constants in the right order
of magnitude for a 2016 commodity GPU, and :class:`DeviceClock`
accumulates the simulated time per category so benchmarks can report the
same trade-offs the paper discusses.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["CostModel", "DeviceClock"]


@dataclass(frozen=True)
class CostModel:
    """Prices for simulated device events (all in seconds or bytes/s).

    Defaults approximate a TITAN X (Maxwell) on PCIe 3.0 x16: ~12 GB/s
    effective bus bandwidth, ~5 µs kernel launch, ~10 µs bus latency per
    transfer, ~3000 parallel hardware lanes (24 SMs × 128 cores).
    """

    kernel_launch_overhead_s: float = 5e-6
    pcie_latency_s: float = 10e-6
    pcie_bandwidth_bytes_per_s: float = 12e9
    parallel_lanes: int = 3072
    #: Cost of one 192-bit subset check in one hardware lane.
    subset_check_s: float = 2e-9
    #: Cost of one atomic read-modify-write on global memory.
    atomic_op_s: float = 1.5e-8
    #: Cost of one uncoalesced (random) global-memory word access.
    random_access_s: float = 1e-8

    def transfer_time(self, nbytes: int) -> float:
        """Simulated time for one host<->device copy of ``nbytes``."""
        return self.pcie_latency_s + nbytes / self.pcie_bandwidth_bytes_per_s

    def kernel_time(self, threads: int, checks_per_thread: float) -> float:
        """Simulated execution time of an SPMD kernel.

        ``threads`` are folded onto :attr:`parallel_lanes` hardware lanes;
        each thread performs ``checks_per_thread`` subset checks.
        """
        waves = max(1, -(-threads // self.parallel_lanes))  # ceil division
        return (
            self.kernel_launch_overhead_s
            + waves * checks_per_thread * self.subset_check_s
        )


@dataclass
class DeviceClock:
    """Thread-safe accumulator of simulated device time per category."""

    kernel_s: float = 0.0
    transfer_s: float = 0.0
    atomic_s: float = 0.0
    random_access_s: float = 0.0
    #: Kernel launches charged so far.  A fused multi-partition launch
    #: counts once — comparing this against the number of *partition*
    #: batches dispatched is exactly the launch amortisation the fused
    #: path buys (§3.3.2 motivates streams with launch overhead).
    launches: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def add_kernel(self, seconds: float) -> None:
        with self._lock:
            self.kernel_s += seconds
            self.launches += 1

    def add_transfer(self, seconds: float) -> None:
        with self._lock:
            self.transfer_s += seconds

    def add_atomic(self, seconds: float) -> None:
        with self._lock:
            self.atomic_s += seconds

    def add_random_access(self, seconds: float) -> None:
        with self._lock:
            self.random_access_s += seconds

    @property
    def total_s(self) -> float:
        with self._lock:
            return self.kernel_s + self.transfer_s + self.atomic_s + self.random_access_s

    def reset(self) -> None:
        with self._lock:
            self.kernel_s = 0.0
            self.transfer_s = 0.0
            self.atomic_s = 0.0
            self.random_access_s = 0.0
            self.launches = 0

    def snapshot(self) -> dict[str, float | int]:
        """A consistent copy of all counters (for reports).

        ``launches`` is an event count, not a duration — it stays an
        ``int`` end-to-end so JSON consumers (the bench schema check,
        the stats verb) can tell counters from seconds.
        """
        with self._lock:
            return {
                "kernel_s": self.kernel_s,
                "transfer_s": self.transfer_s,
                "atomic_s": self.atomic_s,
                "random_access_s": self.random_access_s,
                "launches": self.launches,
            }
