"""Even/odd double-buffered result transfers (§3.3.2).

When a CPU thread enqueues ``copy-in → kernel → copy-out`` on a stream it
knows the input size, but not the output size, so a naive copy-out either
transfers the whole worst-case buffer or pays an extra round trip to read
the result length first.  The paper avoids both by giving every stream
*two* result buffers, each laid out as ``[next-length | results]``:

* the kernel of cycle ``c`` writes its matches into buffer ``c % 2`` and
  stores their *count* into the length slot of the other buffer
  (``(c-1) % 2``);
* the copy-out of cycle ``c`` transfers buffer ``c % 2`` — results of
  cycle ``c`` plus the length of cycle ``c+1`` — and its exact size is
  already known on the host because the length of cycle ``c`` arrived
  with the previous copy-out.

The consequence (modelled faithfully here) is that every transfer has a
minimal, known-at-issue-time size and results are delivered one cycle
late; a ``flush`` delivers the trailing cycle when the stream goes idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import DeviceError
from repro.gpu.device import Device
from repro.gpu.memory import DeviceBuffer
from repro.gpu.packing import packed_size

__all__ = ["CycleResult", "DoubleBufferedResults", "LENGTH_SLOT_BYTES"]

#: The length header is a single 32-bit pair count.
LENGTH_SLOT_BYTES = 4


@dataclass
class CycleResult:
    """One delivered cycle: the packed payload plus caller metadata."""

    packed: np.ndarray
    num_pairs: int
    meta: Any


class DoubleBufferedResults:
    """Per-stream even/odd result buffers implementing the §3.3.2 protocol."""

    def __init__(
        self, device: Device, capacity_pairs: int = 4096, label: str = ""
    ) -> None:
        if capacity_pairs <= 0:
            raise DeviceError("capacity_pairs must be positive")
        self.device = device
        self.label = label
        self.capacity_pairs = capacity_pairs
        self._buffers: list[DeviceBuffer] = [
            self._allocate(capacity_pairs, i) for i in range(2)
        ]
        self._cycle = 0
        #: Metadata and pair count of the cycle whose copy-out is deferred.
        self._pending: tuple[int, Any] | None = None

    def _allocate(self, capacity_pairs: int, index: int) -> DeviceBuffer:
        nbytes = LENGTH_SLOT_BYTES + packed_size(capacity_pairs)
        return self.device.allocate(
            (nbytes,), np.uint8, label=f"{self.label}/results-{'even' if index == 0 else 'odd'}"
        )

    def _ensure_capacity(self, num_pairs: int) -> None:
        if num_pairs <= self.capacity_pairs:
            return
        new_capacity = max(num_pairs, 2 * self.capacity_pairs)
        for i, old in enumerate(self._buffers):
            fresh = self._allocate(new_capacity, i)
            fresh.array()[: old.nbytes] = old.array()
            old.free()
            self._buffers[i] = fresh
        self.capacity_pairs = new_capacity

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def push(self, packed: np.ndarray, num_pairs: int, meta: Any) -> CycleResult | None:
        """Complete one kernel cycle; return the previous cycle if any.

        ``packed`` is the kernel's packed output (device side).  The call
        models the kernel writing ``packed`` into the current buffer and
        ``num_pairs`` into the *other* buffer's length slot, then issues
        the copy-out of the previous cycle (whose size is now known).
        """
        self._ensure_capacity(num_pairs)
        current = self._buffers[self._cycle % 2]
        other = self._buffers[(self._cycle + 1) % 2]
        payload_bytes = packed_size(num_pairs)
        if len(packed) != payload_bytes:
            raise DeviceError(
                f"packed payload of {len(packed)} bytes does not match "
                f"{num_pairs} pairs ({payload_bytes} bytes)"
            )
        current.array()[LENGTH_SLOT_BYTES : LENGTH_SLOT_BYTES + payload_bytes] = packed
        other.array()[:LENGTH_SLOT_BYTES] = (
            np.array([num_pairs], dtype="<u4").view(np.uint8)
        )

        delivered: CycleResult | None = None
        if self._pending is not None:
            delivered = self._copy_out_pending()
        self._pending = (num_pairs, meta)
        self._cycle += 1
        return delivered

    def flush(self) -> CycleResult | None:
        """Deliver the deferred trailing cycle (stream idle / shutdown)."""
        if self._pending is None:
            return None
        return self._copy_out_pending()

    def _copy_out_pending(self) -> CycleResult:
        assert self._pending is not None
        num_pairs, meta = self._pending
        self._pending = None
        # The pending cycle is the one *before* the current counter; its
        # results live in the buffer of that cycle's parity.
        buffer = self._buffers[(self._cycle - 1) % 2]
        nbytes = LENGTH_SLOT_BYTES + packed_size(num_pairs)
        host = self.device.dtoh(buffer, nbytes=nbytes)
        packed = host[LENGTH_SLOT_BYTES:nbytes]
        return CycleResult(packed=packed, num_pairs=num_pairs, meta=meta)

    @property
    def pending_cycles(self) -> int:
        """Number of cycles pushed but not yet delivered (0 or 1)."""
        return 0 if self._pending is None else 1

    def free(self) -> None:
        """Release both device buffers."""
        for buffer in self._buffers:
            if not buffer.freed:
                buffer.free()
