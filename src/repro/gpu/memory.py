"""Device memory: buffers, allocation accounting, host<->device copies.

The simulated device stores data in ordinary NumPy arrays, but every
allocation is charged against the device's memory capacity (the paper's
cards have 12 GB each and §4.3.6 / Figure 9 report GPU memory usage), and
every copy is charged to the device clock using the PCIe cost model.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import CapacityError, DeviceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.device import Device

__all__ = ["DeviceBuffer", "MemoryLedger", "TransferDirection", "TransferStats"]


class TransferDirection(enum.Enum):
    """Direction of a host<->device copy."""

    HOST_TO_DEVICE = "htod"
    DEVICE_TO_HOST = "dtoh"


@dataclass
class TransferStats:
    """Aggregate bytes and operation counts moved over the simulated bus."""

    htod_bytes: int = 0
    dtoh_bytes: int = 0
    htod_ops: int = 0
    dtoh_ops: int = 0

    def record(self, direction: TransferDirection, nbytes: int) -> None:
        if direction is TransferDirection.HOST_TO_DEVICE:
            self.htod_bytes += nbytes
            self.htod_ops += 1
        else:
            self.dtoh_bytes += nbytes
            self.dtoh_ops += 1

    @property
    def total_bytes(self) -> int:
        return self.htod_bytes + self.dtoh_bytes


class MemoryLedger:
    """Thread-safe allocation accounting against a fixed capacity."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise DeviceError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._allocated = 0
        self._peak = 0
        self._lock = threading.Lock()

    def allocate(self, nbytes: int) -> None:
        if nbytes < 0:
            raise DeviceError(f"cannot allocate {nbytes} bytes")
        with self._lock:
            if self._allocated + nbytes > self.capacity_bytes:
                raise CapacityError(
                    f"allocation of {nbytes} bytes exceeds device capacity "
                    f"({self._allocated}/{self.capacity_bytes} in use)"
                )
            self._allocated += nbytes
            self._peak = max(self._peak, self._allocated)

    def free(self, nbytes: int) -> None:
        with self._lock:
            if nbytes > self._allocated:
                raise DeviceError("freeing more memory than allocated")
            self._allocated -= nbytes

    @property
    def allocated_bytes(self) -> int:
        with self._lock:
            return self._allocated

    @property
    def peak_bytes(self) -> int:
        with self._lock:
            return self._peak


@dataclass
class DeviceBuffer:
    """A block of simulated device memory holding a NumPy array.

    Buffers must be explicitly freed (or the owning device reset); the
    ledger is how the memory-usage experiments of Figure 9 see the tagset
    table and communication buffers.
    """

    device: "Device"
    data: np.ndarray
    label: str = ""
    _freed: bool = field(default=False, repr=False)

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def freed(self) -> bool:
        return self._freed

    def array(self) -> np.ndarray:
        """Access the device-resident array (kernels only)."""
        if self._freed:
            raise DeviceError(f"use-after-free of device buffer {self.label!r}")
        return self.data

    def free(self) -> None:
        """Release the buffer's bytes back to the device ledger."""
        if self._freed:
            raise DeviceError(f"double free of device buffer {self.label!r}")
        self._freed = True
        self.device.ledger.free(self.data.nbytes)
