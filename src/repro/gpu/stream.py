"""CUDA-style streams: FIFO queues of asynchronous device operations.

§3.3.2 of the paper: *"A stream is an abstraction of a queue of GPU
operations.  Operations within the same stream execute sequentially in
FIFO order, while operations in different streams are executed in
parallel as much as possible."*

Each :class:`Stream` owns one daemon worker thread that drains its
operation queue in order, which gives exactly those semantics: FIFO
within a stream, concurrency across streams.  CPU threads enqueue whole
copy/kernel/copy sequences and continue with other pipeline work — the
asynchrony that lets TagMatch overlap pre-processing with GPU matching.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable

from repro.errors import StreamError
from repro.obs import trace

__all__ = ["Stream", "StreamOp"]


class StreamOp:
    """A pending operation submitted to a stream.

    Behaves like a future: ``wait()`` blocks until the operation ran and
    returns its result, re-raising any exception from the device side.
    """

    def __init__(self, fn: Callable[[], Any], label: str) -> None:
        self._fn = fn
        self.label = label
        self._done = threading.Event()
        self._result: Any = None
        self._error: BaseException | None = None

    def run(self) -> None:
        try:
            self._result = self._fn()
        except BaseException as exc:  # noqa: BLE001 - surfaced via wait()
            self._error = exc
        finally:
            self._done.set()

    def wait(self, timeout: float | None = None) -> Any:
        if not self._done.wait(timeout):
            raise StreamError(f"timed out waiting for stream op {self.label!r}")
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def done(self) -> bool:
        return self._done.is_set()


class Stream:
    """One FIFO queue of device operations with a dedicated worker."""

    def __init__(self, device: Any, stream_id: int) -> None:
        self.device = device
        self.stream_id = stream_id
        self._queue: queue.Queue[StreamOp | None] = queue.Queue()
        self._closed = False
        self._lock = threading.Lock()
        #: Occupancy counters: ops submitted/finished and wall time spent
        #: executing them.  With an offloading backend ``busy_s`` is the
        #: time this stream's in-flight slot was held by kernel work —
        #: the host analogue of per-stream GPU utilisation.
        self.ops_enqueued = 0
        self.ops_completed = 0
        self.busy_s = 0.0
        self._arena = None
        self._worker = threading.Thread(
            target=self._drain,
            name=f"gpu{getattr(device, 'device_id', '?')}-stream{stream_id}",
            daemon=True,
        )
        self._worker.start()

    def _drain(self) -> None:
        while True:
            op = self._queue.get()
            if op is None:
                return
            start = time.perf_counter()
            op.run()
            elapsed = time.perf_counter() - start
            self.busy_s += elapsed
            self.ops_completed += 1
            if trace.is_enabled():
                # One span per stream op: the copy→kernel→copy FIFO
                # sequences of §3.3.2, i.e. per-stream occupancy.
                trace.record(
                    "stream_op",
                    start,
                    elapsed,
                    {
                        "label": op.label,
                        "stream": self.stream_id,
                        "device": getattr(self.device, "device_id", -1),
                    },
                )

    def enqueue(self, fn: Callable[[], Any], label: str = "op") -> StreamOp:
        """Submit ``fn`` for asynchronous FIFO execution on this stream."""
        with self._lock:
            if self._closed:
                raise StreamError(f"enqueue on closed stream {self.stream_id}")
            op = StreamOp(fn, label)
            self.ops_enqueued += 1
            self._queue.put(op)
            return op

    @property
    def depth(self) -> int:
        """Ops submitted but not yet finished (approximate, diagnostic)."""
        return max(0, self.ops_enqueued - self.ops_completed)

    @property
    def arena(self):
        """This stream's reusable kernel output arena.

        A stream executes its operations strictly in FIFO order, so at
        most one kernel invocation is ever writing into the arena — the
        result buffers are recycled across invocations without any
        per-launch allocation (§3.3.1's device-side output vector, kept
        resident instead of re-allocated).  Created lazily so streams
        that never run kernels pay nothing.
        """
        if self._arena is None:
            from repro.gpu.kernels import ResultArena

            self._arena = ResultArena()
        return self._arena

    def synchronize(self, timeout: float | None = None) -> None:
        """Block until every operation enqueued so far has completed."""
        marker = self.enqueue(lambda: None, label="sync-marker")
        marker.wait(timeout)

    def close(self) -> None:
        """Stop the worker after draining all pending operations."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(None)
        self._worker.join()

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stream(device={getattr(self.device, 'device_id', '?')}, id={self.stream_id})"
