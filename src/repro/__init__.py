"""TagMatch reproduction: high-throughput subset matching (EuroSys 2017).

This package re-implements, in pure Python + NumPy, the TagMatch subset
matching engine of Rogora et al. together with every substrate and
baseline its evaluation depends on: a simulated CUDA-style GPU device,
the Twitter-like workload generator, a Patricia-trie matcher, an
ICN-style matcher, GPU-only designs, and a MongoDB-like document store.

Quickstart::

    from repro import TagMatch

    engine = TagMatch()
    engine.add_set({"cats", "memes"}, key=1)
    engine.add_set({"rust", "systems"}, key=2)
    engine.consolidate()
    engine.match_unique({"cats", "memes", "monday"})   # -> {1}
"""

from repro._version import __version__
from repro.bloom import BloomSignature, SignatureArray, TagHasher
from repro.core import TagMatch, TagMatchConfig

__all__ = [
    "BloomSignature",
    "SignatureArray",
    "TagHasher",
    "TagMatch",
    "TagMatchConfig",
    "__version__",
]
