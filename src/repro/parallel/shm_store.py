"""Shared-memory partition store for the process execution backend.

The paper uploads the consolidated tagset table to device memory exactly
once, at consolidation time; every batch afterwards only moves a small
query block and a compact result buffer over the bus (§3.3).  The process
backend mirrors that contract on the host: all partition arrays are
serialised once into a single ``multiprocessing.shared_memory`` segment
and every pool worker maps zero-copy NumPy views over it, so per-batch
IPC carries only the query batch and the packed ``(q, s)`` results —
never the (potentially multi-GB) tagset table.

The segment layout is described by a picklable :class:`StoreManifest`
(segment name + per-array key/offset/shape/dtype), which is the only
thing shipped to worker processes at spawn time.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import BackendError

__all__ = ["ArraySpec", "StoreManifest", "SharedArrayStore", "attach_views"]

#: Arrays are aligned to cache-line boundaries inside the segment.
_ALIGN = 64


@dataclass(frozen=True)
class ArraySpec:
    """Location of one array inside the shared segment (picklable)."""

    key: str
    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class StoreManifest:
    """Everything a worker needs to map the store: name + array specs."""

    shm_name: str
    total_bytes: int
    specs: tuple[ArraySpec, ...]

    def keys(self) -> list[str]:
        return [spec.key for spec in self.specs]


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArrayStore:
    """Owner side: one shared segment holding many named arrays.

    The owner process creates and eventually unlinks the segment; workers
    attach read-only views through :func:`attach_views`.  Contents are
    immutable after construction — partition tables only change at
    consolidation, at which point the engine builds a fresh store.
    """

    def __init__(self, arrays: dict[str, np.ndarray]) -> None:
        specs: list[ArraySpec] = []
        offset = 0
        contiguous = {key: np.ascontiguousarray(arr) for key, arr in arrays.items()}
        for key, arr in contiguous.items():
            offset = _aligned(offset)
            specs.append(
                ArraySpec(
                    key=key,
                    # Size-0 arrays point at the segment start: any offset
                    # is valid for them and 0 never exceeds the buffer.
                    offset=offset if arr.nbytes else 0,
                    shape=tuple(arr.shape),
                    dtype=arr.dtype.str,
                )
            )
            offset += arr.nbytes
        total = max(offset, 1)
        try:
            self._shm = shared_memory.SharedMemory(create=True, size=total)
        except OSError as exc:  # pragma: no cover - host without /dev/shm
            raise BackendError(f"could not create shared memory segment: {exc}") from exc
        self.manifest = StoreManifest(
            shm_name=self._shm.name, total_bytes=total, specs=tuple(specs)
        )
        for spec, arr in zip(specs, contiguous.values()):
            if not arr.nbytes:
                continue
            view = np.ndarray(
                spec.shape, dtype=spec.dtype, buffer=self._shm.buf, offset=spec.offset
            )
            view[...] = arr
        self._closed = False

    @property
    def nbytes(self) -> int:
        return self.manifest.total_bytes

    def views(self) -> dict[str, np.ndarray]:
        """Owner-side views (used by tests to assert zero-copy sharing)."""
        if self._closed:
            raise BackendError("shared array store is closed")
        return _views_over(self._shm, self.manifest)

    def close(self) -> None:
        """Unmap and unlink the segment (owner only; idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedArrayStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _views_over(
    shm: shared_memory.SharedMemory, manifest: StoreManifest
) -> dict[str, np.ndarray]:
    return {
        spec.key: np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
        )
        for spec in manifest.specs
    }


def attach_views(
    manifest: StoreManifest,
) -> tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]:
    """Worker side: map the segment and return zero-copy array views.

    The caller keeps the returned ``SharedMemory`` object alive for as
    long as the views are used and ``close()``\\ s it on exit.  On
    CPython < 3.13 attaching registers the name with the resource
    tracker too; pool workers share the owner's tracker process (the
    tracker fd travels with spawn/forkserver start-up data) and its
    cache is a set, so the extra register is a harmless no-op — do NOT
    "fix" it by unregistering here, which would drop the owner's own
    registration and break the owner-side unlink.
    """
    try:
        shm = shared_memory.SharedMemory(name=manifest.shm_name)
    except FileNotFoundError as exc:
        raise BackendError(
            f"shared memory segment {manifest.shm_name!r} is gone "
            "(owner closed the store?)"
        ) from exc
    return shm, _views_over(shm, manifest)
