"""Pluggable execution backends for the kernel and pre-process stages.

The paper gets its throughput from running the four pipeline stages
concurrently across 24 CPU threads and 20 GPU streams (§3.3.2, Figure 5).
The reproduction's streams are host threads, so every
``subset_match_kernel`` call used to execute inline under the GIL — the
whole machine collapsed onto one core.  A backend decides *where* the
numeric work of stage 2 (and optionally stage 1) actually runs:

``inline``
    In the calling stream thread, exactly the seed behaviour.
``thread``
    On a shared ``ThreadPoolExecutor``.  NumPy releases the GIL inside
    large vector ops, so this overlaps some compute, but short kernels
    remain GIL-bound (see DESIGN.md).
``process``
    On a persistent :class:`~repro.parallel.pool.ShmProcessPool` whose
    workers hold zero-copy views of the consolidated partitions through
    shared memory — genuine multi-core execution, the closest host-side
    analogue of the paper's GPU offload.

Every backend returns the same compact :class:`KernelOutput`
(``packed bytes + pair count + simulated device time``), which feeds the
existing double-buffer path unchanged; the caller charges the simulated
time to its device clock so accounting is backend-independent.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.errors import BackendError
from repro.gpu.kernels import subset_match_kernel
from repro.gpu.packing import pack_results
from repro.gpu.timing import CostModel
from repro.parallel.pool import ShmProcessPool
from repro.parallel.shm_store import SharedArrayStore

__all__ = [
    "BACKEND_NAMES",
    "KernelParams",
    "KernelOutput",
    "ExecutionBackend",
    "InlineBackend",
    "ThreadBackend",
    "ProcessBackend",
    "create_backend",
]

BACKEND_NAMES = ("inline", "thread", "process")

#: Stream threads block at most this long on an offloaded kernel; it
#: covers a worker crash plus respawn with a wide margin.
_KERNEL_TIMEOUT_S = 120.0


@dataclass(frozen=True)
class KernelParams:
    """The kernel-shape knobs a worker needs (picklable config subset)."""

    thread_block_size: int
    prefilter: bool
    cost_model: CostModel
    coarse_prefilter: bool = True

    @classmethod
    def from_config(cls, config) -> "KernelParams":
        return cls(
            thread_block_size=config.thread_block_size,
            prefilter=config.prefilter,
            cost_model=config.cost_model,
            coarse_prefilter=config.coarse_prefilter,
        )


@dataclass
class KernelOutput:
    """One kernel invocation's result in wire format.

    ``packed`` is the §3.3.1 packed pair buffer — the same bytes a GPU
    would DMA back — so it drops straight into the double-buffer push.
    """

    packed: np.ndarray
    num_pairs: int
    simulated_time_s: float


class ExecutionBackend:
    """Where stage-2 kernels (and optionally stage-1 scans) execute."""

    name: str = "abstract"

    def run_kernel(
        self, unit_id: int, queries: np.ndarray, residency=None, arena=None
    ) -> KernelOutput:
        """Match one query batch against one dispatch unit (blocking).

        ``arena``, when given and the kernel runs in-process, is the
        caller's reusable :class:`~repro.gpu.kernels.ResultArena`
        (process workers keep their own resident arena instead).
        """
        raise NotImplementedError

    def relevant_matrix(self, queries: np.ndarray) -> np.ndarray | None:
        """Offloaded stage-1 pre-process, or ``None`` if not supported
        (the pipeline then scans the partition table in-thread)."""
        return None

    @property
    def workers(self) -> int:
        """Concurrent compute lanes this backend provides."""
        return 1

    def close(self) -> None:
        """Release pools/segments; the backend is unusable afterwards."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _LocalKernel:
    """Shared in-process kernel invocation for inline/thread backends."""

    def __init__(self, tagset_table, params: KernelParams) -> None:
        self._table = tagset_table
        self._params = params

    def _compute(
        self, unit_id: int, queries: np.ndarray, residency, arena=None
    ) -> KernelOutput:
        if residency is None:
            residency = self._table.unit_residency(unit_id)
        result = subset_match_kernel(
            residency.sets.array(),
            residency.ids.array(),
            queries,
            thread_block_size=self._params.thread_block_size,
            prefilter=self._params.prefilter,
            cost_model=self._params.cost_model,
            clock=None,
            prefixes=residency.prefixes.array(),
            block_offsets=residency.block_offsets.array(),
            member_commons=residency.commons.array(),
            member_of_block=residency.member_of_block.array(),
            coarse=self._params.coarse_prefilter,
            arena=arena,
        )
        # With a caller arena the packed bytes live in its resident
        # buffer; the double-buffer push copies them out before the
        # stream runs another kernel, so the view never goes stale.
        packed = (
            arena.pack()
            if arena is not None
            else pack_results(result.query_ids, result.set_ids)
        )
        return KernelOutput(
            packed=packed,
            num_pairs=result.stats.num_pairs,
            simulated_time_s=result.stats.simulated_time_s,
        )


class InlineBackend(_LocalKernel, ExecutionBackend):
    """Execute kernels synchronously in the calling stream thread."""

    name = "inline"

    def run_kernel(self, unit_id, queries, residency=None, arena=None) -> KernelOutput:
        return self._compute(unit_id, queries, residency, arena)


class ThreadBackend(_LocalKernel, ExecutionBackend):
    """Execute kernels on a shared thread pool (GIL caveat applies)."""

    name = "thread"

    def __init__(self, tagset_table, params: KernelParams, workers: int) -> None:
        super().__init__(tagset_table, params)
        if workers <= 0:
            raise BackendError("thread backend needs at least one worker")
        self._workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="backend"
        )

    @property
    def workers(self) -> int:
        return self._workers

    def run_kernel(self, unit_id, queries, residency=None, arena=None) -> KernelOutput:
        # The stream op blocks on the future, so the caller's arena is
        # written by exactly one pool thread at a time.
        future = self._executor.submit(self._compute, unit_id, queries, residency, arena)
        return future.result(timeout=_KERNEL_TIMEOUT_S)

    def close(self) -> None:
        self._executor.shutdown(wait=True)


class ProcessBackend(ExecutionBackend):
    """Execute kernels on a shared-memory process pool.

    Partitions are serialised exactly once into shared memory at
    construction (consolidation) time, mirroring the paper's one-time
    host→device upload; per batch only the query block travels to a
    worker and only the packed result buffer travels back.
    """

    name = "process"

    def __init__(
        self,
        tagset_table,
        params: KernelParams,
        workers: int,
        partition_table=None,
        preprocess: bool = False,
        start_method: str | None = None,
    ) -> None:
        arrays: dict[str, np.ndarray] = {}
        for uid, (sets, ids, prefixes, offsets, commons, members) in enumerate(
            tagset_table.host_unit_arrays()
        ):
            arrays[f"u{uid}/sets"] = sets
            arrays[f"u{uid}/ids"] = ids
            arrays[f"u{uid}/prefixes"] = prefixes
            arrays[f"u{uid}/offsets"] = offsets
            arrays[f"u{uid}/commons"] = commons
            arrays[f"u{uid}/members"] = members
        self._preprocess = bool(preprocess and partition_table is not None)
        if self._preprocess:
            arrays["pt/masks"] = partition_table.dense_masks
        self.store = SharedArrayStore(arrays)
        try:
            self.pool = ShmProcessPool(
                workers, self.store.manifest, params, start_method=start_method
            )
        except BaseException:
            self.store.close()
            raise

    @property
    def workers(self) -> int:
        return self.pool.num_workers

    def run_kernel(self, unit_id, queries, residency=None, arena=None) -> KernelOutput:
        # ``arena`` is ignored: workers keep their own process-resident
        # arena, and the packed bytes cross the pipe as a copy anyway.
        task = self.pool.submit("kernel", (unit_id, np.ascontiguousarray(queries)))
        packed_bytes, num_pairs, simulated = task.wait(timeout=_KERNEL_TIMEOUT_S)
        return KernelOutput(
            packed=np.frombuffer(packed_bytes, dtype=np.uint8),
            num_pairs=num_pairs,
            simulated_time_s=simulated,
        )

    def relevant_matrix(self, queries: np.ndarray) -> np.ndarray | None:
        if not self._preprocess:
            return None
        task = self.pool.submit("preprocess", np.ascontiguousarray(queries))
        bits, shape = task.wait(timeout=_KERNEL_TIMEOUT_S)
        flat = np.unpackbits(np.frombuffer(bits, dtype=np.uint8), count=shape[0] * shape[1])
        return flat.reshape(shape).astype(bool)

    def close(self) -> None:
        self.pool.close()
        self.store.close()


def create_backend(config, tagset_table, partition_table=None) -> ExecutionBackend:
    """Build the backend selected by ``config.backend``.

    Degrades gracefully: a ``process`` request on a single-core host
    (unless the worker count was pinned explicitly via
    ``config.backend_workers``) or a pool that fails to spawn falls back
    to the ``thread`` backend with a warning rather than failing the
    consolidation.
    """
    params = KernelParams.from_config(config)
    choice = config.backend
    if choice == "inline":
        return InlineBackend(tagset_table, params)

    workers = config.backend_workers or max(1, (os.cpu_count() or 1) - 1)
    if choice == "thread":
        return ThreadBackend(tagset_table, params, workers)

    if choice == "process":
        cores = os.cpu_count() or 1
        if cores <= 1 and config.backend_workers is None:
            warnings.warn(
                "process backend requested on a single-core host; "
                "falling back to the thread backend "
                "(set backend_workers explicitly to force a pool)",
                RuntimeWarning,
                stacklevel=2,
            )
            return ThreadBackend(tagset_table, params, workers)
        try:
            return ProcessBackend(
                tagset_table,
                params,
                workers,
                partition_table=partition_table,
                preprocess=config.process_preprocess,
            )
        except Exception as exc:
            warnings.warn(
                f"process pool failed to spawn ({exc}); "
                "falling back to the thread backend",
                RuntimeWarning,
                stacklevel=2,
            )
            return ThreadBackend(tagset_table, params, workers)

    raise BackendError(f"unknown backend {choice!r}; expected one of {BACKEND_NAMES}")
