"""Persistent shared-memory process pool for the matching stages.

The pool plays the role the GPU plays in the paper: a fixed set of
long-lived compute workers that received the tagset table once (here:
mapped the :mod:`repro.parallel.shm_store` segment at spawn time) and
afterwards only exchange small query batches and compact packed results
with the host threads (§3.3).  Stream workers block on a
:class:`PoolTask` exactly like a CPU thread blocks on a CUDA stream.

Transport is one duplex pipe per worker rather than a shared
``multiprocessing.Queue``: a shared queue guards its fd with
cross-process locks, and a worker SIGKILLed mid-``get`` takes the lock
down with it, wedging every other worker.  Per-worker pipes confine a
crash to the crashed worker, and because the parent knows exactly which
tasks it sent down which pipe, a respawn resubmits precisely the dead
worker's unfinished tasks.  Workers are pure functions of (shared
store, task payload), so re-execution is always safe; the rare result
that raced its worker's death into the pipe is de-duplicated by task id.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import signal
import threading
import time
from multiprocessing import connection
from typing import Any

import numpy as np

from repro.errors import BackendError
from repro.obs import trace as obs_trace
from repro.parallel.shm_store import StoreManifest, attach_views

__all__ = ["PoolTask", "ShmProcessPool", "default_start_method"]

#: Tag used by workers to announce a successful start-up.
_READY = "__ready__"

#: How often the monitor thread polls worker liveness.
_HEALTH_INTERVAL_S = 0.05

#: How long to wait for freshly spawned workers to map the store.
_SPAWN_TIMEOUT_S = 60.0


def default_start_method() -> str:
    """Pick the safest available start method for pool workers.

    ``fork`` is out: the engine runs stream threads at consolidation
    time and forking a multi-threaded process is unsound.  Both
    ``forkserver`` and ``spawn`` re-import ``__main__``, so scripts (not
    libraries) must use the standard ``if __name__ == "__main__"``
    guard; ``forkserver`` is preferred where available because children
    fork from a clean single-threaded server.
    """
    methods = mp.get_all_start_methods()
    return "forkserver" if "forkserver" in methods else "spawn"


#: Per-worker-process resident output arena: a worker executes tasks
#: strictly sequentially, so one arena serves every kernel it runs
#: (the packed bytes leave the process as a copy via ``tobytes``).
_WORKER_ARENA = None


def _execute_task(kind: str, payload: Any, views: dict[str, np.ndarray], params) -> Any:
    """Run one task against the shared views (worker side)."""
    from repro.bloom.ops import containment_matrix
    from repro.gpu.kernels import ResultArena, subset_match_kernel

    if kind == "kernel":
        global _WORKER_ARENA
        if _WORKER_ARENA is None:
            _WORKER_ARENA = ResultArena()
        unit_id, queries = payload
        result = subset_match_kernel(
            views[f"u{unit_id}/sets"],
            views[f"u{unit_id}/ids"],
            queries,
            thread_block_size=params.thread_block_size,
            prefilter=params.prefilter,
            cost_model=params.cost_model,
            clock=None,
            prefixes=views[f"u{unit_id}/prefixes"],
            block_offsets=views[f"u{unit_id}/offsets"],
            member_commons=views[f"u{unit_id}/commons"],
            member_of_block=views[f"u{unit_id}/members"],
            coarse=getattr(params, "coarse_prefilter", True),
            arena=_WORKER_ARENA,
        )
        packed = _WORKER_ARENA.pack()
        return (packed.tobytes(), result.stats.num_pairs, result.stats.simulated_time_s)
    if kind == "preprocess":
        queries = payload
        matrix = containment_matrix(views["pt/masks"], queries).T
        return (np.packbits(matrix).tobytes(), matrix.shape)
    if kind == "ping":
        return "pong"
    if kind == "sleep":  # deliberate stall, used by the crash-injection tests
        time.sleep(float(payload))
        return float(payload)
    raise BackendError(f"unknown pool task kind {kind!r}")


def _worker_main(slot: int, manifest: StoreManifest, params, conn) -> None:
    """Entry point of one pool worker process."""
    # A terminal ctrl-C signals the whole foreground process group; the
    # host coordinates shutdown over the pipe, so workers ignore SIGINT
    # instead of dying mid-task with a KeyboardInterrupt traceback.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    shm, views = attach_views(manifest)
    tracer = obs_trace.TRACER
    pid = os.getpid()
    conn.send((_READY, slot, pid))
    try:
        while True:
            task = conn.recv()
            if task is None:
                return
            # Every task carries the host's tracing flag (§ the host may
            # flip tracing at any time, workers are long-lived), so the
            # worker-local tracer always mirrors the host state.
            task_id, kind, payload, want_trace = task
            if want_trace != tracer.is_enabled():
                if want_trace:
                    tracer.enable()
                else:
                    tracer.disable()
                tracer.clear()
            try:
                out = _execute_task(kind, payload, views, params)
            except BaseException as exc:  # noqa: BLE001 - shipped to the host
                conn.send((task_id, False, f"{type(exc).__name__}: {exc}", []))
            else:
                # Tasks run strictly sequentially, so draining after one
                # task exports exactly that task's spans: the per-worker
                # buffer rides the result pipe and the host collector
                # merges it (workers cannot reach the host tracer).
                spans = (
                    [
                        (name, t0, dur, {**attrs, "worker": slot, "pid": pid})
                        for name, t0, dur, attrs in tracer.drain()
                    ]
                    if want_trace
                    else []
                )
                conn.send((task_id, True, out, spans))
    except EOFError:  # parent went away
        pass
    finally:
        shm.close()


class PoolTask:
    """Future for one submitted task; ``wait()`` mirrors ``StreamOp``."""

    def __init__(self, task_id: int, kind: str, payload: Any) -> None:
        self.task_id = task_id
        self.kind = kind
        self.payload = payload
        #: Worker slot the task was last dispatched to (respawn bookkeeping).
        self.slot: int | None = None
        self._done = threading.Event()
        self._result: Any = None
        self._error: str | None = None

    def resolve(self, ok: bool, out: Any) -> None:
        if ok:
            self._result = out
        else:
            self._error = str(out)
        self._done.set()

    def wait(self, timeout: float | None = None) -> Any:
        if not self._done.wait(timeout):
            raise BackendError(f"timed out waiting for pool task {self.kind!r}")
        if self._error is not None:
            raise BackendError(f"pool task {self.kind!r} failed: {self._error}")
        return self._result

    @property
    def done(self) -> bool:
        return self._done.is_set()


class ShmProcessPool:
    """Fixed-size pool of workers over one shared store, one pipe each.

    Workers are persistent, so the spawn cost is paid once per
    consolidation, like the paper's host→device upload.  A monitor
    thread health-checks them and respawns any that die, resubmitting
    the dead worker's in-flight tasks to the survivors.
    """

    def __init__(
        self,
        num_workers: int,
        manifest: StoreManifest,
        params,
        start_method: str | None = None,
        spawn_timeout_s: float = _SPAWN_TIMEOUT_S,
    ) -> None:
        if num_workers <= 0:
            raise BackendError("num_workers must be positive")
        self.num_workers = num_workers
        self._manifest = manifest
        self._params = params
        self._ctx = mp.get_context(start_method or default_start_method())
        self._inflight: dict[int, PoolTask] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count()
        self._closed = False
        self._stop = threading.Event()
        self.respawns = 0

        self.workers: list[mp.process.BaseProcess] = []
        self._conns: list[Any] = []  # parent-side pipe ends
        self._send_locks: list[threading.Lock] = []
        self._outstanding: list[int] = []
        try:
            for slot in range(num_workers):
                proc, conn = self._spawn(slot)
                self.workers.append(proc)
                self._conns.append(conn)
                self._send_locks.append(threading.Lock())
                self._outstanding.append(0)
            self._await_ready(num_workers, spawn_timeout_s)
        except BaseException:
            self._terminate_all()
            raise

        self._collector = threading.Thread(
            target=self._collect, name="shm-pool-collector", daemon=True
        )
        self._monitor = threading.Thread(
            target=self._watch, name="shm-pool-monitor", daemon=True
        )
        self._collector.start()
        self._monitor.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, kind: str, payload: Any = None) -> PoolTask:
        """Dispatch one task to the least-loaded live worker."""
        with self._lock:
            if self._closed:
                raise BackendError("submit on a closed pool")
            task = PoolTask(next(self._ids), kind, payload)
            self._inflight[task.task_id] = task
        self._dispatch(task)
        return task

    def _dispatch(self, task: PoolTask) -> None:
        with self._lock:
            live = [s for s in range(self.num_workers) if self.workers[s].is_alive()]
            pool = live if live else list(range(self.num_workers))
            slot = min(pool, key=lambda s: self._outstanding[s])
            task.slot = slot
            self._outstanding[slot] += 1
        try:
            with self._send_locks[slot]:
                self._conns[slot].send(
                    (task.task_id, task.kind, task.payload, obs_trace.is_enabled())
                )
        except (BrokenPipeError, OSError):
            # The worker died under us.  Leave task.slot pointing at the
            # dead slot: the monitor resubmits it right after the respawn.
            pass

    def ping(self, timeout: float = 10.0) -> None:
        """Round-trip health probe (raises if the pool is wedged)."""
        self.submit("ping").wait(timeout)

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, slot: int):
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(slot, self._manifest, self._params, child_conn),
            name=f"shm-pool-worker-{slot}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # parent keeps only its own end
        return proc, parent_conn

    def _await_ready(self, count: int, timeout_s: float) -> None:
        deadline = time.perf_counter() + timeout_s
        pending = set(range(count))
        while pending:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                raise BackendError(
                    f"{len(pending)}/{count} pool workers failed to come up "
                    f"within {timeout_s:.0f}s"
                )
            ready_conns = connection.wait(
                [self._conns[s] for s in pending], timeout=min(remaining, 0.25)
            )
            for conn in ready_conns:
                slot = self._conns.index(conn)
                try:
                    item = conn.recv()
                except (EOFError, OSError):
                    item = None
                if item and item[0] == _READY:
                    pending.discard(slot)
            # Fail fast if a worker died before announcing readiness
            # (import error, missing /dev/shm, ...) instead of sitting
            # out the whole spawn timeout.
            dead = [s for s in pending if self.workers[s].exitcode is not None]
            if dead:
                raise BackendError(
                    f"{len(dead)} pool worker(s) died during start-up "
                    f"(exitcodes {[self.workers[s].exitcode for s in dead]})"
                )

    def _watch(self) -> None:
        """Health-check loop: respawn dead workers, resubmit their work."""
        while not self._stop.wait(_HEALTH_INTERVAL_S):
            for slot in range(self.num_workers):
                proc = self.workers[slot]
                if proc.is_alive() or self._stop.is_set():
                    continue
                proc.join(timeout=0)
                old_conn = self._conns[slot]
                new_proc, new_conn = self._spawn(slot)
                with self._lock:
                    self.workers[slot] = new_proc
                    self._conns[slot] = new_conn
                    self._outstanding[slot] = 0
                    orphans = [
                        t for t in self._inflight.values() if t.slot == slot
                    ]
                self.respawns += 1
                old_conn.close()
                # Only the dead worker's tasks need to run again; anything
                # that raced a result into the old pipe before the crash
                # is simply recomputed (workers are pure) and the
                # collector drops the duplicate by task id.
                for task in orphans:
                    self._dispatch(task)

    def _collect(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                conns = list(self._conns)
            try:
                ready = connection.wait(conns, timeout=0.1)
            except OSError:  # a pipe closed mid-wait during shutdown/respawn
                continue
            for conn in ready:
                try:
                    item = conn.recv()
                except (EOFError, OSError):
                    continue  # dead worker; the monitor handles it
                if not item or item[0] == _READY:
                    continue
                task_id, ok, out, spans = item
                if spans:
                    # Merge the worker's span buffer into the host
                    # tracer: cross-process stage attribution with no
                    # shared memory and no extra pipe traffic when
                    # tracing is off.
                    obs_trace.merge(spans)
                with self._lock:
                    task = self._inflight.pop(task_id, None)
                    if task is not None and task.slot is not None:
                        self._outstanding[task.slot] = max(
                            0, self._outstanding[task.slot] - 1
                        )
                if task is not None:  # duplicates after a respawn are None
                    task.resolve(ok, out)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def kill_worker(self, slot: int) -> int:
        """SIGKILL one worker (crash-injection hook for tests).

        Returns the killed pid; the monitor thread respawns the slot.
        """
        proc = self.workers[slot]
        pid = proc.pid
        assert pid is not None
        os.kill(pid, signal.SIGKILL)
        return pid

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop monitor + collector, drain and join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        for thread_name in ("_monitor", "_collector"):
            thread = getattr(self, thread_name, None)
            if thread is not None and thread.is_alive():
                thread.join(timeout=timeout_s)
        for slot in range(len(self.workers)):
            try:
                with self._send_locks[slot]:
                    self._conns[slot].send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.perf_counter() + timeout_s
        for proc in self.workers:
            proc.join(timeout=max(0.1, deadline - time.perf_counter()))
        self._terminate_all()
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        # Fail anything still unresolved so waiters do not hang.
        with self._lock:
            orphans = list(self._inflight.values())
            self._inflight.clear()
        for task in orphans:
            task.resolve(False, "pool closed")

    def _terminate_all(self) -> None:
        for proc in self.workers:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)

    def __enter__(self) -> "ShmProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
