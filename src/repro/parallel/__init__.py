"""Execution backends: where the matching stages' compute actually runs.

See :mod:`repro.parallel.backend` for the inline/thread/process backend
model, :mod:`repro.parallel.shm_store` for the one-time shared-memory
partition upload, and :mod:`repro.parallel.pool` for the health-checked
worker pool.
"""

from repro.parallel.backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    InlineBackend,
    KernelOutput,
    KernelParams,
    ProcessBackend,
    ThreadBackend,
    create_backend,
)
from repro.parallel.pool import PoolTask, ShmProcessPool
from repro.parallel.shm_store import SharedArrayStore, StoreManifest, attach_views

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "InlineBackend",
    "ThreadBackend",
    "ProcessBackend",
    "KernelParams",
    "KernelOutput",
    "create_backend",
    "ShmProcessPool",
    "PoolTask",
    "SharedArrayStore",
    "StoreManifest",
    "attach_views",
]
