"""Open-loop load generator for the matching service.

Arrivals are Poisson (exponential inter-arrival times) at a configured
offered rate, independent of the server's progress — the open-loop
discipline that actually exposes queueing collapse, unlike closed-loop
clients that politely slow down with the server.  Each operation is a
subscribe, unsubscribe, or publish per the configured mix; operations
are pipelined round-robin over several connections so the server's
ingress batcher sees genuinely concurrent traffic.

The report carries achieved qps, publish latency percentiles, and the
overload-reject rate — the three axes of the Figure 6-style service
sweep (``benchmarks/bench_service_throughput.py``).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.harness.runner import latency_percentiles
from repro.service.protocol import OverloadedError, ProtocolError, ServiceClient

__all__ = ["LoadgenReport", "run_loadgen"]


@dataclass
class LoadgenReport:
    """Outcome of one load-generation run."""

    offered: int
    completed: int
    overloaded: int
    failed: int
    subscribes: int
    unsubscribes: int
    elapsed_s: float
    latencies_s: list[float] = field(default_factory=list)

    @property
    def qps(self) -> float:
        return self.completed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def offered_qps(self) -> float:
        return self.offered / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def overload_rate(self) -> float:
        pubs = self.completed + self.overloaded + self.failed
        return self.overloaded / pubs if pubs else 0.0

    def percentiles(self) -> dict[str, float]:
        if not self.latencies_s:
            return {"p50_ms": 0.0, "p90_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
        return latency_percentiles(np.array(self.latencies_s))


async def run_loadgen(
    host: str,
    port: int,
    *,
    duration_s: float = 5.0,
    rate_qps: float = 500.0,
    sub_ratio: float = 0.05,
    unsub_ratio: float = 0.02,
    connections: int = 4,
    seed: int = 0,
    tag_universe: int = 96,
    set_tags: int = 5,
    query_tags: int = 12,
    unique: bool = False,
    key_base: int = 1_000_000,
) -> LoadgenReport:
    """Drive one open-loop burst against a running server.

    ``sub_ratio``/``unsub_ratio`` partition the operation mix; the
    remainder are publishes.  Unsubscribes target sets this run
    subscribed earlier, so the server's delta exercises both adds and
    tombstones.  Returns once every in-flight operation resolved.
    """
    rng = np.random.default_rng(seed)
    clients = [
        await ServiceClient.connect(host, port) for _ in range(max(1, connections))
    ]
    report = LoadgenReport(
        offered=0, completed=0, overloaded=0, failed=0,
        subscribes=0, unsubscribes=0, elapsed_s=0.0,
    )
    subscribed: list[tuple[list[str], int]] = []
    pending: set[asyncio.Task] = set()
    next_key = key_base

    def random_tags(count: int) -> list[str]:
        chosen = rng.choice(tag_universe, size=min(count, tag_universe), replace=False)
        return [f"tag-{c}" for c in chosen]

    async def one_publish(client: ServiceClient, tags: list[str], t0: float) -> None:
        try:
            await client.publish(tags, unique=unique)
        except OverloadedError:
            report.overloaded += 1
        except (ProtocolError, ConnectionError, OSError):
            report.failed += 1
        else:
            report.completed += 1
            report.latencies_s.append(time.perf_counter() - t0)

    async def one_subscribe(client: ServiceClient, tags: list[str], key: int) -> None:
        try:
            await client.subscribe(tags, key)
        except (ProtocolError, ConnectionError, OSError):
            report.failed += 1
        else:
            report.subscribes += 1

    async def one_unsubscribe(client: ServiceClient, tags: list[str], key: int) -> None:
        try:
            await client.unsubscribe(tags, key)
        except (ProtocolError, ConnectionError, OSError):
            report.failed += 1
        else:
            report.unsubscribes += 1

    start = time.perf_counter()
    deadline = start + duration_s
    next_at = start
    turn = 0
    while True:
        now = time.perf_counter()
        if now >= deadline:
            break
        if now < next_at:
            await asyncio.sleep(next_at - now)
        # Open loop: the schedule advances regardless of replies.
        next_at += float(rng.exponential(1.0 / rate_qps))
        client = clients[turn % len(clients)]
        turn += 1
        roll = float(rng.random())
        if roll < sub_ratio:
            tags = random_tags(int(rng.integers(1, set_tags + 1)))
            next_key += 1
            subscribed.append((tags, next_key))
            coro = one_subscribe(client, tags, next_key)
        elif roll < sub_ratio + unsub_ratio and subscribed:
            tags, key = subscribed.pop(int(rng.integers(len(subscribed))))
            coro = one_unsubscribe(client, tags, key)
        else:
            tags = random_tags(query_tags)
            report.offered += 1
            coro = one_publish(client, tags, time.perf_counter())
        task = asyncio.get_running_loop().create_task(coro)
        pending.add(task)
        task.add_done_callback(pending.discard)

    if pending:
        await asyncio.wait(pending, timeout=60.0)
    report.elapsed_s = time.perf_counter() - start
    for client in clients:
        await client.close()
    return report
