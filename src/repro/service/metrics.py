"""Serving-layer metrics, exposed through the ``stats`` verb.

Counters are mutated from the event-loop thread only; ``snapshot()``
renders a JSON-safe dict with the quantities the benchmarks and the
acceptance criteria care about: qps, batch occupancy, latency
percentiles, delta size, reconsolidation count, and overload rejects.

Since the observability layer landed, :class:`ServiceMetrics` is a thin
façade over one :class:`repro.obs.registry.Registry`:

* publish latency is a fixed-bucket :class:`~repro.obs.registry.Histogram`
  (``repro_publish_latency_seconds``) instead of a raw-sample reservoir,
* ``qps`` is a :class:`~repro.obs.registry.SlidingRate` over a trailing
  window — the seed divided lifetime publishes by lifetime uptime, so a
  server that idled overnight reported a throughput near zero forever
  (the old number survives as ``lifetime_qps``),
* pipeline spans ingested via :meth:`ingest_spans` become per-stage
  ``repro_stage_seconds{stage=...}`` histograms — the paper's §4.3 stage
  breakdown, live,
* the plain attribute counters (``subscribes``, ``overloads``, …) are
  mirrored into registry counters by a collector at render time, so the
  Prometheus endpoint and the ``stats`` verb can never disagree.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable

from repro.obs.registry import Histogram, Registry, SlidingRate
from repro.obs.trace import STAGES, Span

__all__ = ["ServiceMetrics"]

#: Attribute counters mirrored into ``repro_<name>_total`` registry
#: counters by the render-time collector.
_COUNTER_ATTRS = (
    "publishes",
    "subscribes",
    "unsubscribes",
    "overloads",
    "errors",
    "batches",
    "batched_queries",
    "reconsolidations",
)


class ServiceMetrics:
    """Aggregate counters + fixed-bucket latency/stage histograms.

    ``latency_window`` is accepted for backward compatibility with the
    reservoir-based seed; the histogram needs no sample window.
    """

    def __init__(
        self,
        latency_window: int = 4096,
        *,
        rate_window_s: float = 30.0,
        registry: Registry | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.registry = registry if registry is not None else Registry()
        self._clock = clock
        self.started_at = clock()
        self.publishes = 0
        self.subscribes = 0
        self.unsubscribes = 0
        self.overloads = 0
        self.errors = 0
        self.batches = 0
        self.batched_queries = 0
        self.flush_reasons = {"full": 0, "timeout": 0, "shutdown": 0}
        self.reconsolidations = 0
        self._rate = SlidingRate(rate_window_s, clock=clock)
        self.latency = self.registry.histogram("repro_publish_latency_seconds")
        # Pre-create the four canonical stage histograms so the stats
        # verb and the metrics endpoint always expose the full §4.3
        # breakdown, even before the first span arrives.
        self._stage_hists: dict[str, Histogram] = {
            stage: self.registry.histogram("repro_stage_seconds", stage=stage)
            for stage in STAGES
        }
        self.registry.register_collector(self._mirror_counters)

    # ------------------------------------------------------------------
    def record_batch(self, occupancy: int, reason: str) -> None:
        self.batches += 1
        self.batched_queries += occupancy
        self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1

    def record_publish(self, latency_s: float) -> None:
        self.publishes += 1
        self._rate.record()
        self.latency.observe(latency_s)

    def ingest_spans(self, spans: Iterable[Span]) -> None:
        """Feed tracer spans into the per-stage latency histograms."""
        for span in spans:
            hist = self._stage_hists.get(span.name)
            if hist is None:
                hist = self.registry.histogram(
                    "repro_stage_seconds", stage=span.name
                )
                self._stage_hists[span.name] = hist
            hist.observe(span.duration_s)

    # ------------------------------------------------------------------
    def _mirror_counters(self) -> None:
        """Collector: sync plain attributes into the registry.

        Attributes only ever grow, so pushing the delta keeps the
        registry counters monotonic; the gauges are plain mirrors.
        """
        for attr in _COUNTER_ATTRS:
            counter = self.registry.counter(f"repro_{attr}_total")
            counter.inc(getattr(self, attr) - counter.value)
        for reason, count in self.flush_reasons.items():
            counter = self.registry.counter("repro_flushes_total", reason=reason)
            counter.inc(count - counter.value)
        self.registry.gauge("repro_publish_rate_qps").set(self._rate.rate())
        self.registry.gauge("repro_uptime_seconds").set(
            self._clock() - self.started_at
        )

    def stage_snapshot(self) -> dict[str, dict[str, Any]]:
        """Per-stage latency summary in milliseconds (stats verb v2)."""
        stages: dict[str, dict[str, Any]] = {}
        for name, hist in sorted(self._stage_hists.items()):
            snap = hist.snapshot()
            stages[name] = {
                "count": snap["count"],
                "total_s": snap["sum_s"],
                "p50_ms": snap["p50_s"] * 1e3,
                "p90_ms": snap["p90_s"] * 1e3,
                "p99_ms": snap["p99_s"] * 1e3,
                "max_ms": snap["max_s"] * 1e3,
            }
        return stages

    # ------------------------------------------------------------------
    def snapshot(
        self,
        *,
        epoch: int,
        delta_size: int,
        inflight: int,
        deadline_s: float,
        connections: int,
        memo: dict | None = None,
        device: dict | None = None,
    ) -> dict:
        elapsed = max(self._clock() - self.started_at, 1e-9)
        lat = self.latency.snapshot()
        return {
            "uptime_s": elapsed,
            #: Windowed rate — an idle window reads 0.0 and recovers
            #: immediately under load, unlike the lifetime average.
            "qps": self._rate.rate(),
            "lifetime_qps": self.publishes / elapsed,
            "publishes": self.publishes,
            "subscribes": self.subscribes,
            "unsubscribes": self.unsubscribes,
            "overloads": self.overloads,
            "errors": self.errors,
            "batches": self.batches,
            "batch_occupancy": (
                self.batched_queries / self.batches if self.batches else 0.0
            ),
            "flush_reasons": dict(self.flush_reasons),
            "batch_deadline_ms": deadline_s * 1e3,
            "latency": {
                "p50_ms": lat["p50_s"] * 1e3,
                "p90_ms": lat["p90_s"] * 1e3,
                "p99_ms": lat["p99_s"] * 1e3,
                "max_ms": lat["max_s"] * 1e3,
            },
            #: §4.3's per-stage breakdown, from ingested tracer spans.
            "stages": self.stage_snapshot(),
            #: Simulated device clocks (per device), integer launches.
            "device": device,
            "epoch": epoch,
            "delta_size": delta_size,
            "reconsolidations": self.reconsolidations,
            "inflight": inflight,
            "connections": connections,
            #: Duplicate-query memo hit/miss counters; ``None`` when the
            #: engine runs with ``query_memo_size == 0``.
            "memo": memo,
        }
