"""Serving-layer metrics, exposed through the ``stats`` verb.

Counters are mutated from the event-loop thread only; ``snapshot()``
renders a JSON-safe dict with the quantities the benchmarks and the
acceptance criteria care about: qps, batch occupancy, latency
percentiles, delta size, reconsolidation count, and overload rejects.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Aggregate counters + a bounded latency reservoir."""

    def __init__(self, latency_window: int = 4096) -> None:
        self.started_at = time.perf_counter()
        self.publishes = 0
        self.subscribes = 0
        self.unsubscribes = 0
        self.overloads = 0
        self.errors = 0
        self.batches = 0
        self.batched_queries = 0
        self.flush_reasons = {"full": 0, "timeout": 0, "shutdown": 0}
        self.reconsolidations = 0
        self.latencies_s: deque[float] = deque(maxlen=latency_window)

    # ------------------------------------------------------------------
    def record_batch(self, occupancy: int, reason: str) -> None:
        self.batches += 1
        self.batched_queries += occupancy
        self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1

    def record_publish(self, latency_s: float) -> None:
        self.publishes += 1
        self.latencies_s.append(latency_s)

    # ------------------------------------------------------------------
    def snapshot(
        self,
        *,
        epoch: int,
        delta_size: int,
        inflight: int,
        deadline_s: float,
        connections: int,
        memo: dict | None = None,
    ) -> dict:
        elapsed = max(time.perf_counter() - self.started_at, 1e-9)
        lat = np.array(self.latencies_s, dtype=np.float64) * 1e3
        percentiles = (
            {
                "p50_ms": float(np.percentile(lat, 50)),
                "p99_ms": float(np.percentile(lat, 99)),
                "max_ms": float(lat.max()),
            }
            if lat.size
            else {"p50_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
        )
        return {
            "uptime_s": elapsed,
            "qps": self.publishes / elapsed,
            "publishes": self.publishes,
            "subscribes": self.subscribes,
            "unsubscribes": self.unsubscribes,
            "overloads": self.overloads,
            "errors": self.errors,
            "batches": self.batches,
            "batch_occupancy": (
                self.batched_queries / self.batches if self.batches else 0.0
            ),
            "flush_reasons": dict(self.flush_reasons),
            "batch_deadline_ms": deadline_s * 1e3,
            "latency": percentiles,
            "epoch": epoch,
            "delta_size": delta_size,
            "reconsolidations": self.reconsolidations,
            "inflight": inflight,
            "connections": connections,
            #: Duplicate-query memo hit/miss counters; ``None`` when the
            #: engine runs with ``query_memo_size == 0``.
            "memo": memo,
        }
