"""Framed wire protocol of the matching service, plus the asyncio client.

A frame is a 4-byte big-endian unsigned length followed by a UTF-8 JSON
object.  Requests carry an ``id`` (client-chosen, echoed verbatim) and a
``verb``; responses carry the same ``id`` and ``ok``.  Replies may
arrive out of order — publishes are answered when their ingress batch
completes, while subscribes and stats answer immediately — so clients
pipeline requests and demultiplex on ``id`` (:class:`ServiceClient`
does this with one reader task and a future per request).

Verbs
-----
``sub``     ``{tags, key}`` — register a tag set (``add-set``), live.
``unsub``   ``{tags, key}`` — remove one association, live.
``pub``     ``{tags, unique?}`` — match a query; reply ``{keys, epoch}``
            or ``{ok: false, error: "overload"}`` under admission
            control.
``stats``   server metrics snapshot (see :mod:`repro.service.metrics`).
``trace``   per-stage span summary from the observability layer
            (``{limit?}`` caps the span window; see :mod:`repro.obs`).
``reconsolidate``  force a background index rebuild + epoch swap.
``ping``    liveness probe.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import struct
from typing import Any

from repro.errors import ReproError

__all__ = [
    "ProtocolError",
    "OverloadedError",
    "MAX_FRAME_BYTES",
    "VERBS",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "write_frame",
    "ServiceClient",
]

_LEN = struct.Struct("!I")

#: Default hard cap on a single frame (the server's is configurable).
MAX_FRAME_BYTES = 8 * 1024 * 1024

VERBS = ("sub", "unsub", "pub", "stats", "trace", "reconsolidate", "ping")


class ProtocolError(ReproError):
    """Malformed frame or message."""


class OverloadedError(ReproError):
    """The server refused a publish under admission control."""


def encode_frame(message: dict[str, Any]) -> bytes:
    """Serialise one message to its length-prefixed wire form."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    return _LEN.pack(len(body)) + body


def decode_frame(body: bytes) -> dict[str, Any]:
    """Parse one frame body back into a message dict."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame body must be a JSON object")
    return message


async def read_frame(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> dict[str, Any] | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    (length,) = _LEN.unpack(header)
    if length > max_bytes:
        raise ProtocolError(f"frame of {length} bytes exceeds cap {max_bytes}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_frame(body)


async def write_frame(writer: asyncio.StreamWriter, message: dict[str, Any]) -> None:
    """Write one frame and respect the transport's flow control."""
    writer.write(encode_frame(message))
    await writer.drain()


class ServiceClient:
    """Pipelining asyncio client for the matching service.

    One background task reads reply frames and resolves the future of
    the request with the matching ``id``, so any number of requests can
    be in flight at once — which is what lets the server's ingress
    batcher actually fill batches.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count()
        self._pending: dict[int, asyncio.Future] = {}
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        error: BaseException | None = None
        try:
            while True:
                message = await read_frame(self._reader)
                if message is None:
                    break
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
            error = exc
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        error or ProtocolError("connection closed")
                    )
            self._pending.clear()

    async def request(self, verb: str, **payload: Any) -> dict[str, Any]:
        """Send one request and await its reply (out-of-order safe)."""
        if self._closed:
            raise ProtocolError("client is closed")
        req_id = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        await write_frame(self._writer, {"id": req_id, "verb": verb, **payload})
        return await future

    @staticmethod
    def _checked(reply: dict[str, Any]) -> dict[str, Any]:
        if not reply.get("ok"):
            error = reply.get("error", "unknown error")
            if error == "overload":
                raise OverloadedError("server overloaded")
            raise ProtocolError(f"request failed: {error}")
        return reply

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    async def subscribe(self, tags, key: int) -> None:
        self._checked(
            await self.request("sub", tags=sorted(tags), key=int(key))
        )

    async def unsubscribe(self, tags, key: int) -> bool:
        """Remove one association; False if nothing matched (no-op)."""
        reply = self._checked(
            await self.request("unsub", tags=sorted(tags), key=int(key))
        )
        return bool(reply.get("removed", False))

    async def publish(self, tags, unique: bool = False) -> tuple[list[int], int]:
        """Match a query; returns ``(keys, serving epoch)``.

        Raises :class:`OverloadedError` when admission control rejects
        the publish.
        """
        reply = self._checked(
            await self.request("pub", tags=sorted(tags), unique=bool(unique))
        )
        return list(reply["keys"]), int(reply.get("epoch", 0))

    async def stats(self) -> dict[str, Any]:
        return self._checked(await self.request("stats"))["stats"]

    async def trace(self, limit: int | None = None) -> dict[str, Any]:
        """Per-stage span summary (the ``repro trace`` CLI's data)."""
        payload = {} if limit is None else {"limit": int(limit)}
        return self._checked(await self.request("trace", **payload))["trace"]

    async def reconsolidate(self) -> int:
        """Force an index rebuild; returns the new epoch."""
        reply = self._checked(await self.request("reconsolidate"))
        return int(reply.get("epoch", 0))

    async def ping(self) -> None:
        self._checked(await self.request("ping"))

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # peer already gone
            pass
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
