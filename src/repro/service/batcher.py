"""Ingress batching: coalesce concurrent publishes into pipeline batches.

The paper's pipeline already batches queries *per partition* with a
flush timeout (§3, Figure 6); the serving layer needs the same trick one
level up, at the network ingress, so that publishes arriving on many
connections within a few milliseconds of each other ride the pipeline as
one batch.  The accumulator is a verbatim reuse of
:class:`repro.core.batch.PartitionBatcher` — its ``states`` slots carry
reply tickets instead of :class:`QueryState` — driven by asyncio timers
instead of a flusher thread.

The flush deadline adapts inside ``[min, max]`` using the Figure 6
observation that the timeout has a sweet spot: batches that fill before
the deadline mean the deadline is not the bottleneck (drift it down for
latency); timeout flushes of mostly-empty batches mean traffic is too
light for batching to pay (shrink, waiting longer would not fill them);
timeout flushes of mostly-full batches mean a slightly longer wait would
have filled them (grow).
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.core.batch import Batch, PartitionBatcher

__all__ = ["AdaptiveDeadline", "IngressBatcher"]


class AdaptiveDeadline:
    """AIMD-style controller for the ingress flush deadline."""

    #: Occupancy fraction separating "starved" from "nearly full".
    BUSY_FRACTION = 0.5

    def __init__(self, initial_s: float, min_s: float, max_s: float) -> None:
        self.current_s = float(initial_s)
        self.min_s = float(min_s)
        self.max_s = float(max_s)

    #: Flush reasons that reflect steady-state traffic.  Anything else
    #: (``shutdown`` drains, explicit ``flush_now`` calls) says nothing
    #: about arrival rate, so adapting on it would corrupt the deadline —
    #: e.g. a near-empty shutdown drain shrinking ``current_s`` to the
    #: floor right before a snapshot/restart.
    STEADY_REASONS = frozenset({"full", "timeout"})

    def observe(self, reason: str, occupancy: int, batch_size: int) -> None:
        """Update the deadline after one steady-state flush."""
        if reason not in self.STEADY_REASONS:
            return
        if reason == "full":
            self.current_s = max(self.min_s, self.current_s * 0.95)
        elif occupancy >= self.BUSY_FRACTION * batch_size:
            self.current_s = min(self.max_s, self.current_s * 1.25)
        else:
            self.current_s = max(self.min_s, self.current_s * 0.8)


class IngressBatcher:
    """Batches publish tickets and flushes on full-or-deadline.

    ``flush_cb(batch, reason)`` is invoked on the event-loop thread with
    ``reason in ("full", "timeout", "shutdown")``; ``batch.states``
    holds whatever ticket objects were passed to :meth:`add`.
    """

    def __init__(
        self,
        flush_cb: Callable[[Batch, str], None],
        batch_size: int,
        num_words: int,
        deadline: AdaptiveDeadline,
    ) -> None:
        self._flush_cb = flush_cb
        self.batch_size = batch_size
        self.deadline = deadline
        # Partition id -1: this batch targets the whole index, not one
        # partition; the pipeline re-batches per partition downstream.
        self._batcher = PartitionBatcher(-1, batch_size, num_words)
        self._timer: asyncio.TimerHandle | None = None

    @property
    def pending(self) -> int:
        return self._batcher.pending

    def add(self, query_row, ticket: Any) -> None:
        """Enqueue one publish; flushes synchronously when full."""
        full = self._batcher.add(query_row, ticket)
        if full is not None:
            self.deadline.observe("full", len(full), self.batch_size)
            self._flush_cb(full, "full")
        self._rearm()

    def flush_now(self, reason: str = "shutdown") -> None:
        """Flush whatever is pending (shutdown/drain path)."""
        batch = self._batcher.flush()
        if batch is not None:
            self.deadline.observe(reason, len(batch), self.batch_size)
            self._flush_cb(batch, reason)
        self._rearm()

    def close(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    def _rearm(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._batcher.pending:
            self._timer = asyncio.get_running_loop().call_later(
                self.deadline.current_s, self._on_deadline
            )

    def _on_deadline(self) -> None:
        self._timer = None
        # flush_if_stale(0) re-checks pending under the batcher's lock;
        # the deadline that scheduled us is the staleness policy here.
        batch = self._batcher.flush_if_stale(0.0)
        if batch is not None:
            self.deadline.observe("timeout", len(batch), self.batch_size)
            self._flush_cb(batch, "timeout")
        self._rearm()
