"""Live-update delta store: online add/remove without re-consolidating.

The engine's own ``add_set``/``remove_set`` only take effect after a
full ``consolidate()`` — useless while serving.  The delta store absorbs
subscribes and unsubscribes immediately and answers queries as

    frozen-index result  ∪  delta-add scan  −  tombstones

where the frozen index is the last consolidated engine, delta adds are
associations subscribed since, and tombstones are unsubscribes whose
target lives in the frozen index (an unsubscribe whose target is still
in the delta simply deletes the delta add).  All arithmetic is multiset
arithmetic, matching the §2 semantics: one tombstone removes exactly one
instance of its key, and ``match-unique`` is a final ``np.unique``.

A background reconsolidation (see :mod:`repro.service.server`) captures
the delta up to a fold mark, rebuilds a fresh engine off the hot path,
and truncates the folded prefix on swap.  While a rebuild is in flight,
unsubscribes never touch the captured prefix — deleting an add that the
rebuild already copied would resurrect it at swap time — so removals of
prefix adds become tombstones instead, which stay valid against the new
engine because the prefix *is* part of the new engine.

Everything here runs on the event-loop thread; matcher threads only read
immutable :class:`DeltaView` snapshots.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.bloom.ops import containment_matrix

__all__ = ["DeltaStore", "DeltaView", "apply_delta"]


def _pair(blocks: np.ndarray, key: int) -> tuple[bytes, int]:
    """Hashable identity of one (signature, key) association."""
    return (np.ascontiguousarray(blocks, dtype=np.uint64).tobytes(), int(key))


@dataclass(frozen=True)
class DeltaView:
    """Immutable snapshot of the delta, safe to hand to matcher threads."""

    add_blocks: np.ndarray
    add_keys: np.ndarray
    tomb_blocks: np.ndarray
    tomb_keys: np.ndarray
    seq: int

    @property
    def size(self) -> int:
        return int(self.add_keys.size + self.tomb_keys.size)


class DeltaStore:
    """Mutable adds + tombstones over one frozen consolidated index."""

    def __init__(self, num_words: int) -> None:
        self.num_words = num_words
        self._add_blocks: list[np.ndarray] = []
        self._add_keys: list[int] = []
        self._tomb_blocks: list[np.ndarray] = []
        self._tomb_keys: list[int] = []
        #: Multiplicity of every (signature, key) pair in the frozen index.
        self._frozen_counts: Counter = Counter()
        #: Tombstone multiplicity (validity bookkeeping for unsubscribe).
        self._tomb_counts: Counter = Counter()
        #: Adds below this index are captured by an in-flight rebuild.
        self._fold_adds = 0
        self._fold_tombs = 0
        self._fold_active = False
        #: Total mutations absorbed (also the view-cache key).
        self.seq = 0
        self._view_cache: DeltaView | None = None

    # ------------------------------------------------------------------
    # Frozen-index bookkeeping
    # ------------------------------------------------------------------
    def rebase(self, db_blocks: np.ndarray, db_keys: np.ndarray) -> None:
        """Point the store at a (new) frozen index's association table."""
        counts: Counter = Counter()
        for row, key in zip(db_blocks, db_keys):
            counts[_pair(row, int(key))] += 1
        self._frozen_counts = counts

    # ------------------------------------------------------------------
    # Online mutations (event-loop thread)
    # ------------------------------------------------------------------
    def subscribe(self, blocks: np.ndarray, key: int) -> None:
        """Absorb one ``add-set`` immediately."""
        self._add_blocks.append(np.ascontiguousarray(blocks, dtype=np.uint64))
        self._add_keys.append(int(key))
        self.seq += 1
        self._view_cache = None

    def unsubscribe(self, blocks: np.ndarray, key: int) -> bool:
        """Absorb one ``remove-set``; False when nothing matched.

        Order of preference: delete a live (un-captured) delta add, else
        tombstone a frozen/captured association, else no-op — the same
        "remove one matching association, ignore otherwise" semantics as
        :meth:`StagingArea.apply`, applied in arrival order.
        """
        blocks = np.ascontiguousarray(blocks, dtype=np.uint64)
        pair = _pair(blocks, key)
        for i in range(len(self._add_keys) - 1, self._fold_adds - 1, -1):
            if self._add_keys[i] == int(key) and np.array_equal(
                self._add_blocks[i], blocks
            ):
                del self._add_blocks[i]
                del self._add_keys[i]
                self.seq += 1
                self._view_cache = None
                return True
        prefix_adds = sum(
            1
            for i in range(self._fold_adds)
            if self._add_keys[i] == int(key)
            and np.array_equal(self._add_blocks[i], blocks)
        )
        available = (
            self._frozen_counts.get(pair, 0)
            + prefix_adds
            - self._tomb_counts.get(pair, 0)
        )
        if available <= 0:
            return False
        self._tomb_blocks.append(blocks)
        self._tomb_keys.append(int(key))
        self._tomb_counts[pair] += 1
        self.seq += 1
        self._view_cache = None
        return True

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._add_keys) + len(self._tomb_keys)

    def view(self) -> DeltaView:
        """Snapshot the current delta as immutable arrays (memoised)."""
        if self._view_cache is not None:
            return self._view_cache
        add_blocks = (
            np.vstack(self._add_blocks)
            if self._add_blocks
            else np.empty((0, self.num_words), dtype=np.uint64)
        )
        tomb_blocks = (
            np.vstack(self._tomb_blocks)
            if self._tomb_blocks
            else np.empty((0, self.num_words), dtype=np.uint64)
        )
        self._view_cache = DeltaView(
            add_blocks=add_blocks,
            add_keys=np.array(self._add_keys, dtype=np.int64),
            tomb_blocks=tomb_blocks,
            tomb_keys=np.array(self._tomb_keys, dtype=np.int64),
            seq=self.seq,
        )
        return self._view_cache

    # ------------------------------------------------------------------
    # Reconsolidation protocol
    # ------------------------------------------------------------------
    def mark_fold(self) -> DeltaView:
        """Capture the current delta for a background rebuild.

        Until :meth:`complete_fold` or :meth:`abort_fold`, unsubscribes
        treat the captured adds as frozen (tombstone instead of delete).
        """
        if self._fold_active:
            raise RuntimeError("a fold is already in flight")
        view = self.view()
        self._fold_active = True
        self._fold_adds = len(self._add_keys)
        self._fold_tombs = len(self._tomb_keys)
        return view

    def complete_fold(self, db_blocks: np.ndarray, db_keys: np.ndarray) -> None:
        """Drop the folded prefix and rebase on the new frozen index."""
        del self._add_blocks[: self._fold_adds]
        del self._add_keys[: self._fold_adds]
        folded_tombs = self._tomb_blocks[: self._fold_tombs]
        folded_keys = self._tomb_keys[: self._fold_tombs]
        for row, key in zip(folded_tombs, folded_keys):
            self._tomb_counts[_pair(row, key)] -= 1
        del self._tomb_blocks[: self._fold_tombs]
        del self._tomb_keys[: self._fold_tombs]
        self._tomb_counts += Counter()  # drop zero/negative entries
        self._fold_adds = 0
        self._fold_tombs = 0
        self._fold_active = False
        self._view_cache = None
        self.rebase(db_blocks, db_keys)

    def abort_fold(self) -> None:
        """A rebuild failed; release the captured prefix unchanged."""
        self._fold_adds = 0
        self._fold_tombs = 0
        self._fold_active = False


def apply_delta(
    frozen_results: list[np.ndarray],
    query_blocks: np.ndarray,
    view: DeltaView,
    unique_flags: list[bool],
) -> list[np.ndarray]:
    """Overlay the delta on a batch of frozen-index results.

    ``frozen_results[i]`` is the engine's multiset answer for query row
    ``i`` (``unique=False``!).  Delta adds whose signature ⊆ query are
    unioned in, then each matching tombstone removes one instance of its
    key, then ``match-unique`` queries deduplicate.  The two containment
    scans are evaluated once for the whole batch (the delta-side
    analogue of the batched Algorithm 2).  Runs on matcher threads over
    an immutable view.
    """
    add_m = (
        containment_matrix(view.add_blocks, query_blocks)
        if view.add_keys.size
        else None
    )
    tomb_m = (
        containment_matrix(view.tomb_blocks, query_blocks)
        if view.tomb_keys.size
        else None
    )
    out: list[np.ndarray] = []
    for qi, keys in enumerate(frozen_results):
        if add_m is not None:
            hits = add_m[:, qi]
            if hits.any():
                keys = np.concatenate([keys, view.add_keys[hits]])
        if tomb_m is not None:
            hits = tomb_m[:, qi]
            if hits.any():
                budget = Counter(view.tomb_keys[hits].tolist())
                kept = []
                for k in keys.tolist():
                    if budget.get(k, 0) > 0:
                        budget[k] -= 1
                    else:
                        kept.append(k)
                keys = np.array(kept, dtype=np.int64)
        if unique_flags[qi]:
            keys = np.unique(keys)
        out.append(keys)
    return out
