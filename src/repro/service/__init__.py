"""Online pub/sub serving layer over the TagMatch engine (§6 outlook).

The batch engine answers queries in-process; this package turns it into
a long-running matching *service*: a framed TCP protocol with
subscribe/unsubscribe/publish/stats verbs, an ingress batcher with an
adaptive flush deadline, admission control with explicit ``OVERLOAD``
rejections, and a live-update path (delta store + background
reconsolidation with atomic epoch swaps) so the index evolves while
matching never stops.  See DESIGN.md §9.
"""

from repro.core.config import ServiceConfig
from repro.service.delta import DeltaStore, DeltaView, apply_delta
from repro.service.loadgen import LoadgenReport, run_loadgen
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import OverloadedError, ProtocolError, ServiceClient
from repro.service.server import MatchServer, serve_until_interrupted

__all__ = [
    "ServiceConfig",
    "DeltaStore",
    "DeltaView",
    "apply_delta",
    "LoadgenReport",
    "run_loadgen",
    "ServiceMetrics",
    "OverloadedError",
    "ProtocolError",
    "ServiceClient",
    "MatchServer",
    "serve_until_interrupted",
]
