"""The asyncio pub/sub matching server.

Architecture (per the paper's §6 future work — TagMatch inside a full
messaging system):

- One asyncio event loop owns all bookkeeping: connections, the delta
  store, the ingress batcher, admission counters, and epoch swaps.  No
  locks — matcher threads only ever see immutable snapshots.
- Publishes are admitted (bounded in-flight queue, else an immediate
  ``OVERLOAD`` reply), encoded, and coalesced by the ingress batcher;
  each flushed batch runs the existing four-stage pipeline via
  ``engine.match_stream`` in a worker thread, then the delta overlay
  (:func:`repro.service.delta.apply_delta`), then replies.
- Subscribes/unsubscribes mutate the delta store immediately — no
  ``consolidate()`` on the hot path — and a background task rebuilds
  the frozen index once the delta grows past a threshold, swapping the
  new engine in atomically by reference.  In-flight batches hold a
  lease on the engine they started with; a retired engine is closed
  only when its last lease drains, so readers are never blocked and
  never see a half-built index.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.batch import Batch
from repro.core.config import ServiceConfig
from repro.core.engine import TagMatch
from repro.core.memo import QueryMemo
from repro.errors import ValidationError
from repro.obs import trace
from repro.obs.export import MetricsServer, render_prometheus
from repro.obs.trace import stage_summary
from repro.service.batcher import AdaptiveDeadline, IngressBatcher
from repro.service.delta import DeltaStore, DeltaView, apply_delta
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import ProtocolError, read_frame, write_frame

__all__ = ["MatchServer", "serve_until_interrupted"]

#: Drain budget for in-flight batches during graceful shutdown.
_DRAIN_TIMEOUT_S = 30.0


@dataclass(eq=False)
class _Conn:
    """Per-connection state: write serialisation + pub backpressure."""

    writer: asyncio.StreamWriter
    sem: asyncio.Semaphore
    write_lock: asyncio.Lock = field(default_factory=asyncio.Lock)


@dataclass
class _PubTicket:
    """One admitted publish waiting for its batch to return."""

    conn: _Conn
    req_id: object
    unique: bool
    t0: float


class MatchServer:
    """Online pub/sub front-end over one TagMatch engine."""

    def __init__(
        self,
        engine: TagMatch,
        config: ServiceConfig | None = None,
        snapshot_path: str | None = None,
    ) -> None:
        if engine.partition_table is None:
            raise ValidationError("serve requires a consolidated engine")
        if engine.config.exact_check:
            raise ValidationError(
                "the serving layer stores signatures only; exact_check "
                "engines cannot be served"
            )
        self.config = config if config is not None else ServiceConfig()
        self.engine = engine
        self.snapshot_path = snapshot_path
        self.metrics = ServiceMetrics(
            self.config.latency_window, rate_window_s=self.config.rate_window_s
        )
        #: Read position into the global tracer ring: stats/metrics
        #: renders pull only the spans recorded since the last pull.
        self._trace_cursor = 0
        self._metrics_server: MetricsServer | None = None
        self.metrics.registry.register_collector(self._collect_gauges)
        self._hasher = engine.hasher
        self.delta = DeltaStore(engine.hasher.num_blocks)
        self.delta.rebase(engine.database.blocks, engine.database.keys)
        self._batcher = IngressBatcher(
            self._on_flush,
            self.config.ingress_batch_size,
            engine.hasher.num_blocks,
            AdaptiveDeadline(
                self.config.batch_deadline_s,
                self.config.min_deadline_s,
                self.config.max_deadline_s,
            ),
        )
        #: Duplicate-query memoization (§4.2.1's repeated interests): a
        #: firehose message whose signature was already matched against
        #: the current epoch skips the device entirely.  Only frozen
        #: (pre-delta-overlay, multiset) results are cached; the overlay
        #: is applied per request, so live subscribes are never masked.
        self._memo = (
            QueryMemo(engine.config.query_memo_size)
            if engine.config.query_memo_size > 0
            else None
        )
        self._conns: set[_Conn] = set()
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._leases: dict[int, int] = {}
        self._tasks: set[asyncio.Task] = set()
        self._folding = False
        self._stopping = False
        self._server: asyncio.base_events.Server | None = None
        self._recon_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self.config.trace:
            trace.enable()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if self.config.metrics_port is not None:
            self._metrics_server = MetricsServer(self._render_metrics)
            await self._metrics_server.start(
                self.config.host, self.config.metrics_port
            )
        if self.config.reconsolidate_threshold:
            self._recon_task = asyncio.get_running_loop().create_task(
                self._recon_loop()
            )

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    @property
    def metrics_port(self) -> int | None:
        """Bound Prometheus endpoint port; ``None`` when disabled."""
        return self._metrics_server.port if self._metrics_server else None

    async def shutdown(self) -> None:
        """Graceful stop: drain in-flight batches, then close the engine.

        With a ``snapshot_path``, the surviving delta is folded into a
        final reconsolidation and the index saved, so a restart resumes
        from exactly the served state.
        """
        if self._stopping:
            return
        self._stopping = True
        if self._recon_task is not None:
            self._recon_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            await self._metrics_server.close()
        self._batcher.flush_now("shutdown")
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=_DRAIN_TIMEOUT_S)
        except asyncio.TimeoutError:
            pass
        if self.snapshot_path is not None:
            if self.delta.size and not self._folding:
                await self.reconsolidate()
            await asyncio.to_thread(self.engine.save, self.snapshot_path)
        for conn in list(self._conns):
            conn.writer.close()
        self._batcher.close()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        await asyncio.to_thread(self.engine.close)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Conn(writer, asyncio.Semaphore(self.config.conn_inflight))
        self._conns.add(conn)
        try:
            while True:
                message = await read_frame(reader, self.config.max_frame_bytes)
                if message is None:
                    break
                await self._dispatch(conn, message)
        except (ProtocolError, ConnectionError, OSError):
            pass
        finally:
            self._conns.discard(conn)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send(self, conn: _Conn, message: dict) -> None:
        try:
            async with conn.write_lock:
                await write_frame(conn.writer, message)
        except (ConnectionError, OSError):
            pass  # peer went away; nothing to deliver to

    async def _dispatch(self, conn: _Conn, message: dict) -> None:
        req_id = message.get("id")
        verb = message.get("verb")
        try:
            if verb == "pub":
                await self._on_publish(conn, message)
            elif verb == "sub":
                row = self._encode(message)
                self.delta.subscribe(row, int(message["key"]))
                self.metrics.subscribes += 1
                await self._send(conn, {"id": req_id, "ok": True})
            elif verb == "unsub":
                row = self._encode(message)
                removed = self.delta.unsubscribe(row, int(message["key"]))
                self.metrics.unsubscribes += 1
                await self._send(
                    conn, {"id": req_id, "ok": True, "removed": removed}
                )
            elif verb == "stats":
                await self._send(
                    conn, {"id": req_id, "ok": True, "stats": self.stats()}
                )
            elif verb == "trace":
                limit = int(message.get("limit") or 2048)
                await self._send(
                    conn,
                    {"id": req_id, "ok": True, "trace": self.trace_summary(limit)},
                )
            elif verb == "reconsolidate":
                epoch = await self.reconsolidate()
                await self._send(conn, {"id": req_id, "ok": True, "epoch": epoch})
            elif verb == "ping":
                await self._send(conn, {"id": req_id, "ok": True})
            else:
                raise ProtocolError(f"unknown verb {verb!r}")
        except (KeyError, TypeError, ValueError, ProtocolError) as exc:
            self.metrics.errors += 1
            await self._send(
                conn, {"id": req_id, "ok": False, "error": f"bad_request: {exc}"}
            )

    def _encode(self, message: dict) -> np.ndarray:
        tags = message["tags"]
        if not isinstance(tags, list) or not tags:
            raise ProtocolError("tags must be a non-empty list")
        return np.array(
            self._hasher.encode_set(str(t) for t in tags), dtype=np.uint64
        )

    # ------------------------------------------------------------------
    # Publish path
    # ------------------------------------------------------------------
    async def _on_publish(self, conn: _Conn, message: dict) -> None:
        req_id = message.get("id")
        if self._stopping:
            await self._send(
                conn, {"id": req_id, "ok": False, "error": "shutdown"}
            )
            return
        if self._inflight >= self.config.max_inflight:
            # Admission control: reject now, with bounded latency,
            # rather than queue without limit and collapse (§6 of the
            # batch-dynamic GPU matching literature: ingress discipline
            # is where live systems win or lose).
            self.metrics.overloads += 1
            await self._send(
                conn, {"id": req_id, "ok": False, "error": "overload"}
            )
            return
        row = self._encode(message)
        # Per-connection backpressure: at the cap this blocks, which
        # stops the read loop for just this connection (TCP pushback).
        await conn.sem.acquire()
        ticket = _PubTicket(
            conn=conn,
            req_id=req_id,
            unique=bool(message.get("unique", False)),
            t0=time.perf_counter(),
        )
        self._inflight += 1
        self._idle.clear()
        self._batcher.add(row, ticket)

    def _on_flush(self, batch: Batch, reason: str) -> None:
        self.metrics.record_batch(len(batch), reason)
        task = asyncio.get_running_loop().create_task(self._run_batch(batch))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_batch(self, batch: Batch) -> None:
        tickets: list[_PubTicket] = batch.states
        unique_flags = [t.unique for t in tickets]
        view = self.delta.view()
        engine = self._lease()
        try:
            results, epoch = await asyncio.to_thread(
                self._match_batch_sync, engine, batch.queries, unique_flags, view
            )
        except BaseException as exc:  # noqa: BLE001 - replied per ticket
            self.metrics.errors += 1
            for ticket in tickets:
                await self._send(
                    ticket.conn,
                    {"id": ticket.req_id, "ok": False, "error": f"match_failed: {exc}"},
                )
                self._finish_pub(ticket)
            return
        finally:
            self._release(engine)
        for ticket, keys in zip(tickets, results):
            self.metrics.record_publish(time.perf_counter() - ticket.t0)
            await self._send(
                ticket.conn,
                {
                    "id": ticket.req_id,
                    "ok": True,
                    "keys": keys.tolist(),
                    "epoch": epoch,
                },
            )
            self._finish_pub(ticket)

    def _finish_pub(self, ticket: _PubTicket) -> None:
        ticket.conn.sem.release()
        self._inflight -= 1
        if self._inflight == 0:
            self._idle.set()

    def _match_batch_sync(
        self,
        engine: TagMatch,
        blocks: np.ndarray,
        unique_flags: list[bool],
        view: DeltaView,
    ) -> tuple[list[np.ndarray], int]:
        """Worker-thread body: frozen pipeline run + delta overlay.

        The frozen run always uses multiset semantics so tombstone
        subtraction is exact; per-query ``unique`` is applied after the
        overlay.  No inner flush timeout: the ingress batcher already
        decided this batch's latency budget.

        With memoization on, signatures already matched against this
        epoch are served from the LRU and only the misses ride the
        pipeline (a fully memoized batch never touches the device).
        """
        epoch = engine.epoch
        if self._memo is None:
            run = engine.match_stream(
                blocks,
                unique=False,
                num_threads=self.config.match_threads,
                batch_timeout_s=None,
            )
            results = apply_delta(run.results, blocks, view, unique_flags)
            return results, run.epoch

        frozen: list[np.ndarray | None] = [None] * len(blocks)
        miss_slots: dict[bytes, list[int]] = {}
        for i, row in enumerate(blocks):
            signature = row.tobytes()
            cached = self._memo.get(epoch, signature)
            if cached is not None:
                frozen[i] = cached
            else:
                miss_slots.setdefault(signature, []).append(i)
        if miss_slots:
            signatures = list(miss_slots)
            miss_blocks = np.vstack(
                [np.frombuffer(s, dtype=np.uint64) for s in signatures]
            )
            run = engine.match_stream(
                miss_blocks,
                unique=False,
                num_threads=self.config.match_threads,
                batch_timeout_s=None,
            )
            epoch = run.epoch
            for signature, keys in zip(signatures, run.results):
                # Frozen multiset keys only: callers overlay the delta on
                # top, so the cached value stays valid for the epoch.
                # The memo freezes the array; propagating its read-only
                # view (not the writable original) means no consumer can
                # mutate what later hits will be served from.
                cached = self._memo.put(epoch, signature, keys)
                for slot in miss_slots[signature]:
                    frozen[slot] = cached
        results = apply_delta(frozen, blocks, view, unique_flags)
        return results, epoch

    # ------------------------------------------------------------------
    # Epoch swap / reconsolidation
    # ------------------------------------------------------------------
    def _lease(self) -> TagMatch:
        engine = self.engine
        self._leases[id(engine)] = self._leases.get(id(engine), 0) + 1
        return engine

    def _release(self, engine: TagMatch) -> None:
        remaining = self._leases.get(id(engine), 0) - 1
        if remaining > 0:
            self._leases[id(engine)] = remaining
            return
        self._leases.pop(id(engine), None)
        if engine is not self.engine:
            self._close_later(engine)

    def _close_later(self, engine: TagMatch) -> None:
        task = asyncio.get_running_loop().create_task(
            asyncio.to_thread(engine.close)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def reconsolidate(self) -> int:
        """Rebuild the frozen index off the hot path and swap epochs.

        Readers are never blocked: the rebuild runs in a worker thread
        over captured snapshots, the swap is a reference assignment on
        the event loop, and the old engine closes when its last
        in-flight batch releases its lease.
        """
        if self._folding:
            return self.engine.epoch
        self._folding = True
        view = self.delta.mark_fold()
        old = self.engine
        db = old.database
        try:
            new_engine = await asyncio.to_thread(
                self._rebuild, db.blocks, db.keys, view, old
            )
        except BaseException:
            self.delta.abort_fold()
            self._folding = False
            raise
        self.delta.complete_fold(
            new_engine.database.blocks, new_engine.database.keys
        )
        self.engine = new_engine
        self.metrics.reconsolidations += 1
        if id(old) not in self._leases:
            self._close_later(old)
        self._folding = False
        return new_engine.epoch

    @staticmethod
    def _rebuild(
        db_blocks: np.ndarray,
        db_keys: np.ndarray,
        view: DeltaView,
        old: TagMatch,
    ) -> TagMatch:
        """Fold frozen ∪ adds − tombstones into a fresh engine."""
        blocks = (
            np.vstack([db_blocks, view.add_blocks])
            if view.add_keys.size
            else db_blocks
        )
        keys = (
            np.concatenate([db_keys, view.add_keys])
            if view.add_keys.size
            else db_keys
        )
        engine = TagMatch(old.config)
        engine.epoch = old.epoch  # consolidate() bumps: epochs stay monotonic
        if len(blocks):
            engine.add_signatures(blocks, keys)
        for row, key in zip(view.tomb_blocks, view.tomb_keys):
            engine.remove_signature(row, int(key))
        engine.consolidate()
        return engine

    async def _recon_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.reconsolidate_interval_s)
            if (
                not self._folding
                and self.delta.size >= self.config.reconsolidate_threshold
            ):
                try:
                    await self.reconsolidate()
                except Exception:  # noqa: BLE001 - keep serving on the old epoch
                    self.metrics.errors += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _ingest_trace(self) -> None:
        """Pull spans recorded since the last render into the metrics.

        Lazy by design: matcher threads only append to the tracer ring;
        the histogram updates happen here, on the introspection path,
        so the hot path never pays for bucketing.
        """
        self._trace_cursor, spans = trace.since(self._trace_cursor)
        if spans:
            self.metrics.ingest_spans(spans)

    def _collect_gauges(self) -> None:
        """Registry collector: late-bound server state, read at render."""
        reg = self.metrics.registry
        reg.gauge("repro_inflight").set(self._inflight)
        reg.gauge("repro_connections").set(len(self._conns))
        reg.gauge("repro_delta_size").set(self.delta.size)
        reg.gauge("repro_epoch").set(self.engine.epoch)
        reg.gauge("repro_batch_deadline_seconds").set(
            self._batcher.deadline.current_s
        )
        # Device clocks are gauges, not counters: a reconsolidation
        # swaps in a fresh engine whose clocks restart at zero.
        for dev in self.engine.devices:
            snap = dev.clock.snapshot()
            reg.gauge("repro_device_kernel_seconds", device=dev.device_id).set(
                snap["kernel_s"]
            )
            reg.gauge("repro_device_transfer_seconds", device=dev.device_id).set(
                snap["transfer_s"]
            )
            reg.gauge("repro_device_launches", device=dev.device_id).set(
                snap["launches"]
            )
        if self._memo is not None:
            memo = self._memo.stats()
            reg.gauge("repro_memo_size").set(memo["size"])
            reg.gauge("repro_memo_hits").set(memo["hits"])
            reg.gauge("repro_memo_misses").set(memo["misses"])

    def _render_metrics(self) -> str:
        self._ingest_trace()
        return render_prometheus(self.metrics.registry)

    def trace_summary(self, limit: int = 2048) -> dict:
        """The ``trace`` verb: per-stage aggregate over recent spans.

        Wall-clock aggregates come from the tracer ring (bounded
        window); the p50/p99 columns come from the lifetime stage
        histograms, which never drop samples.
        """
        self._ingest_trace()
        spans = trace.recent(limit)
        stages = stage_summary(spans)
        hist = self.metrics.stage_snapshot()
        for name, entry in stages.items():
            percentiles = hist.get(name)
            if percentiles and percentiles["count"]:
                entry["p50_ms"] = percentiles["p50_ms"]
                entry["p99_ms"] = percentiles["p99_ms"]
        return {
            "enabled": trace.is_enabled(),
            "span_count": trace.count(),
            "window": len(spans),
            "stages": stages,
        }

    def stats(self) -> dict:
        self._ingest_trace()
        return self.metrics.snapshot(
            epoch=self.engine.epoch,
            delta_size=self.delta.size,
            inflight=self._inflight,
            deadline_s=self._batcher.deadline.current_s,
            connections=len(self._conns),
            memo=self._memo.stats() if self._memo is not None else None,
            device={
                str(dev.device_id): dev.clock.snapshot()
                for dev in self.engine.devices
            },
        )


async def serve_until_interrupted(
    engine: TagMatch,
    config: ServiceConfig,
    snapshot_path: str | None = None,
    ready_cb=None,
) -> None:
    """Run a server until SIGINT/SIGTERM, then drain gracefully."""
    import signal

    server = MatchServer(engine, config, snapshot_path=snapshot_path)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    if ready_cb is not None:
        ready_cb(server)
    try:
        await stop.wait()
    finally:
        await server.shutdown()
