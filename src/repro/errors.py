"""Exception hierarchy for the TagMatch reproduction.

Every error raised by this package derives from :class:`ReproError`, so
applications can catch a single base class at their outermost layer while
still being able to discriminate failures from individual subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad width, empty tag set, ...)."""


class ConsolidationError(ReproError):
    """The engine could not (re)build its index.

    Raised, for example, when ``match`` is called before ``consolidate``
    or when the staged database is empty.
    """


class DeviceError(ReproError):
    """A simulated GPU device operation failed."""


class CapacityError(DeviceError):
    """A device memory allocation exceeded the configured capacity."""


class StreamError(DeviceError):
    """Misuse of a device stream (enqueue after close, bad sync, ...)."""


class WorkloadError(ReproError):
    """Workload generation was asked for something inconsistent."""


class BackendError(ReproError):
    """An execution backend (thread/process pool) failed.

    Raised when the shared-memory store cannot be created, when a worker
    pool cannot be spawned or does not come up healthy, or when a
    submitted task is lost past the pool's respawn/resubmit recovery.
    """
