"""Top-level Twitter-like workload assembly (§4.2).

``generate_twitter_workload`` glues the pieces together: synthetic tweet
corpus → language assignment → follower sampling → interest generation →
Bloom encoding, and exposes the database-fraction views the paper's
scalability experiments sweep over.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.bloom.hashing import TagHasher
from repro.errors import WorkloadError
from repro.workloads.interests import InterestSet, generate_interests
from repro.workloads.queries import QuerySet, generate_queries
from repro.workloads.tweets import TweetCorpus, generate_tweet_corpus

__all__ = ["TwitterWorkload", "generate_twitter_workload"]


@dataclass
class TwitterWorkload:
    """A fully generated and encoded workload."""

    interests: InterestSet
    blocks: np.ndarray
    keys: np.ndarray
    hasher: TagHasher
    corpus: TweetCorpus
    num_users: int
    generation_s: float
    _num_unique: int | None = field(default=None, repr=False)

    @property
    def num_associations(self) -> int:
        return self.blocks.shape[0]

    @property
    def num_unique_sets(self) -> int:
        if self._num_unique is None:
            self._num_unique = int(
                np.unique(self.blocks, axis=0).shape[0]
            )
        return self._num_unique

    def fraction(self, frac: float, rng: np.random.Generator | None = None):
        """A ``(blocks, keys)`` view of the first ``frac`` of the database.

        The paper's database-size sweeps (Figures 4, 8, 9; Tables 1, 3)
        measure 10 %–100 % of the full workload.  Taking a prefix (after
        the generator's inherent shuffling) keeps sub-workloads nested:
        the 20 % database contains the 10 % one.
        """
        if not 0 < frac <= 1:
            raise WorkloadError(f"fraction must be in (0, 1], got {frac}")
        n = max(1, int(round(frac * self.num_associations)))
        del rng  # kept for interface stability
        return self.blocks[:n], self.keys[:n]

    def queries(
        self,
        num_queries: int,
        seed: int = 1,
        extra_tags: tuple[int, int] = (2, 4),
        fraction: float = 1.0,
    ) -> QuerySet:
        """Generate §4.2.2 queries whose base sets come from the given
        database fraction (so every query can match)."""
        n = max(1, int(round(fraction * self.num_associations)))
        rng = np.random.default_rng(seed)
        return generate_queries(
            self.interests.tag_sets[:n],
            self.hasher,
            num_queries,
            rng,
            extra_tags=extra_tags,
            vocab_size=self.corpus.vocab_size,
        )


def generate_twitter_workload(
    num_users: int,
    seed: int = 0,
    hasher: TagHasher | None = None,
    publishers_per_user: float = 0.1,
) -> TwitterWorkload:
    """Generate the full §4.2.1 workload for ``num_users`` users."""
    if num_users <= 0:
        raise WorkloadError("num_users must be positive")
    start = time.perf_counter()
    rng = np.random.default_rng(seed)
    hasher = hasher if hasher is not None else TagHasher()

    num_publishers = max(10, int(num_users * publishers_per_user))
    corpus = generate_tweet_corpus(num_publishers, rng)
    interests = generate_interests(corpus, num_users, rng)
    blocks = hasher.encode_sets(interests.tag_sets)

    # Shuffle associations so database-fraction prefixes are unbiased.
    order = rng.permutation(len(interests))
    blocks = blocks[order]
    keys = interests.keys[order]
    interests = InterestSet(
        tag_sets=[interests.tag_sets[i] for i in order], keys=keys
    )

    return TwitterWorkload(
        interests=interests,
        blocks=blocks,
        keys=keys,
        hasher=hasher,
        corpus=corpus,
        num_users=num_users,
        generation_s=time.perf_counter() - start,
    )
