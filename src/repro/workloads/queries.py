"""Query (tweet) generation (§4.2.2).

Uniformly random tweets would almost always be discarded by the
pre-process stage, so — to measure *conservative* throughput — the paper
builds each query from a tag set drawn from the database plus two to four
extra random tags: the base set plays the generic topic, the extras the
tweet's specificity, and every query is forced through the full subset
match and merge stages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bloom.hashing import TagHasher
from repro.errors import WorkloadError
from repro.workloads.languages import translate_tag

__all__ = ["QuerySet", "generate_queries"]


@dataclass
class QuerySet:
    """Generated queries: tag sets plus their block encodings."""

    tag_sets: list[frozenset[str]]
    blocks: np.ndarray

    def __len__(self) -> int:
        return len(self.tag_sets)


def _language_of(tags: tuple[str, ...]) -> str:
    """Recover the language prefix of an interest's hashtag tags."""
    for tag in tags:
        if "_h" in tag:
            return tag.split("_", 1)[0]
    return "en"


#: Popularity skew of the extra hashtags, matching the tweet corpus
#: sampler (:func:`repro.workloads.tweets.generate_tweet_corpus`): a
#: tweet's additional hashtags follow the same power law as hashtags in
#: general, so extras frequently hit popular tags — which is what makes
#: large queries have large fan-out (Figure 3).
EXTRA_TAG_GAMMA = 2.5


def generate_queries(
    interest_tag_sets: list[tuple[str, ...]],
    hasher: TagHasher,
    num_queries: int,
    rng: np.random.Generator,
    extra_tags: tuple[int, int] = (2, 4),
    vocab_size: int = 100_000,
) -> QuerySet:
    """Build queries as database sets plus ``extra_tags`` random tags.

    ``extra_tags=(k, k)`` fixes exactly ``k`` extras — Figure 2 sweeps
    this from 1 to 10.  Extras are drawn from the hashtag popularity
    distribution (not uniformly), as a tweet's hashtags would be.
    """
    if not interest_tag_sets:
        raise WorkloadError("cannot generate queries from an empty database")
    lo, hi = extra_tags
    if not 0 <= lo <= hi:
        raise WorkloadError("extra_tags must satisfy 0 <= lo <= hi")

    bases = rng.integers(0, len(interest_tag_sets), size=num_queries)
    extra_counts = rng.integers(lo, hi + 1, size=num_queries)
    tag_sets: list[frozenset[str]] = []
    for base_idx, extras in zip(bases, extra_counts):
        base = interest_tag_sets[int(base_idx)]
        lang = _language_of(base)
        tags = set(base)
        while len(tags) < len(base) + extras:
            tag_id = int(vocab_size * rng.random() ** EXTRA_TAG_GAMMA)
            tag_id = min(tag_id, vocab_size - 1)
            tags.add(translate_tag(f"h{tag_id}", lang))
        tag_sets.append(frozenset(tags))

    blocks = hasher.encode_sets(tag_sets)
    return QuerySet(tag_sets=tag_sets, blocks=blocks)
