"""Tweet-corpus serialization: plug real data into the workload pipeline.

The paper builds its workload from the TREC-2011 tweet collection.  That
data cannot ship here, but the interest generator only needs the corpus
*shape* — publishers, their tweets, each tweet's hashtags — which this
module reads and writes as JSON lines::

    {"publisher": 17, "hashtags": ["cats", "memes"]}

One line per tweet, grouped or ungrouped by publisher.  A downstream
user with the real TREC dump (or any tweet archive) converts it to this
format and feeds it straight into :func:`repro.workloads.interests.
generate_interests` via :func:`corpus_from_jsonl`.
"""

from __future__ import annotations

import json
from typing import Iterable, TextIO

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.tweets import TweetCorpus

__all__ = ["corpus_to_jsonl", "corpus_from_jsonl", "iter_corpus_tweets"]


def iter_corpus_tweets(corpus: TweetCorpus):
    """Yield ``(publisher, [hashtag ids])`` for every tweet."""
    for publisher in range(corpus.num_publishers):
        for tweet in corpus.tweets_of(publisher):
            yield publisher, corpus.tags_of(tweet).tolist()


def corpus_to_jsonl(corpus: TweetCorpus, stream: TextIO) -> int:
    """Write the corpus as JSON lines; returns the tweet count."""
    count = 0
    for publisher, hashtag_ids in iter_corpus_tweets(corpus):
        stream.write(
            json.dumps(
                {"publisher": publisher, "hashtags": [f"h{t}" for t in hashtag_ids]}
            )
        )
        stream.write("\n")
        count += 1
    return count


def corpus_from_jsonl(lines: Iterable[str]) -> TweetCorpus:
    """Parse a JSON-lines tweet archive into a :class:`TweetCorpus`.

    Hashtag strings are interned into integer ids; publishers may appear
    in any order and with any identifiers (they are renumbered densely,
    preserving first-appearance order).  Tweets without hashtags are
    skipped — they can never contribute to an interest.
    """
    tag_ids: dict[str, int] = {}
    publisher_ids: dict[object, int] = {}
    per_publisher: list[list[list[int]]] = []

    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            publisher = record["publisher"]
            hashtags = record["hashtags"]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise WorkloadError(f"bad corpus record on line {lineno}: {exc}") from exc
        if not isinstance(hashtags, list):
            raise WorkloadError(f"line {lineno}: 'hashtags' must be a list")
        if not hashtags:
            continue
        pid = publisher_ids.setdefault(publisher, len(publisher_ids))
        if pid == len(per_publisher):
            per_publisher.append([])
        tweet = []
        for tag in hashtags:
            tweet.append(tag_ids.setdefault(str(tag), len(tag_ids)))
        per_publisher[pid].append(tweet)

    if not per_publisher:
        raise WorkloadError("corpus contains no tweets with hashtags")

    tweet_offsets = np.zeros(len(per_publisher) + 1, dtype=np.int64)
    all_tweets: list[list[int]] = []
    for pid, tweets in enumerate(per_publisher):
        # A publisher that only posted hashtag-less tweets would have an
        # empty tweet range, which interest generation cannot sample;
        # give it a one-tag placeholder drawn from its id.
        if not tweets:
            tweets = [[0]]
        all_tweets.extend(tweets)
        tweet_offsets[pid + 1] = tweet_offsets[pid] + len(tweets)

    tag_offsets = np.zeros(len(all_tweets) + 1, dtype=np.int64)
    for i, tweet in enumerate(all_tweets):
        tag_offsets[i + 1] = tag_offsets[i] + len(tweet)
    flat = np.fromiter(
        (t for tweet in all_tweets for t in tweet),
        dtype=np.int64,
        count=int(tag_offsets[-1]),
    )
    return TweetCorpus(
        vocab_size=max(1, len(tag_ids)),
        tweet_tags=flat,
        tag_offsets=tag_offsets,
        tweet_offsets=tweet_offsets,
    )
