"""Language model of the Twitter workload (§4.2.1).

The paper amplifies its tweet data set and removes the English bias by
"translating" tags into artificial languages: the tag ``cat`` becomes
``fr_cat`` in French.  40 % of users speak one language and 60 % speak
two; the first language follows the language distribution observed on
Twitter (Hong et al., ICWSM 2011), the second follows the distribution
of the world's most common second languages (Ethnologue).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = [
    "TWITTER_LANGUAGES",
    "SECOND_LANGUAGES",
    "BILINGUAL_FRACTION",
    "assign_languages",
    "translate_tag",
]

#: (language code, share) — approximate Twitter language distribution
#: from Hong, Convertino & Chi, "Language matters in Twitter" (2011).
TWITTER_LANGUAGES: list[tuple[str, float]] = [
    ("en", 0.513),
    ("ja", 0.190),
    ("pt", 0.096),
    ("id", 0.056),
    ("es", 0.047),
    ("nl", 0.019),
    ("ko", 0.016),
    ("fr", 0.016),
    ("de", 0.012),
    ("ms", 0.012),
    ("it", 0.008),
    ("tr", 0.008),
    ("ru", 0.007),
]

#: (language code, share) — most frequent second languages worldwide
#: (Ethnologue), renormalised over the same code universe.
SECOND_LANGUAGES: list[tuple[str, float]] = [
    ("en", 0.55),
    ("fr", 0.12),
    ("es", 0.09),
    ("ru", 0.07),
    ("pt", 0.06),
    ("de", 0.05),
    ("ja", 0.03),
    ("it", 0.03),
]

#: §4.2.1: "40% of the users speak only one language while the remaining
#: 60% speak two languages".
BILINGUAL_FRACTION = 0.6


def _codes_and_probs(dist: list[tuple[str, float]]) -> tuple[list[str], np.ndarray]:
    codes = [code for code, _ in dist]
    probs = np.array([share for _, share in dist], dtype=float)
    return codes, probs / probs.sum()


def assign_languages(
    num_users: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Assign a primary and (for 60 % of users) a secondary language.

    Returns ``(primary, secondary)`` arrays of indices into
    :data:`TWITTER_LANGUAGES` / :data:`SECOND_LANGUAGES`; monolingual
    users have ``secondary == -1``.
    """
    if num_users < 0:
        raise WorkloadError("num_users must be non-negative")
    _, p1 = _codes_and_probs(TWITTER_LANGUAGES)
    _, p2 = _codes_and_probs(SECOND_LANGUAGES)
    primary = rng.choice(len(p1), size=num_users, p=p1)
    secondary = rng.choice(len(p2), size=num_users, p=p2)
    monolingual = rng.random(num_users) >= BILINGUAL_FRACTION
    secondary[monolingual] = -1
    return primary.astype(np.int64), secondary.astype(np.int64)


def language_code(primary_index: int, secondary_index: int = -1) -> str:
    """Code of one assigned language slot (primary or secondary table)."""
    if secondary_index >= 0:
        return SECOND_LANGUAGES[secondary_index][0]
    return TWITTER_LANGUAGES[primary_index][0]


def translate_tag(tag: str, language: str) -> str:
    """'Translate' a tag by prefixing the language: ``cat`` → ``fr_cat``."""
    return f"{language}_{tag}"
