"""Synthetic tweet corpus (the TREC-2011 substitute, DESIGN.md §1).

The paper seeds its workload with 16 M real tweets from the TREC 2011
collection.  Offline, we synthesise a corpus with the same statistical
structure: a Zipf-distributed hashtag vocabulary (a few hashtags dominate),
publishers with Zipf-distributed activity (a few publishers tweet a lot),
and a small number of hashtags per tweet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

__all__ = ["TweetCorpus", "generate_tweet_corpus"]


@dataclass
class TweetCorpus:
    """Flat arrays describing all tweets of all publishers.

    Tweet ``t`` owns hashtag ids ``tweet_tags[tag_offsets[t]:tag_offsets[t+1]]``;
    publisher ``p`` owns tweets ``[tweet_offsets[p], tweet_offsets[p+1])``.
    """

    vocab_size: int
    tweet_tags: np.ndarray
    tag_offsets: np.ndarray
    tweet_offsets: np.ndarray

    @property
    def num_publishers(self) -> int:
        return self.tweet_offsets.size - 1

    @property
    def num_tweets(self) -> int:
        return self.tag_offsets.size - 1

    def tweets_of(self, publisher: int) -> range:
        return range(
            int(self.tweet_offsets[publisher]), int(self.tweet_offsets[publisher + 1])
        )

    def tags_of(self, tweet: int) -> np.ndarray:
        return self.tweet_tags[self.tag_offsets[tweet] : self.tag_offsets[tweet + 1]]

    def tweet_counts(self) -> np.ndarray:
        """Tweets per publisher (defines the top-30 % *frequent writers*)."""
        return np.diff(self.tweet_offsets)

    def frequent_writers(self, fraction: float = 0.3) -> np.ndarray:
        """Boolean mask of publishers in the top ``fraction`` by tweets.

        §4.2.1: a frequent writer's id is added as a tag to interests in
        that publisher.
        """
        counts = self.tweet_counts()
        k = max(1, int(round(fraction * counts.size)))
        threshold = np.sort(counts)[-k]
        return counts >= threshold


def generate_tweet_corpus(
    num_publishers: int,
    rng: np.random.Generator,
    vocab_size: int | None = None,
    mean_tweets_per_publisher: float = 10.0,
    tags_per_tweet: tuple[int, int] = (1, 8),
    zipf_exponent: float = 1.3,
) -> TweetCorpus:
    """Synthesise a corpus with Zipf-skewed publishers and hashtags."""
    if num_publishers <= 0:
        raise WorkloadError("num_publishers must be positive")
    if vocab_size is None:
        vocab_size = max(500, num_publishers)
    lo, hi = tags_per_tweet
    if not 1 <= lo <= hi:
        raise WorkloadError("tags_per_tweet must satisfy 1 <= lo <= hi")

    # Publisher activity: heavy-tailed and *correlated with popularity*
    # (publisher 0, the most followed, also tweets the most — as in the
    # Kwak et al. data).  This keeps the per-publisher tweet pool large
    # where followers concentrate, so interests stay mostly unique.
    ranks = np.arange(1, num_publishers + 1, dtype=float)
    raw = ranks ** -0.6 * rng.lognormal(0.0, 0.5, size=num_publishers)
    raw *= mean_tweets_per_publisher * num_publishers / raw.sum()
    counts = np.maximum(1, np.round(raw)).astype(np.int64)
    tweet_offsets = np.zeros(num_publishers + 1, dtype=np.int64)
    np.cumsum(counts, out=tweet_offsets[1:])
    num_tweets = int(tweet_offsets[-1])

    # Hashtags per tweet, then power-law-ranked hashtag ids.  The
    # inverse-CDF draw floor(V·U^γ) bounds the head: the most popular
    # hashtag appears in ~(1/V)^(1-1/γ) of draws (≈ 1–2 % for the default
    # vocabulary), matching observed hashtag skew instead of the ~26 %
    # head a raw Zipf(1.3) sampler would produce.
    sizes = rng.integers(lo, hi + 1, size=num_tweets)
    tag_offsets = np.zeros(num_tweets + 1, dtype=np.int64)
    np.cumsum(sizes, out=tag_offsets[1:])
    total_tags = int(tag_offsets[-1])
    gamma = zipf_exponent + 1.2
    draws = np.floor(vocab_size * rng.random(total_tags) ** gamma)
    tweet_tags = np.minimum(draws, vocab_size - 1).astype(np.int64)

    return TweetCorpus(
        vocab_size=vocab_size,
        tweet_tags=tweet_tags,
        tag_offsets=tag_offsets,
        tweet_offsets=tweet_offsets,
    )
