"""Workload generation: the Twitter-like messaging scenario of §4.2.

Synthetic substitutes for the paper's proprietary inputs (TREC-2011
tweets, the Kwak et al. follower graph) preserve the statistical
structure the evaluation depends on; see DESIGN.md §1.
"""

from repro.workloads.corpus_io import (
    corpus_from_jsonl,
    corpus_to_jsonl,
    iter_corpus_tweets,
)
from repro.workloads.interests import InterestSet, generate_interests
from repro.workloads.languages import (
    BILINGUAL_FRACTION,
    SECOND_LANGUAGES,
    TWITTER_LANGUAGES,
    assign_languages,
    translate_tag,
)
from repro.workloads.queries import QuerySet, generate_queries
from repro.workloads.scaling import (
    DEFAULT_SCALE,
    PAPER_MAX_P,
    PAPER_TWITTER_RATE_QPS,
    PAPER_UNIQUE_SETS,
    PAPER_USERS,
    scale,
    scaled,
)
from repro.workloads.social_graph import sample_followed_counts, sample_publishers
from repro.workloads.tweets import TweetCorpus, generate_tweet_corpus
from repro.workloads.workload import TwitterWorkload, generate_twitter_workload

__all__ = [
    "BILINGUAL_FRACTION",
    "DEFAULT_SCALE",
    "InterestSet",
    "PAPER_MAX_P",
    "PAPER_TWITTER_RATE_QPS",
    "PAPER_UNIQUE_SETS",
    "PAPER_USERS",
    "QuerySet",
    "SECOND_LANGUAGES",
    "TWITTER_LANGUAGES",
    "TweetCorpus",
    "TwitterWorkload",
    "assign_languages",
    "corpus_from_jsonl",
    "corpus_to_jsonl",
    "generate_interests",
    "generate_queries",
    "generate_tweet_corpus",
    "iter_corpus_tweets",
    "generate_twitter_workload",
    "sample_followed_counts",
    "sample_publishers",
    "scale",
    "scaled",
    "translate_tag",
]
