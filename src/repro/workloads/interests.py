"""User-interest generation (the §4.2.1 procedure, step by step).

For each user: select the user's language(s); draw the number of
followed publishers from the follower distribution; pick the publishers
(popularity-weighted); generate *one interest per followed publisher* by
selecting one of the publisher's tweets and taking its hashtags,
"translated" into one of the user's languages; and, if the publisher is
a frequent writer (top 30 % by published tweets), add the publisher id
itself as a tag — an interest with a publisher tag selects only that
publisher's messages, one without follows a topic across publishers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.languages import (
    SECOND_LANGUAGES,
    TWITTER_LANGUAGES,
    assign_languages,
    translate_tag,
)
from repro.workloads.social_graph import sample_followed_counts, sample_publishers
from repro.workloads.tweets import TweetCorpus

__all__ = ["InterestSet", "generate_interests"]


@dataclass
class InterestSet:
    """All generated interests: one ``(tag tuple, user key)`` per row."""

    tag_sets: list[tuple[str, ...]]
    keys: np.ndarray

    def __len__(self) -> int:
        return len(self.tag_sets)

    def mean_tags(self) -> float:
        if not self.tag_sets:
            return 0.0
        return sum(len(t) for t in self.tag_sets) / len(self.tag_sets)


def generate_interests(
    corpus: TweetCorpus,
    num_users: int,
    rng: np.random.Generator,
    frequent_writer_fraction: float = 0.3,
) -> InterestSet:
    """Run the §4.2.1 interest-generation procedure for every user."""
    primary, secondary = assign_languages(num_users, rng)
    followed = sample_followed_counts(num_users, rng)
    total = int(followed.sum())

    user_of_interest = np.repeat(np.arange(num_users, dtype=np.int64), followed)
    publishers = sample_publishers(total, corpus.num_publishers, rng)

    # One tweet per (user, publisher) pair, uniform over that publisher's
    # tweets.
    tweet_counts = corpus.tweet_counts()
    first_tweet = corpus.tweet_offsets[publishers]
    tweets = first_tweet + (
        rng.random(total) * tweet_counts[publishers]
    ).astype(np.int64)

    # Each interest is written in one of the user's languages: bilingual
    # users flip a coin per interest.
    use_secondary = (secondary[user_of_interest] >= 0) & (rng.random(total) < 0.5)
    frequent = corpus.frequent_writers(frequent_writer_fraction)

    tag_sets: list[tuple[str, ...]] = []
    primary_codes = [code for code, _ in TWITTER_LANGUAGES]
    secondary_codes = [code for code, _ in SECOND_LANGUAGES]
    for i in range(total):
        user = user_of_interest[i]
        lang = (
            secondary_codes[secondary[user]]
            if use_secondary[i]
            else primary_codes[primary[user]]
        )
        hashtags = corpus.tags_of(int(tweets[i]))
        tags = {translate_tag(f"h{tag_id}", lang) for tag_id in hashtags}
        publisher = int(publishers[i])
        if frequent[publisher]:
            tags.add(f"u_{publisher}")
        tag_sets.append(tuple(sorted(tags)))

    return InterestSet(tag_sets=tag_sets, keys=user_of_interest)
