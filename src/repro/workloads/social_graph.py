"""Follower-relation model (the Kwak et al. graph substitute).

The paper derives the number of publishers each user follows from the
41.7 M-user / 1.47 B-edge Twitter graph of Kwak et al. (WWW 2010) and
picks the followed publishers from the available data set.  We replace
the proprietary-scale graph with its two defining statistical features:
a heavy-tailed (power-law) out-degree distribution for how many
publishers a user follows, and preferential attachment for *which*
publishers are followed (popular publishers attract most followers).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

__all__ = ["sample_followed_counts", "sample_publishers"]


def sample_followed_counts(
    num_users: int,
    rng: np.random.Generator,
    exponent: float = 2.3,
    max_followed: int = 50,
) -> np.ndarray:
    """Followed-publisher count per user (power law, clipped).

    With the default exponent the median user follows one or two
    publishers while a heavy tail follows dozens — the Kwak et al.
    out-degree shape at the scale of interests per user.
    """
    if num_users < 0:
        raise WorkloadError("num_users must be non-negative")
    if max_followed < 1:
        raise WorkloadError("max_followed must be at least 1")
    counts = rng.zipf(exponent, size=num_users)
    return np.minimum(counts, max_followed).astype(np.int64)


def sample_publishers(
    total: int,
    num_publishers: int,
    rng: np.random.Generator,
    gamma: float = 3.0,
) -> np.ndarray:
    """Draw ``total`` publisher indices with power-law popularity.

    Publisher 0 is the most popular.  The inverse-CDF draw
    ``floor(N · U^γ)`` produces a rank density ∝ ``rank^(1/γ - 1)`` — a
    heavy head without the single-point mass a raw Zipf sampler puts on
    rank 1, matching the in-degree shape of the Kwak et al. graph where
    even the most-followed account owns only a few percent of all edges.
    """
    if num_publishers <= 0:
        raise WorkloadError("num_publishers must be positive")
    if gamma <= 1:
        raise WorkloadError("gamma must exceed 1 for a heavy head")
    draws = np.floor(num_publishers * rng.random(total) ** gamma)
    return np.minimum(draws, num_publishers - 1).astype(np.int64)
