"""Scaling policy: mapping the paper's sizes onto an offline laptop.

The paper's full workload has 300 M users and 212 M unique sets and runs
on a 24-core Xeon with two TITAN X cards.  Every experiment here runs the
same *relative* parameter grids at ``SCALE`` times the paper's sizes
(DESIGN.md §4); the default 1/1024 gives a full database of a few hundred
thousand sets, large enough for every trend in the evaluation to be
visible and small enough for the whole suite to run in minutes.

Set the ``REPRO_SCALE`` environment variable (e.g. ``1/256`` or
``0.01``) to rescale every benchmark at once.
"""

from __future__ import annotations

import os
from fractions import Fraction

from repro.errors import WorkloadError

__all__ = [
    "PAPER_USERS",
    "PAPER_UNIQUE_SETS",
    "PAPER_MAX_P",
    "PAPER_TWITTER_RATE_QPS",
    "DEFAULT_SCALE",
    "scale",
    "scaled",
]

#: §4.2.1: roughly the count of monthly active Twitter users in 2016.
PAPER_USERS = 300_000_000

#: §4.2.1: unique interest sets in the full workload.
PAPER_UNIQUE_SETS = 212_000_000

#: §4.3.5 / Figure 7: the best-performing maximum partition size.
PAPER_MAX_P = 200_000

#: Footnote 2: Twitter's 2015 average traffic, in tweets per second.
PAPER_TWITTER_RATE_QPS = 6_000

DEFAULT_SCALE = 1.0 / 1024.0


def scale() -> float:
    """The active scale factor (``REPRO_SCALE`` env var or the default)."""
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return DEFAULT_SCALE
    try:
        value = float(Fraction(raw))
    except (ValueError, ZeroDivisionError) as exc:
        raise WorkloadError(f"bad REPRO_SCALE value {raw!r}") from exc
    if not 0 < value <= 1:
        raise WorkloadError(f"REPRO_SCALE must be in (0, 1], got {value}")
    return value


def scaled(paper_value: int, minimum: int = 1) -> int:
    """A paper-scale quantity mapped to the active scale."""
    return max(minimum, int(round(paper_value * scale())))
