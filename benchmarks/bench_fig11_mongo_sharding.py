"""Figure 11 — MongoDB sharding scalability.

Paper shape: throughput grows roughly linearly up to 8 instances and
saturates after (the paper reaches ~3x overall at 24 instances) — useful
but far from enough to approach TagMatch, which would need tens of
thousands of instances.  Shard execution is modeled as parallel from
measured per-shard scan times and measured router dispatch overhead
(the host has a single core; see the experiment docstring).
"""

from repro.harness import experiments

INSTANCES = (1, 2, 4, 8, 16, 24)


def test_fig11_mongo_sharding(benchmark, publish):
    result = benchmark.pedantic(
        lambda: experiments.fig11_mongo_sharding(INSTANCES), rounds=1, iterations=1
    )
    publish(result)
    qps = result.data["qps"]
    instances = result.data["instances"]
    idx8 = instances.index(8)
    idx24 = instances.index(24)

    # Roughly linear benefit up to 8 instances.
    assert qps[1] > 1.3 * qps[0]
    assert qps[idx8] > 3 * qps[0]

    # ...then clear saturation: the 8->24 step gains far less than 1->8.
    gain_low = qps[idx8] / qps[0]
    gain_high = qps[idx24] / qps[idx8]
    assert gain_high < 0.6 * gain_low

    # Overall speedup stays deeply sublinear (paper: ~3x at 24).
    assert qps[idx24] / qps[0] < 12
