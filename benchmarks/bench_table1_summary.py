"""Table 1 — summary throughput of all six systems at three DB sizes.

Paper values (thousand queries/s): GPU-plain 0.40/0.20/0.04, GPU-batched
11.5/6.3/1.2, prefix tree 21.1/14.0/4.3, ICN 27.6/17.4/—, CPU-TagMatch
3.9/3.4/0.68, TagMatch 268.8/144.4/35.3.  The shape to reproduce: the
hybrid TagMatch wins by about an order of magnitude, batching rescues the
GPU-only design, ICN cannot build the full database, and everything slows
as the database grows.
"""

from repro.harness import experiments


def test_table1_summary(benchmark, workload, publish):
    result = benchmark.pedantic(
        lambda: experiments.table1_summary(workload), rounds=1, iterations=1
    )
    publish(result)
    kqps = result.data["kqps"]

    tagmatch = kqps["TagMatch"]
    tree = kqps["CPU-only, fast prefix tree"]
    plain = kqps["GPU-only, plain"]
    batched = kqps["GPU-only, plain with batching"]
    icn = kqps["CPU-only, state-of-the-art ICN"]

    # TagMatch dominates every other system at every size.
    for size in range(3):
        for name, series in kqps.items():
            if name != "TagMatch" and series[size] is not None:
                assert tagmatch[size] > series[size], (name, size)

    # Batching rescues the GPU-only design.
    assert all(b > p for b, p in zip(batched, plain))

    # ICN cannot build the full database (the paper's '—').
    assert icn[2] is None
    assert icn[0] is not None and icn[1] is not None

    # Throughput declines as the database grows (per system).
    for name in ("TagMatch", "CPU-only, fast prefix tree", "GPU-only, plain"):
        series = kqps[name]
        assert series[0] > series[2], name

    # TagMatch leads the best CPU-only tree by several times (paper: ~10x).
    assert tagmatch[2] > 3 * tree[2]
