"""Figure 5 — throughput vs number of CPU threads.

Paper shape: near-linear scaling at low thread counts (1.8x from 4 to 8,
3.3x from 4 to 16), then a plateau once the GPU stages and the limited
stream pool become the bottleneck; match declines past 24 threads while
match-unique (whose merge stage keeps the CPUs busier) sustains its
growth to higher thread counts.

The evaluation host has a single CPU core, so the curve combines
*measured* serial stage costs with the documented core/hyper-thread/
stream-contention parallelism model (see ``fig5_threads``).
"""

from repro.harness import experiments

THREADS = (4, 8, 16, 24, 32, 40, 48)


def test_fig5_threads(benchmark, workload, publish):
    result = benchmark.pedantic(
        lambda: experiments.fig5_threads(workload, THREADS), rounds=1, iterations=1
    )
    publish(result)
    match = result.data["match"]
    unique = result.data["unique"]

    # Near-linear scaling at low thread counts (paper: 1.8x from 4 to 8,
    # 3.3x from 4 to 16).
    assert match[1] / match[0] > 1.5
    assert match[2] / match[0] > 2.5

    # Both curves rise to a peak, then flatten or decline (GPU-bound).
    peak_match = match.index(max(match))
    peak_unique = unique.index(max(unique))
    assert peak_match >= 2
    assert match[-1] < max(match)

    # match saturates no later than match-unique (the paper's asymmetry:
    # the unique merge keeps CPUs the bottleneck for longer).
    assert peak_match <= peak_unique

    # The post-peak decline is mild, not a collapse.
    assert match[-1] > 0.7 * max(match)
