"""Figure 9 — host vs GPU memory usage vs database size.

Paper shape: both sides grow with the database; host memory is dominated
by the key table, GPU memory by the tagset table (which is replicated on
both devices), with small fixed communication overheads.
"""

from repro.harness import experiments


def test_fig9_memory(benchmark, workload, publish):
    result = benchmark.pedantic(
        lambda: experiments.fig9_memory(workload), rounds=1, iterations=1
    )
    publish(result)
    host = result.data["host_mb"]
    gpu = result.data["gpu_mb"]

    # Memory grows monotonically with the database on both sides.
    assert all(a <= b * 1.02 for a, b in zip(host, host[1:]))
    assert all(a <= b * 1.02 for a, b in zip(gpu, gpu[1:]))

    # Five times the database costs roughly five times the memory.
    assert 2.5 < host[-1] / host[0] < 10
    assert 2.5 < gpu[-1] / gpu[0] < 10

    # The key table dominates host memory (paper: "almost exclusively").
    key_mb = [row[2] for row in result.rows]
    assert all(k > 0.25 * h for k, h in zip(key_mb, host))
