"""Ablation — the Algorithm 4 thread-block pre-filter on vs off.

The paper calls pre-filtering "the first and most significant
optimization" of the subset-match kernel.  With large partitions the
pre-filter skips whole thread blocks whose common prefix is absent from
a query; disabling it forces the full scan.
"""

from repro.harness import experiments


def test_ablation_prefilter(benchmark, workload, publish):
    result = benchmark.pedantic(
        lambda: experiments.ablation_prefilter(workload), rounds=1, iterations=1
    )
    publish(result)
    data = result.data

    # The pre-filter reduces simulated device work.
    assert data["sim_kernel_s_on"] < data["sim_kernel_s_off"]

    # It never hurts wall-clock throughput materially.
    assert data["qps_on"] > 0.7 * data["qps_off"]
