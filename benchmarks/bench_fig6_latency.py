"""Figure 6 — end-to-end latency distribution vs batch flush timeout.

Paper shape: without a timeout the median latency is ~400 ms and 99 % of
queries finish within 2 s, but the tail is long.  Timeouts cap the tail;
the *shortest* timeout (100 ms) is pathological — it flushes many tiny
batches, and since a kernel consumes the same GPU resources regardless
of batch size, device load rises without throughput (~20 % loss at
100 ms), recovering by 200–300 ms.  Timeouts here are the paper's grid
scaled 1/10 to match the scaled pipeline's batch-fill time.

On this host the "GPU" shares the single CPU core, so the device-load
effect is asserted on the cost model's simulated device time and the
batch counts; the latency-capping effect is asserted on the measured
wall-clock percentiles.
"""

from repro.harness import experiments

TIMEOUTS = (None, 0.01, 0.02, 0.03, 0.05)


def test_fig6_latency(benchmark, workload, publish):
    result = benchmark.pedantic(
        lambda: experiments.fig6_latency(workload, TIMEOUTS), rounds=1, iterations=1
    )
    publish(result)
    data = result.data

    # Timeouts bound the tail: every timeout setting beats no-timeout at
    # the 99th percentile.
    for label in ("10ms", "20ms", "30ms", "50ms"):
        assert data[label]["p99_ms"] < data["none"]["p99_ms"], label

    # Tighter timeouts give tighter latency (10ms p50 ≤ 50ms p50, with
    # slack for scheduler noise).
    assert data["10ms"]["p50_ms"] < 1.5 * data["50ms"]["p50_ms"]

    # The pathological-short-timeout effect: the 10ms setting flushes
    # far more (smaller) batches and burns more simulated device time
    # than the 50ms one for the same queries.
    assert data["10ms"]["batches"] > 1.2 * data["50ms"]["batches"]
    assert data["10ms"]["sim_kernel_s"] > data["50ms"]["sim_kernel_s"]
