"""Figure 2 — input throughput vs number of extra query tags.

Paper shape (log scale): both systems slow down markedly as queries grow
from 1 to 10 extra tags (more one-bits match more partition masks and
more sets), and TagMatch stays about an order of magnitude ahead of the
prefix tree across the whole sweep.
"""

from repro.harness import experiments

EXTRA_TAGS = tuple(range(1, 11))


def test_fig2_query_size(benchmark, workload, publish):
    result = benchmark.pedantic(
        lambda: experiments.fig2_fig3_query_size(workload, EXTRA_TAGS),
        rounds=1,
        iterations=1,
    )
    publish(result)
    tm = result.data["tm_qps"]
    tree = result.data["tree_qps"]

    # Larger queries are slower for both systems (ends of the sweep).
    assert tm[0] > tm[-1]
    assert tree[0] > tree[-1]

    # TagMatch leads the tree across the whole sweep.
    assert all(t > r for t, r in zip(tm, tree))
