"""Table 3 — TagMatch vs prefix tree vs ICN at 10 % / 20 % of the DB.

Paper values (kq/s): TagMatch 268.8/144.4 (match), 249.3/133.0 (unique);
prefix tree 21.1/14.0 and 21.0/13.8; ICN 27.6/17.4 and 27.5/16.8.
Shape: TagMatch leads by about an order of magnitude; the ICN matcher is
competitive with (slightly ahead of) the plain prefix tree; match and
match-unique are close for the CPU systems.
"""

from repro.harness import experiments


def test_table3_cpu_systems(benchmark, workload, publish):
    result = benchmark.pedantic(
        lambda: experiments.table3_cpu_systems(workload), rounds=1, iterations=1
    )
    publish(result)
    cells = result.data["cells"]

    for frac in (0.1, 0.2):
        for mode in ("match", "match-unique"):
            tagmatch = cells[f"TagMatch|{mode}|{frac}"]
            tree = cells[f"Prefix tree|{mode}|{frac}"]
            icn = cells[f"ICN matcher|{mode}|{frac}"]
            # TagMatch leads both CPU systems by a wide margin.
            assert tagmatch > 3 * tree
            assert tagmatch > 3 * icn

    # Both CPU matchers slow down when the database doubles.
    assert cells["Prefix tree|match|0.1"] > cells["Prefix tree|match|0.2"]
    assert cells["ICN matcher|match|0.1"] > cells["ICN matcher|match|0.2"]

    # match vs match-unique is a small effect for the tree systems.
    tree_m = cells["Prefix tree|match|0.1"]
    tree_u = cells["Prefix tree|match-unique|0.1"]
    assert 0.5 < tree_m / tree_u < 2.0
