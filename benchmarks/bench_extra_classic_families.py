"""Extra (beyond the paper's figures) — the §1 argument, measured.

§1: *"both types of existing algorithms ... reduce to an iteration over
sets and neither one is ideal in all cases: one is a linear scan of the
database; the other one iterates over the subsets q_j ⊆ q and therefore
is exponential in the size of the query."*

This bench puts numbers behind that sentence: the scan-family systems
(linear scan, inverted-list counting) degrade linearly with the database
and are insensitive to query size, while the query-subset hash table is
database-size-insensitive but blows up exponentially with query size —
and TagMatch beats both families.
"""

import time

import numpy as np

from repro.baselines.inverted_index import InvertedIndexMatcher
from repro.baselines.linear_scan import LinearScanMatcher
from repro.baselines.query_subset_hash import QuerySubsetHashMatcher
from repro.harness.reporting import ExperimentResult
from repro.harness.runner import measure_matcher
from repro.harness.workload_cache import build_engine
from repro.harness.experiments import _best_run


def run_experiment(workload):
    rows = []
    data = {}

    # --- scan family vs database size (fixed queries) ---
    for frac in (0.1, 0.3):
        blocks, keys = workload.fraction(frac)
        queries = workload.queries(512, seed=77, fraction=frac)
        scan = LinearScanMatcher()
        scan.build(blocks, keys)
        inv = InvertedIndexMatcher()
        inv.build(blocks, keys)
        scan_qps = measure_matcher("scan", scan.match_many, queries.blocks[:64]).qps
        inv_qps = measure_matcher("inv", inv.match_many, queries.blocks[:64]).qps
        engine = build_engine(blocks, keys)
        tm_qps = _best_run(engine, queries.blocks).throughput_qps
        engine.close()
        data[f"scan@{frac}"] = scan_qps
        data[f"inv@{frac}"] = inv_qps
        data[f"tm@{frac}"] = tm_qps
        rows.append([f"{frac:.0%} db", scan_qps, inv_qps, tm_qps, None])

    # --- subset-enumeration family vs query size (fixed database) ---
    hash_matcher = QuerySubsetHashMatcher()
    n = max(1, int(0.1 * workload.num_associations))
    hash_matcher.build(
        workload.interests.tag_sets[:n], workload.keys[:n].tolist()
    )
    for qsize in (6, 10, 14, 18):
        queries = workload.queries(
            16, seed=78, fraction=0.1, extra_tags=(0, 0)
        )
        padded = []
        for tags in queries.tag_sets:
            tags = set(tags)
            fill = iter(sorted(hash_matcher._vocabulary))
            while len(tags) < qsize:
                tags.add(next(fill))
            padded.append(tags)
        start = time.perf_counter()
        for q in padded:
            hash_matcher.match(q)
        qps = len(padded) / (time.perf_counter() - start)
        probes = int(np.mean([hash_matcher.probes_for(q) for q in padded]))
        data[f"hash@{qsize}"] = qps
        rows.append([f"{qsize}-tag queries", None, None, None, qps])
        data[f"probes@{qsize}"] = probes
    return ExperimentResult(
        name="extra_classic_families",
        title="The two classic solution families (§1/§5) vs TagMatch: "
        "scan-family throughput vs DB size; subset-enumeration throughput "
        "vs query size (q/s)",
        headers=["configuration", "linear scan", "inverted index", "TagMatch",
                 "subset-hash"],
        rows=rows,
        notes="Scan-family systems degrade with database size; the "
        "subset-hash family collapses exponentially with query size.",
        data=data,
    )


def test_extra_classic_families(benchmark, workload, publish):
    result = benchmark.pedantic(
        lambda: run_experiment(workload), rounds=1, iterations=1
    )
    publish(result)
    data = result.data

    # Scan family: bigger database, lower throughput.
    assert data["scan@0.1"] > data["scan@0.3"]
    assert data["inv@0.1"] > data["inv@0.3"]

    # TagMatch beats both scan-family systems at both sizes.
    for frac in (0.1, 0.3):
        assert data[f"tm@{frac}"] > data[f"scan@{frac}"]
        assert data[f"tm@{frac}"] > data[f"inv@{frac}"]

    # Subset enumeration: cost explodes with query size.
    assert data["hash@6"] > 10 * data["hash@18"]
    assert data["probes@18"] > 100 * data["probes@6"]
