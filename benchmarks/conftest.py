"""Shared fixtures for the benchmark suite.

The full-scale Twitter workload (≈ 10 s to generate at the default
1/1024 scale) is generated once per session and shared by every bench
module.  Results are written to ``benchmarks/results/`` and printed.
"""

import os

import pytest

from repro.harness.reporting import ExperimentResult, save_result
from repro.harness.workload_cache import twitter_workload

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def workload():
    return twitter_workload()


@pytest.fixture(scope="session")
def publish():
    """Save an ExperimentResult and echo it to the terminal."""

    def _publish(result: ExperimentResult) -> ExperimentResult:
        save_result(result, RESULTS_DIR)
        print("\n" + result.to_text())
        return result

    return _publish
