"""Compile benchmarks/results/*.txt into one REPORT.md with ASCII charts.

Run after the benchmark suite::

    python benchmarks/render_report.py

Reads the per-experiment text tables written by the benches and, for the
figure-style experiments, re-plots the key series as ASCII charts so the
trends are visible at a glance.
"""

from __future__ import annotations

import os
import re
import sys

from repro.harness.reporting import format_series_chart

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Experiments rendered as charts: name -> (x column, [y columns], log).
CHARTS = {
    "fig2_fig3_query_size": (0, {"TagMatch q/s": 1, "tree q/s": 2}, True),
    "fig3_output_rate": (0, {"TagMatch keys/s": 3, "tree keys/s": 4}, True),
    "fig4_db_size": (0, {"TagMatch match": 1, "tree match": 3}, True),
    "fig5_threads": (0, {"match": 1, "match-unique": 2}, False),
    "fig7_maxp": (0, {"match": 2, "match-unique": 3}, False),
    "fig8_partitioning_time": (1, {"seconds": 2}, False),
    "fig9_memory": (0, {"host MB": 1, "GPU MB": 4}, False),
    "fig11_mongo_sharding": (0, {"q/s": 1}, False),
}

ORDER = [
    "table1_summary",
    "table3_cpu_systems",
    "fig2_fig3_query_size",
    "fig3_output_rate",
    "fig4_db_size",
    "fig5_threads",
    "fig6_latency",
    "fig7_maxp",
    "fig8_partitioning_time",
    "fig9_memory",
    "fig10_mongodb",
    "fig11_mongo_sharding",
    "sec45_gpu_only_design",
    "ablation_prefilter",
    "ablation_packing",
    "ablation_pivot",
    "extra_classic_families",
    "backend_scaling",
    "kernel_hotpath",
    "service_throughput",
    "obs_overhead",
]


def parse_table(text: str) -> tuple[list[str], list[list[str]]]:
    """Recover header and rows from a rendered result table."""
    lines = [line for line in text.splitlines() if line.strip()]
    body = []
    header: list[str] = []
    seen_rule = False
    for line in lines[1:]:
        if set(line.strip()) <= {"-", " "} and line.strip():
            seen_rule = True
            continue
        if not header:
            header = re.split(r"\s{2,}", line.strip())
            continue
        if seen_rule:
            body.append(re.split(r"\s{2,}", line.strip()))
    return header, body


def numeric(cell: str) -> float | None:
    cell = cell.replace("%", "").replace("M", "").replace("ms", "")
    try:
        return float(cell)
    except ValueError:
        return None


def render(name: str, text: str) -> str:
    out = [text.rstrip()]
    spec = CHARTS.get(name)
    if spec:
        x_col, series_cols, log_y = spec
        _, rows = parse_table(text)
        rows = [r for r in rows if len(r) > max(series_cols.values())]
        xs = [r[x_col] for r in rows]
        series = {
            label: [numeric(r[col]) for r in rows]
            for label, col in series_cols.items()
        }
        series = {
            label: ys for label, ys in series.items() if any(v for v in ys)
        }
        if xs and series:
            out.append("")
            out.append(format_series_chart(xs, series, log_y=log_y))
    return "\n".join(out)


def main() -> int:
    if not os.path.isdir(RESULTS_DIR):
        print("no results yet: run `pytest benchmarks/ --benchmark-only` first")
        return 1
    sections = []
    for name in ORDER:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        if not os.path.exists(path):
            continue
        with open(path) as handle:
            sections.append(render(name, handle.read()))
    report = (
        "# Benchmark report\n\n"
        "Generated from benchmarks/results/ by render_report.py.\n\n```\n"
        + "\n\n".join(sections)
        + "\n```\n"
    )
    out_path = os.path.join(RESULTS_DIR, "REPORT.md")
    with open(out_path, "w") as handle:
        handle.write(report)
    print(f"wrote {out_path} ({len(sections)} experiments)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
