"""Figure 4 — throughput vs database size (20 %–100 %).

Paper shape: TagMatch falls from ~140 kq/s at 20 % to ~35 kq/s (match) /
~30 kq/s (match-unique) at 100 %; the prefix tree falls from ~14 kq/s to
~4.4 kq/s; TagMatch leads by roughly an order of magnitude throughout,
and match is slightly faster than match-unique.
"""

from repro.harness import experiments


def test_fig4_db_size(benchmark, workload, publish):
    result = benchmark.pedantic(
        lambda: experiments.fig4_db_size(workload), rounds=1, iterations=1
    )
    publish(result)
    data = result.data

    # Bigger databases are slower for every series.
    for series in ("tm_match", "tm_unique", "tree_match", "tree_unique"):
        assert data[series][0] > data[series][-1], series

    # TagMatch leads the prefix tree at every size, in both modes.
    assert all(t > r for t, r in zip(data["tm_match"], data["tree_match"]))
    assert all(t > r for t, r in zip(data["tm_unique"], data["tree_unique"]))

    # match and match-unique stay close for the tree (paper: both ~4.4k).
    assert all(
        0.4 < m / u < 2.5
        for m, u in zip(data["tree_match"], data["tree_unique"])
    )
