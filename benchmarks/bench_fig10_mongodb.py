"""Figure 10 — MongoDB vs TagMatch on crafted small workloads.

Paper shape (log scale): MongoDB takes seconds per query even at 1 M
documents and degrades with database size, while neither the tags per
document nor the tags per query move it much; TagMatch processes more
than 32,000 queries per second on the most challenging configuration —
an advantage of 4–5 orders of magnitude at paper scale.  (Our document
store's collection scan is a constant factor faster than real MongoDB's
BSON interpreter, so the measured gap is smaller; the shapes hold.)
"""

from collections import defaultdict

from repro.harness import experiments


def test_fig10_mongodb(benchmark, publish):
    result = benchmark.pedantic(
        lambda: experiments.fig10_mongodb(), rounds=1, iterations=1
    )
    publish(result)
    data = result.data

    mongo = defaultdict(dict)
    for key, value in data.items():
        if key.endswith("|mongo"):
            millions, tags_per_set, qtags, _ = key.split("|")
            mongo[(int(millions), int(tags_per_set))][int(qtags)] = value

    # TagMatch dominates MongoDB: clearly above MongoDB's *best* (small
    # database) configuration, and by an order of magnitude at the same
    # (largest) database size.
    best_mongo = max(max(series.values()) for series in mongo.values())
    assert data["tagmatch_hardest"] > 2 * best_mongo
    largest = max(m for m, _ in mongo)
    mongo_at_largest = max(
        max(series.values())
        for (m, _), series in mongo.items()
        if m == largest
    )
    assert data["tagmatch_hardest"] > 8 * mongo_at_largest

    # MongoDB degrades with database size (1M vs 5M at fixed config).
    assert mongo[(1, 3)][6] > mongo[(5, 3)][6]

    # MongoDB is roughly insensitive to tags per query (same order of
    # magnitude across the sweep).
    for config, series in mongo.items():
        values = list(series.values())
        assert max(values) < 8 * min(values), config
