"""§4.5 — the alternative GPU-only (dynamic parallelism) design.

Paper shape: the GPU-only architecture works well when the vast majority
of packets are filtered out in pre-processing, but loses when many reach
the subset-match phase — the per-query atomic queue appends and the
random global-memory access pattern dominate.  The bench sweeps the
fraction of matching queries and compares simulated device time.
"""

from repro.harness import experiments


def test_sec45_gpu_only_design(benchmark, workload, publish):
    result = benchmark.pedantic(
        lambda: experiments.sec45_gpu_only_design(workload), rounds=1, iterations=1
    )
    publish(result)
    hybrid = result.data["hybrid_us"]
    gpu_only = result.data["gpu_only_us"]

    # The GPU-only design's relative cost grows with the fraction of
    # queries that reach subset match.
    ratio_selective = gpu_only[0] / max(hybrid[0], 1e-9)
    ratio_matching = gpu_only[-1] / max(hybrid[-1], 1e-9)
    assert ratio_matching > ratio_selective

    # At full match load the hybrid design wins outright.
    assert gpu_only[-1] > hybrid[-1]
