"""Figure 8 — off-line partitioning time vs database size (+ §4.3.6).

Paper shape: the balanced partitioning of Algorithm 1 is linear in the
number of sets, topping out around 50 s for the full 200 M-set workload;
MongoDB needs ~33 s to index just 5 M sets, for which partitioning takes
~2 s (a ~16x gap).
"""

from repro.harness import experiments


def test_fig8_partitioning_time(benchmark, workload, publish):
    result = benchmark.pedantic(
        lambda: experiments.fig8_partitioning_time(workload), rounds=1, iterations=1
    )
    publish(result)
    sets = result.data["sets"]
    seconds = result.data["seconds"]

    # Roughly linear: time per set at the largest size is within a small
    # factor of the smallest size (quadratic growth would blow this up).
    per_set_small = seconds[0] / sets[0]
    per_set_large = seconds[-1] / sets[-1]
    assert per_set_large < 8 * per_set_small

    # More sets take more time end-to-end.
    assert seconds[-1] > seconds[0]

    # §4.3.6: MongoDB's index build is much slower than partitioning on
    # the same (scaled 5M-set) database.
    assert result.data["mongo_index_s"][0] > result.data["partition_5m_s"][0]
