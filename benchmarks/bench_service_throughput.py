"""Service sweep: ingress deadline × offered load, in-process.

Starts a :class:`repro.service.server.MatchServer` on an ephemeral port
and drives the open-loop Poisson load generator against it — one cell
per (batch deadline, offered rate) pair.  The sweep reproduces the
Figure 6 trade-off at the serving layer: a longer ingress deadline buys
batch occupancy (throughput) at the price of publish latency, until
admission control starts bouncing publishes under overload.

Writes machine-readable ``BENCH_service.json`` at the repo root plus the
usual text table under ``benchmarks/results/service_throughput.txt``.

Run standalone (pytest never collects it — no test functions)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --smoke  # ~15 s budget
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.config import ServiceConfig, TagMatchConfig  # noqa: E402
from repro.core.engine import TagMatch  # noqa: E402
from repro.harness.reporting import ExperimentResult, save_result  # noqa: E402
from repro.service.loadgen import run_loadgen  # noqa: E402
from repro.service.server import MatchServer  # noqa: E402

RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")
DEFAULT_JSON = os.path.join(REPO_ROOT, "BENCH_service.json")


def build_engine(num_sets: int) -> TagMatch:
    cfg = TagMatchConfig(
        max_partition_size=64,
        batch_size=256,
        batch_timeout_s=None,
        num_threads=2,
    )
    engine = TagMatch(cfg)
    rng = np.random.default_rng(42)
    num_tags = 96
    for key in range(num_sets):
        size = int(rng.integers(1, 7))
        chosen = rng.choice(num_tags, size=size, replace=False)
        engine.add_set({f"tag-{c}" for c in chosen}, key=key)
    engine.consolidate()
    return engine


async def run_cell(
    num_sets: int, deadline_ms: float, rate_qps: float, duration_s: float
) -> dict:
    config = ServiceConfig(
        port=0,
        ingress_batch_size=64,
        batch_deadline_s=deadline_ms / 1e3,
        min_deadline_s=min(1e-3, deadline_ms / 1e3),
        max_deadline_s=max(0.1, deadline_ms / 1e3),
        reconsolidate_threshold=256,
        reconsolidate_interval_s=0.25,
    )
    # Each cell owns its engine: reconsolidation swaps retire the engine
    # a server started with, so engines cannot be shared across cells.
    server = MatchServer(build_engine(num_sets), config)
    await server.start()
    try:
        report = await run_loadgen(
            "127.0.0.1",
            server.port,
            duration_s=duration_s,
            rate_qps=rate_qps,
            sub_ratio=0.04,
            unsub_ratio=0.02,
            connections=4,
            seed=int(deadline_ms * 1000 + rate_qps),
        )
        stats = server.stats()
    finally:
        await server.shutdown()
    pct = report.percentiles()
    return {
        "deadline_ms": deadline_ms,
        "offered_qps": round(report.offered_qps, 1),
        "qps": round(report.qps, 1),
        "p50_ms": round(pct["p50_ms"], 2),
        "p99_ms": round(pct["p99_ms"], 2),
        "overload_rate": round(report.overload_rate, 4),
        "batch_occupancy": round(stats["batch_occupancy"], 2),
        "failed": report.failed,
        "reconsolidations": stats["reconsolidations"],
    }


def sweep(smoke: bool, json_path: str) -> ExperimentResult:
    num_sets = 400 if smoke else 2000
    duration_s = 1.5 if smoke else 5.0
    deadlines_ms = (2.0, 10.0) if smoke else (1.0, 5.0, 10.0, 25.0)
    rates = (300.0,) if smoke else (200.0, 500.0, 1000.0)

    records = []
    rows = []
    for deadline_ms in deadlines_ms:
        for rate in rates:
            record = asyncio.run(run_cell(num_sets, deadline_ms, rate, duration_s))
            records.append(record)
            rows.append(
                [
                    deadline_ms,
                    record["offered_qps"],
                    record["qps"],
                    record["p50_ms"],
                    record["p99_ms"],
                    round(record["overload_rate"] * 100, 2),
                    record["batch_occupancy"],
                ]
            )
            print(
                f"deadline={deadline_ms:5.1f}ms rate={rate:6.0f}/s: "
                f"{record['qps']:7.1f} qps, p99={record['p99_ms']:6.1f}ms, "
                f"occupancy={record['batch_occupancy']:5.1f}",
                flush=True,
            )

    with open(json_path, "w") as handle:
        json.dump(records, handle, indent=2)
        handle.write("\n")
    print(f"wrote {json_path} ({len(records)} records)")

    return ExperimentResult(
        name="service_throughput",
        title="Serving layer: ingress deadline vs offered load (open loop)",
        headers=[
            "deadline ms",
            "offered q/s",
            "qps",
            "p50 ms",
            "p99 ms",
            "overload %",
            "occupancy",
        ],
        rows=rows,
        notes=(
            "Open-loop Poisson publishes with 6% live sub/unsub mix over\n"
            "the pub/sub server (repro.service).  Longer ingress deadlines\n"
            "trade publish latency for batch occupancy — the Figure 6\n"
            "throughput/latency knob, re-measured end to end through the\n"
            "wire protocol, delta overlay, and background reconsolidation."
        ),
        data={"records": records},
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="two cells, short bursts (~15 s total, used by CI)",
    )
    parser.add_argument(
        "--json",
        default=DEFAULT_JSON,
        help="output path for the machine-readable records",
    )
    args = parser.parse_args(argv)
    result = sweep(args.smoke, args.json)
    save_result(result, RESULTS_DIR)
    print("\n" + result.to_text())
    return 0


if __name__ == "__main__":
    sys.exit(main())
