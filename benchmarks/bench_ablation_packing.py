"""Ablation — the §3.3.1 packed result layout vs the alternatives.

The packed 4-query-ids + 4-set-ids group layout uses 5 bytes/pair where
the aligned struct needs 8 (a 37.5 % bus saving), and unlike the
two-array layout it needs a single copy per result set.
"""

from repro.harness import experiments


def test_ablation_packing(benchmark, workload, publish):
    result = benchmark.pedantic(
        lambda: experiments.ablation_packing(workload), rounds=1, iterations=1
    )
    publish(result)
    data = result.data

    assert data["pairs"] > 0
    assert data["packed"] < data["naive"]
    # The paper's 37.5 % saving (to within partial-group rounding).
    saving = 1 - data["packed"] / data["naive"]
    assert 0.30 < saving <= 0.38
