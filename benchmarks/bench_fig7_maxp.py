"""Figure 7 — throughput vs maximum partition size (MAX_P).

Paper shape: throughput rises with MAX_P, peaks around 200 K sets per
partition, and stays roughly stable beyond; match and match-unique track
each other.  MAX_P here sweeps the equivalent scaled range.
"""

from repro.harness import experiments

MAXP_VALUES = (50, 100, 200, 400, 800, 1600, 3200, 6400)


def test_fig7_maxp(benchmark, workload, publish):
    result = benchmark.pedantic(
        lambda: experiments.fig7_maxp(workload, MAXP_VALUES), rounds=1, iterations=1
    )
    publish(result)
    match = result.data["match"]
    unique = result.data["unique"]

    # The knob matters: best and worst settings differ measurably.
    assert max(match) > 1.2 * min(match)

    # The curve is stable near its optimum: the best setting's neighbours
    # are within a modest band of the peak (no knife-edge).
    best = match.index(max(match))
    neighbours = [match[i] for i in (best - 1, best + 1) if 0 <= i < len(match)]
    assert all(v > 0.5 * match[best] for v in neighbours)

    # match and match-unique do not differ significantly (paper text).
    assert all(0.4 < m / u < 2.5 for m, u in zip(match, unique))

    # Fewer partitions for larger MAX_P (sanity of the sweep itself).
    partitions = result.data["partitions"]
    assert partitions[0] > partitions[-1]
