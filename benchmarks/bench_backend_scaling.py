"""Backend scaling sweep: throughput of inline vs thread vs process.

Sweeps the execution backends (and worker counts for the pooled ones)
over one pipelined query stream and writes a machine-readable
``BENCH_pipeline.json`` at the repo root, plus the usual text table
under ``benchmarks/results/backend_scaling.txt``.

This is the host-side analogue of the paper's §4.3.3 thread sweep
(Figure 5): the process backend is the configuration where stage-2
kernels genuinely occupy extra cores, so on a multi-core host its qps
should rise above inline while the thread backend is GIL-bound.

Run standalone (pytest never collects it — no test functions)::

    PYTHONPATH=src python benchmarks/bench_backend_scaling.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_backend_scaling.py --smoke  # ~30 s budget
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import warnings

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.config import TagMatchConfig  # noqa: E402
from repro.core.engine import TagMatch  # noqa: E402
from repro.harness.reporting import ExperimentResult, save_result  # noqa: E402

RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")
DEFAULT_JSON = os.path.join(REPO_ROOT, "BENCH_pipeline.json")


def build_engine(backend: str, workers: int | None, *, num_sets: int) -> TagMatch:
    cfg = TagMatchConfig(
        max_partition_size=64,
        batch_size=32,
        batch_timeout_s=0.01,
        num_threads=4,
        backend=backend,
        backend_workers=workers,
    )
    engine = TagMatch(cfg)
    rng = np.random.default_rng(42)
    num_tags = 96
    for key in range(num_sets):
        size = int(rng.integers(1, 7))
        chosen = rng.choice(num_tags, size=size, replace=False)
        engine.add_set({f"tag-{c}" for c in chosen}, key=key)
    engine.consolidate()
    return engine


def make_queries(engine: TagMatch, num_queries: int) -> np.ndarray:
    rng = np.random.default_rng(7)
    tag_sets = [
        {f"tag-{c}" for c in rng.choice(96, size=12, replace=False)}
        for _ in range(num_queries)
    ]
    return engine.encode_queries(tag_sets)


def measure(engine: TagMatch, queries: np.ndarray, repeats: int) -> dict:
    engine.match_stream(queries[: max(8, len(queries) // 8)])  # warm-up
    best = None
    for _ in range(repeats):
        run = engine.match_stream(queries)
        record = {
            "qps": run.throughput_qps,
            "output_keys_per_s": run.output_keys / run.elapsed_s
            if run.elapsed_s > 0
            else 0.0,
            "kernel_wall_s": run.stats.kernel_wall_s,
        }
        if best is None or record["qps"] > best["qps"]:
            best = record
    return best


def sweep(smoke: bool, json_path: str) -> ExperimentResult:
    num_sets = 400 if smoke else 2000
    num_queries = 120 if smoke else 600
    repeats = 1 if smoke else 3
    worker_counts = (2,) if smoke else (2, 4)

    configs: list[tuple[str, int | None]] = [("inline", None)]
    configs += [("thread", w) for w in worker_counts]
    configs += [("process", w) for w in worker_counts]
    # Default policy row: backend="process" with no pinned worker count.
    # On a single-core host create_backend degrades this to the thread
    # backend, which is the configuration the acceptance bar holds to
    # "within 10% of inline" there; on multi-core it is a real pool.
    configs.append(("process", None))

    records = []
    rows = []
    for backend, workers in configs:
        with warnings.catch_warnings():
            if workers is not None:
                # An explicit worker count forces a real pool even on
                # single-core hosts; no fallback warnings expected.
                warnings.simplefilter("error", RuntimeWarning)
            else:
                warnings.simplefilter("ignore", RuntimeWarning)
            engine = build_engine(backend, workers, num_sets=num_sets)
        try:
            effective = engine.backend.workers
            effective_backend = engine.backend.name
            queries = make_queries(engine, num_queries)
            start = time.perf_counter()
            record = measure(engine, queries, repeats)
            elapsed = time.perf_counter() - start
        finally:
            engine.close()
        record["backend"] = backend
        record["workers"] = effective
        record["effective_backend"] = effective_backend
        record["pinned_workers"] = workers is not None
        records.append(record)
        label = (
            backend
            if workers is not None or backend == "inline"
            else f"{backend} (default)"
        )
        rows.append(
            [
                label,
                effective,
                round(record["qps"], 1),
                round(record["output_keys_per_s"], 1),
                round(record["kernel_wall_s"], 4),
            ]
        )
        print(
            f"{label:>18} workers={effective}: {record['qps']:8.1f} qps "
            f"({elapsed:.1f} s measured)",
            flush=True,
        )

    with open(json_path, "w") as handle:
        json.dump(records, handle, indent=2)
        handle.write("\n")
    print(f"wrote {json_path} ({len(records)} records)")

    inline_qps = next(r["qps"] for r in records if r["backend"] == "inline")
    best_process = max(
        (r["qps"] for r in records if r["backend"] == "process"), default=0.0
    )
    return ExperimentResult(
        name="backend_scaling",
        title="Execution backend scaling (inline vs thread vs process)",
        headers=["backend", "workers", "qps", "keys/s", "kernel wall s"],
        rows=rows,
        notes=(
            f"host cores: {os.cpu_count()}; best process/inline qps ratio: "
            f"{best_process / inline_qps:.2f}x.  Process workers execute\n"
            "stage-2 kernels on separate cores over shared-memory partition\n"
            "views (paper §4.3.3 thread sweep, host-side analogue)."
        ),
        data={"records": records},
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload, single repeat (~30 s total, used by CI)",
    )
    parser.add_argument(
        "--json",
        default=DEFAULT_JSON,
        help="output path for the machine-readable records",
    )
    args = parser.parse_args(argv)
    result = sweep(args.smoke, args.json)
    save_result(result, RESULTS_DIR)
    print("\n" + result.to_text())
    return 0


if __name__ == "__main__":
    sys.exit(main())
