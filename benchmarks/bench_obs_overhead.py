"""Observability overhead: tracing-on must cost < 5 % of throughput.

The span tracer wires into every stage of the hot path (pre-process,
kernel, transfer, post-process, stream ops), so its cost has to be
proven, not assumed.  This bench runs the same match workload with the
tracer disabled and enabled, interleaving the repeats so clock drift and
cache state hit both modes equally, and reports the throughput delta.

Writes machine-readable ``BENCH_obs.json`` at the repo root (consumed by
the CI schema check, which enforces the < 5 % acceptance bar) plus the
usual text table under ``benchmarks/results/obs_overhead.txt``.

Run standalone (pytest never collects it — no test functions)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py          # full run
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke  # CI budget
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.config import TagMatchConfig  # noqa: E402
from repro.core.engine import TagMatch  # noqa: E402
from repro.harness.reporting import ExperimentResult, save_result  # noqa: E402
from repro.obs import trace  # noqa: E402

RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")
DEFAULT_JSON = os.path.join(REPO_ROOT, "BENCH_obs.json")

#: Acceptance bar: tracing-on may cost at most this share of throughput.
MAX_OVERHEAD_PCT = 5.0


def build_engine(num_sets: int) -> TagMatch:
    engine = TagMatch(
        TagMatchConfig(
            max_partition_size=64,
            batch_size=64,
            batch_timeout_s=0.01,
            num_threads=4,
        )
    )
    rng = np.random.default_rng(42)
    for key in range(num_sets):
        size = int(rng.integers(1, 6))
        chosen = rng.choice(256, size=size, replace=False)
        engine.add_set({f"tag-{c}" for c in chosen}, key=key)
    engine.consolidate()
    return engine


def build_queries(engine: TagMatch, num_queries: int) -> np.ndarray:
    rng = np.random.default_rng(7)
    tag_sets = [
        {f"tag-{c}" for c in rng.choice(256, size=8, replace=False)}
        for _ in range(num_queries)
    ]
    return engine.encode_queries(tag_sets)


def measure_modes(
    engine: TagMatch, queries: np.ndarray, repeats: int
) -> tuple[dict, dict]:
    """Best-of-``repeats`` qps per mode, with the modes interleaved.

    Interleaving means a slow machine moment (GC, CI noise burst) costs
    both modes equally instead of biasing whichever ran second.
    """
    trace.disable()
    trace.clear()
    engine.match_stream(queries[: max(8, len(queries) // 8)])  # warm-up
    best = {"off": 0.0, "on": 0.0}
    spans_per_run = 0
    for _ in range(repeats):
        for mode in ("off", "on"):
            if mode == "on":
                trace.enable()
                trace.clear()
            else:
                trace.disable()
            run = engine.match_stream(queries)
            best[mode] = max(best[mode], run.throughput_qps)
            if mode == "on":
                spans_per_run = trace.count()
    trace.disable()
    trace.clear()
    off = {"mode": "trace_off", "qps": best["off"]}
    on = {"mode": "trace_on", "qps": best["on"], "spans_per_run": spans_per_run}
    return off, on


def measure_primitive_costs() -> dict:
    """Microbench of the two per-event primitives (ns/op)."""
    n = 200_000
    trace.disable()
    t0 = perf_counter()
    for _ in range(n):
        with trace.span("kernel"):
            pass
    disabled_ns = (perf_counter() - t0) / n * 1e9
    trace.enable()
    trace.clear()
    t0 = perf_counter()
    for _ in range(n):
        trace.record("kernel", 0.0, 1e-6, None)
    record_ns = (perf_counter() - t0) / n * 1e9
    trace.disable()
    trace.clear()
    return {"disabled_span_ns": disabled_ns, "enabled_record_ns": record_ns}


def run(smoke: bool, json_path: str) -> ExperimentResult:
    # Runs must be long enough that scheduler noise cannot masquerade as
    # tracer overhead: at ~15k qps, 1024 queries is a ~70 ms run, which
    # bounds timer jitter to well under the 5 % bar.
    num_sets = 600 if smoke else 2400
    num_queries = 1024 if smoke else 2048
    repeats = 5 if smoke else 7

    engine = build_engine(num_sets)
    try:
        queries = build_queries(engine, num_queries)
        off, on = measure_modes(engine, queries, repeats)
    finally:
        engine.close()
        trace.disable()
        trace.clear()

    overhead_pct = (
        (off["qps"] - on["qps"]) / off["qps"] * 100.0 if off["qps"] > 0 else 0.0
    )
    costs = measure_primitive_costs()
    shared = {
        "num_sets": num_sets,
        "num_queries": num_queries,
        "repeats": repeats,
    }
    off.update(shared)
    on.update(shared)
    on["overhead_pct"] = overhead_pct
    on["max_overhead_pct"] = MAX_OVERHEAD_PCT
    on.update(costs)
    records = [off, on]

    with open(json_path, "w") as handle:
        json.dump(records, handle, indent=2)
        handle.write("\n")
    print(f"wrote {json_path} ({len(records)} records)")
    print(
        f"trace off: {off['qps']:8.1f} qps | trace on: {on['qps']:8.1f} qps "
        f"({on['spans_per_run']} spans/run) -> overhead {overhead_pct:+.2f}% "
        f"(bar {MAX_OVERHEAD_PCT:.0f}%)"
    )
    print(
        f"primitives: disabled span {costs['disabled_span_ns']:.0f} ns/op, "
        f"enabled record {costs['enabled_record_ns']:.0f} ns/op"
    )

    rows = [
        ["trace_off", round(off["qps"], 1), 0, "", ""],
        [
            "trace_on",
            round(on["qps"], 1),
            on["spans_per_run"],
            f"{overhead_pct:+.2f}%",
            f"<{MAX_OVERHEAD_PCT:.0f}%",
        ],
    ]
    return ExperimentResult(
        name="obs_overhead",
        title="Observability overhead (span tracing on vs off)",
        headers=["mode", "qps", "spans/run", "overhead", "bar"],
        rows=rows,
        notes=(
            "Best-of-repeats throughput with modes interleaved per repeat.\n"
            f"Disabled-path span() costs {costs['disabled_span_ns']:.0f} ns "
            f"(one flag check + shared no-op manager); enabled record() "
            f"costs {costs['enabled_record_ns']:.0f} ns (locked ring append).\n"
            "Acceptance: tracing-on costs < 5% of pipeline throughput; the\n"
            "CI schema check enforces overhead_pct on every push."
        ),
        data={"records": records},
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload and fewer repeats (CI budget)",
    )
    parser.add_argument(
        "--json",
        default=DEFAULT_JSON,
        help="output path for the machine-readable records",
    )
    args = parser.parse_args(argv)
    result = run(args.smoke, args.json)
    save_result(result, RESULTS_DIR)
    print("\n" + result.to_text())
    return 0


if __name__ == "__main__":
    sys.exit(main())
