"""Kernel hot-path sweep: fused launches, coarse pre-filter, memoization.

Runs two adversarial workloads against every hot-path knob combination
and writes machine-readable ``BENCH_kernel.json`` at the repo root, plus
the usual text table under ``benchmarks/results/kernel_hotpath.txt``:

* ``small_partition`` — thousands of tiny sets producing many partitions
  far below one thread block.  This is the launch-overhead regime of the
  paper's Figure 7 discussion: per-launch fixed cost dominates, so the
  fused multi-partition launches (``fuse_partitions_below``) should cut
  the kernel-stage wall clock by well over the 1.5x acceptance bar.
* ``duplicate_heavy`` — a query stream drawn from a small pool of
  distinct signatures (the paper's §4.2.1 duplicate-interest
  observation).  Batch canonicalisation (``query_memo_size > 0``)
  deduplicates each batch before the device sees it.

Each workload is swept with every optimisation off (the baseline), each
optimisation alone, and all of them together; results are always
bitwise-identical (see tests/core/test_hotpath_equivalence.py), so only
the timing columns vary.

Run standalone (pytest never collects it — no test functions)::

    PYTHONPATH=src python benchmarks/bench_kernel_hotpath.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_kernel_hotpath.py --smoke  # ~30 s budget
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.config import TagMatchConfig  # noqa: E402
from repro.core.engine import TagMatch  # noqa: E402
from repro.harness.reporting import ExperimentResult, save_result  # noqa: E402

RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")
DEFAULT_JSON = os.path.join(REPO_ROOT, "BENCH_kernel.json")

#: Knob combinations: all off (the baseline), one at a time, all on.
VARIANTS = {
    "all_off": dict(fuse_partitions_below=0, coarse_prefilter=False, query_memo_size=0),
    "fused": dict(fuse_partitions_below=64, coarse_prefilter=False, query_memo_size=0),
    "coarse": dict(fuse_partitions_below=0, coarse_prefilter=True, query_memo_size=0),
    "memo": dict(fuse_partitions_below=0, coarse_prefilter=False, query_memo_size=256),
    "all_on": dict(
        fuse_partitions_below=64, coarse_prefilter=True, query_memo_size=256
    ),
}


def _populate(engine: TagMatch, *, num_sets: int, num_tags: int, size_hi: int) -> None:
    rng = np.random.default_rng(42)
    for key in range(num_sets):
        size = int(rng.integers(1, size_hi + 1))
        chosen = rng.choice(num_tags, size=size, replace=False)
        engine.add_set({f"tag-{c}" for c in chosen}, key=key)
    engine.consolidate()


def small_partition_engine(knobs: dict, *, num_sets: int) -> TagMatch:
    """Thousands of 1-3 tag sets over a wide universe: hundreds of
    partitions of <= 4 rows, the launch-overhead-dominated regime."""
    engine = TagMatch(
        TagMatchConfig(
            max_partition_size=4,
            batch_size=64,
            batch_timeout_s=0.01,
            num_threads=4,
            **knobs,
        )
    )
    _populate(engine, num_sets=num_sets, num_tags=400, size_hi=3)
    return engine


def small_partition_queries(engine: TagMatch, num_queries: int) -> np.ndarray:
    """Distinct wide queries — every signature unique, no memo help."""
    rng = np.random.default_rng(7)
    tag_sets = [
        {f"tag-{c}" for c in rng.choice(400, size=12, replace=False)}
        for _ in range(num_queries)
    ]
    return engine.encode_queries(tag_sets)


def duplicate_heavy_engine(knobs: dict, *, num_sets: int) -> TagMatch:
    """Large partitions and full 256-query batches: per-query kernel work
    dominates, which is exactly what batch deduplication removes."""
    engine = TagMatch(
        TagMatchConfig(
            max_partition_size=256,
            batch_size=256,
            batch_timeout_s=0.01,
            num_threads=4,
            **knobs,
        )
    )
    _populate(engine, num_sets=num_sets, num_tags=96, size_hi=6)
    return engine


def duplicate_heavy_queries(engine: TagMatch, num_queries: int) -> np.ndarray:
    """A stream drawn from 8 distinct signatures: ~32x batch duplication
    at full 256-query batch occupancy."""
    rng = np.random.default_rng(11)
    pool = [
        {f"tag-{c}" for c in rng.choice(96, size=12, replace=False)}
        for _ in range(8)
    ]
    choices = rng.integers(0, len(pool), size=num_queries)
    return engine.encode_queries([pool[i] for i in choices])


def measure(engine: TagMatch, queries: np.ndarray, repeats: int) -> dict:
    engine.match_stream(queries[: max(8, len(queries) // 8)])  # warm-up
    best = None
    for _ in range(repeats):
        launches_before = sum(d.clock.launches for d in engine.devices)
        run = engine.match_stream(queries)
        record = {
            "qps": run.throughput_qps,
            "kernel_wall_s": run.stats.kernel_wall_s,
            "launches": sum(d.clock.launches for d in engine.devices)
            - launches_before,
        }
        if best is None or record["kernel_wall_s"] < best["kernel_wall_s"]:
            best = record
    return best


def sweep(smoke: bool, json_path: str) -> ExperimentResult:
    num_sets = 400 if smoke else 2400
    num_queries = 128 if smoke else 768
    repeats = 1 if smoke else 3

    workloads = {
        "small_partition": (small_partition_engine, small_partition_queries),
        "duplicate_heavy": (duplicate_heavy_engine, duplicate_heavy_queries),
    }

    records = []
    rows = []
    for workload, (make_engine, make_queries) in workloads.items():
        baseline_wall = None
        for variant, knobs in VARIANTS.items():
            engine = make_engine(knobs, num_sets=num_sets)
            try:
                queries = make_queries(engine, num_queries)
                num_units = engine.tagset_table.num_units
                start = time.perf_counter()
                record = measure(engine, queries, repeats)
                elapsed = time.perf_counter() - start
            finally:
                engine.close()
            record.update(workload=workload, variant=variant, **knobs)
            record["num_units"] = num_units
            if variant == "all_off":
                baseline_wall = record["kernel_wall_s"]
            record["kernel_speedup_vs_off"] = (
                baseline_wall / record["kernel_wall_s"]
                if record["kernel_wall_s"] > 0
                else float("inf")
            )
            records.append(record)
            rows.append(
                [
                    workload,
                    variant,
                    num_units,
                    record["launches"],
                    round(record["kernel_wall_s"], 4),
                    round(record["kernel_speedup_vs_off"], 2),
                    round(record["qps"], 1),
                ]
            )
            print(
                f"{workload:>16}/{variant:<8} units={num_units:5d} "
                f"launches={record['launches']:6d} "
                f"kernel={record['kernel_wall_s']:.4f}s "
                f"({record['kernel_speedup_vs_off']:.2f}x, {elapsed:.1f}s measured)",
                flush=True,
            )

    with open(json_path, "w") as handle:
        json.dump(records, handle, indent=2)
        handle.write("\n")
    print(f"wrote {json_path} ({len(records)} records)")

    def speedup(workload: str, variant: str) -> float:
        return next(
            r["kernel_speedup_vs_off"]
            for r in records
            if r["workload"] == workload and r["variant"] == variant
        )

    return ExperimentResult(
        name="kernel_hotpath",
        title="Kernel hot-path ablation (fused launches / coarse filter / memo)",
        headers=[
            "workload",
            "variant",
            "units",
            "launches",
            "kernel wall s",
            "speedup",
            "qps",
        ],
        rows=rows,
        notes=(
            "speedup = kernel-stage wall clock vs the all-off baseline of the\n"
            "same workload.  Acceptance bar: fused >= 1.5x on small_partition "
            f"(got {speedup('small_partition', 'fused'):.2f}x), memo >= 1.5x on\n"
            f"duplicate_heavy (got {speedup('duplicate_heavy', 'memo'):.2f}x).  "
            "Fused launches amortise per-launch overhead across partitions\n"
            "(paper Fig. 7 small-partition regime); memoization exploits "
            "duplicate interests (paper sec. 4.2.1).\n"
            "The coarse filter's win is pre-process selectivity (fewer "
            "launches, higher qps); its kernel-wall column is pessimistic\n"
            "because walls are measured inside concurrently scheduled "
            "stream threads and coarse shifts work between them."
        ),
        data={"records": records},
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload, single repeat (~30 s total, used by CI)",
    )
    parser.add_argument(
        "--json",
        default=DEFAULT_JSON,
        help="output path for the machine-readable records",
    )
    args = parser.parse_args(argv)
    result = sweep(args.smoke, args.json)
    save_result(result, RESULTS_DIR)
    print("\n" + result.to_text())
    return 0


if __name__ == "__main__":
    sys.exit(main())
