"""Figure 3 — output key rate vs number of extra query tags.

Paper shape: although *input* throughput falls with query size (Fig. 2),
the *output* rate — matched keys delivered per second — rises
significantly, because bigger queries have much higher fan-out.  The
same run underlies both figures; this module re-derives the output-rate
series (cached per session by the experiment call in Fig. 2's module
being independent — the sweep is cheap enough to run twice only for the
first/last points, so we run the full experiment once here too).
"""

from repro.harness import experiments

EXTRA_TAGS = (1, 2, 4, 6, 8, 10)


def test_fig3_output_rate(benchmark, workload, publish):
    result = benchmark.pedantic(
        lambda: experiments.fig2_fig3_query_size(workload, EXTRA_TAGS),
        rounds=1,
        iterations=1,
    )
    result.name = "fig3_output_rate"
    publish(result)
    out = result.data["tm_out"]

    # Output rate grows with query size even as input throughput falls.
    assert out[-1] > out[0]

    # TagMatch's output rate also leads the prefix tree's.
    assert out[-1] > result.data["tree_out"][-1]
