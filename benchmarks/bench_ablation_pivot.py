"""Ablation — Algorithm 1's balanced pivot vs a naive first-unused bit.

Choosing the unused bit whose one-frequency is closest to 50 % keeps the
recursion shallow and the partitions near MAX_P; a naive pivot produces
lopsided splits (deep recursions, fragmented partitions) and degrades
both consolidation time and matching throughput.
"""

from repro.harness import experiments


def test_ablation_pivot(benchmark, workload, publish):
    result = benchmark.pedantic(
        lambda: experiments.ablation_pivot(workload), rounds=1, iterations=1
    )
    publish(result)
    data = result.data

    # The naive pivot fragments the database into more partitions.
    assert data["partitions_first_unused"] >= data["partitions_balanced"]

    # Balanced pivoting is not slower to match against (within noise).
    assert data["qps_balanced"] > 0.6 * data["qps_first_unused"]
