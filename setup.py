"""Setup shim for environments without the ``wheel`` package.

The canonical build configuration lives in ``pyproject.toml``; this file
only exists so that ``pip install -e . --no-use-pep517`` works on the
offline evaluation machine (setuptools 65 without ``wheel`` cannot build
PEP-517 editable wheels).
"""

from setuptools import setup

setup()
