"""The paper's headline application: a Twitter-scale tweet dispatcher.

Users follow topics (tag sets) and publishers; every incoming tweet must
be delivered to exactly the users whose interests are a subset of its
hashtags — the `Users.prefs ⊆ Tweets.keywords` join of §2.  The paper's
claim: a single commodity machine with two GPUs sustains several times
Twitter's average 2015 traffic of 6,000 tweets/s with this filtering.

This example generates the §4.2 workload at a configurable scale, loads
it into TagMatch, and replays a tweet stream at the (scaled) Twitter
rate, reporting throughput headroom and delivery latency.

Run with::

    python examples/twitter_firehose.py [num_users]
"""

import sys

import numpy as np

from repro import TagMatch, TagMatchConfig
from repro.harness.runner import latency_percentiles
from repro.workloads import (
    PAPER_TWITTER_RATE_QPS,
    PAPER_USERS,
    generate_twitter_workload,
)


def main(num_users: int = 50_000) -> None:
    print(f"generating workload for {num_users} users ...")
    workload = generate_twitter_workload(num_users=num_users, seed=7)
    print(f"  {workload.num_associations} interests, "
          f"{workload.num_unique_sets} unique sets, "
          f"{workload.interests.mean_tags():.1f} tags/interest")

    config = TagMatchConfig(
        max_partition_size=max(200, workload.num_unique_sets // 256),
        batch_size=256,
        num_gpus=2,
        num_threads=4,
        batch_timeout_s=0.02,
    )
    with TagMatch(config) as engine:
        engine.add_signatures(workload.blocks, workload.keys)
        report = engine.consolidate()
        print(f"consolidated in {report.elapsed_s:.1f}s "
              f"({report.partitioning.num_partitions} partitions)")

        # Saturation probe: how fast can this box go?
        tweets = workload.queries(4096, seed=8)
        probe = engine.match_stream(tweets.blocks, unique=True)
        print(f"max throughput: {probe.throughput_qps:.0f} tweets/s, "
              f"avg fan-out {probe.output_keys / probe.num_queries:.1f} users/tweet")

        # Replay at Twitter's average rate, scaled like the database.
        twitter_rate = PAPER_TWITTER_RATE_QPS * num_users / PAPER_USERS
        rate = max(100.0, twitter_rate)
        n = min(4096, int(rate * 4))
        run = engine.match_stream(
            tweets.blocks[:n], unique=True, arrival_rate_qps=rate
        )
        pct = latency_percentiles(run.latencies_s)
        print(f"replay at {rate:.0f} tweets/s (scaled Twitter firehose):")
        print(f"  delivered {run.num_queries} tweets to "
              f"{run.output_keys} user inboxes")
        print(f"  latency p50={pct['p50_ms']:.1f}ms p99={pct['p99_ms']:.1f}ms "
              f"max={pct['max_ms']:.1f}ms")
        headroom = probe.throughput_qps / rate
        print(f"  headroom over the firehose: {headroom:.1f}x"
              + (" — comfortably above Twitter traffic" if headroom > 1 else ""))

        # Spot-check one delivery end to end.
        tweet = tweets.tag_sets[0]
        inbox = engine.match_unique(tweet)
        sample_tags = sorted(tweet)[:4]
        print(f"sample tweet {sample_tags}... reaches {inbox.size} users")
        assert np.array_equal(np.sort(run.results[0]), inbox)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50_000)
