"""Quickstart: the TagMatch interface in two minutes.

Run with::

    python examples/quickstart.py

Covers the full Table 2 interface: staged add-set/remove-set,
consolidate, match (multiset) and match-unique, plus a peek at the
engine internals (partitions, memory) that the paper's evaluation
reports on.
"""

from repro import TagMatch, TagMatchConfig


def main() -> None:
    # A small engine: one simulated GPU, small partitions so the
    # partitioning machinery actually kicks in on a toy database.
    config = TagMatchConfig(max_partition_size=8, num_gpus=1, batch_timeout_s=None)
    with TagMatch(config) as engine:
        # --- add-set: stage (tag set, key) associations -----------------
        engine.add_set({"cats", "memes"}, key=1)
        engine.add_set({"rust", "systems"}, key=2)
        engine.add_set({"cats"}, key=3)
        engine.add_set({"cats", "memes"}, key=4)   # same set, another key
        engine.add_set({"gpu", "cuda", "streams"}, key=5)

        # Staged changes are invisible until consolidate() (§2).
        report = engine.consolidate()
        print(f"consolidated {report.num_associations} associations into "
              f"{report.num_unique_sets} unique sets across "
              f"{report.partitioning.num_partitions} partitions")

        # --- match: all keys whose set ⊆ query (multiset) ---------------
        keys = engine.match({"cats", "memes", "monday"})
        print("match({cats, memes, monday})        ->", sorted(keys.tolist()))

        # --- match-unique: distinct keys ---------------------------------
        unique = engine.match_unique({"cats", "memes", "monday"})
        print("match_unique({cats, memes, monday}) ->", sorted(unique.tolist()))

        # --- remove-set + reconsolidate ----------------------------------
        engine.remove_set({"cats"}, key=3)
        engine.consolidate()
        print("after remove-set({cats}, 3)          ->",
              sorted(engine.match({"cats", "memes"}).tolist()))

        # --- batched streaming (the high-throughput path) ----------------
        queries = engine.encode_queries(
            [{"cats", "memes"}, {"rust", "systems", "zig"}, {"nothing"}]
        )
        run = engine.match_stream(queries, unique=True)
        print(f"streamed {run.num_queries} queries at "
              f"{run.throughput_qps:.0f} q/s ->",
              [sorted(r.tolist()) for r in run.results])

        usage = engine.memory_usage()
        print(f"memory: host {usage.host_bytes} B, GPU {usage.gpu_total_bytes} B")


if __name__ == "__main__":
    main()
