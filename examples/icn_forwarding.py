"""Tag-based ICN packet forwarding on TagMatch.

Information-Centric Networking with tag-based addressing (§1, §5;
Papalini et al.) stores a forwarding information base (FIB) of tag sets,
one per route: a packet carrying descriptor tags must be forwarded on
every interface that has at least one FIB entry whose tags are a subset
of the packet's.  That is exactly ``match-unique`` with interface ids as
keys.

The example builds a small FIB, forwards a packet burst, and
cross-checks TagMatch's forwarding decisions against the Patricia-trie
matcher used in the paper's comparative evaluation.

Run with::

    python examples/icn_forwarding.py
"""

import numpy as np

from repro import TagMatch, TagMatchConfig
from repro.baselines import PrefixTreeMatcher

TOPICS = [
    "video", "audio", "news", "sports", "weather", "sensor", "traffic",
    "energy", "health", "finance", "maps", "chat", "mail", "updates",
]
REGIONS = ["eu", "us", "asia"]
QUALITIES = ["hd", "sd", "live", "cached"]


def build_fib(rng: np.random.Generator, num_routes: int = 2000):
    """Random routes: each interface announces interest in tag combos."""
    routes = []
    for _ in range(num_routes):
        tags = {
            TOPICS[int(rng.integers(0, len(TOPICS)))],
            REGIONS[int(rng.integers(0, len(REGIONS)))],
        }
        if rng.random() < 0.5:
            tags.add(QUALITIES[int(rng.integers(0, len(QUALITIES)))])
        interface = int(rng.integers(0, 32))
        routes.append((tags, interface))
    return routes


def make_packet(rng: np.random.Generator):
    """A packet descriptor: topic(s) + region + quality + extras."""
    tags = {
        TOPICS[int(rng.integers(0, len(TOPICS)))],
        TOPICS[int(rng.integers(0, len(TOPICS)))],
        REGIONS[int(rng.integers(0, len(REGIONS)))],
        QUALITIES[int(rng.integers(0, len(QUALITIES)))],
        f"flow{int(rng.integers(0, 10 ** 6))}",
    }
    return tags


def main() -> None:
    rng = np.random.default_rng(42)
    routes = build_fib(rng)

    config = TagMatchConfig(max_partition_size=128, batch_timeout_s=None)
    with TagMatch(config) as router:
        for tags, interface in routes:
            router.add_set(tags, key=interface)
        router.consolidate()
        print(f"FIB: {len(routes)} routes over 32 interfaces "
              f"({router.num_unique_sets} distinct tag sets)")

        # Reference matcher: the paper's Patricia-trie baseline.
        blocks = router.hasher.encode_sets([t for t, _ in routes])
        keys = np.array([i for _, i in routes])
        trie = PrefixTreeMatcher()
        trie.build(blocks, keys)

        packets = [make_packet(rng) for _ in range(2000)]
        packet_blocks = router.hasher.encode_sets(packets)
        run = router.match_stream(packet_blocks, unique=True)
        print(f"forwarded {run.num_queries} packets at "
              f"{run.throughput_qps:.0f} pkt/s, "
              f"{run.output_keys / run.num_queries:.1f} interfaces/packet")

        # Agreement check against the trie on a sample.
        for i in range(0, 2000, 97):
            via_trie = np.unique(trie.match_blocks(packet_blocks[i]))
            assert np.array_equal(np.sort(run.results[i]), via_trie), i
        print("forwarding decisions agree with the Patricia-trie matcher")

        dropped = sum(1 for r in run.results if r.size == 0)
        print(f"{dropped} packets had no matching route (dropped)")


if __name__ == "__main__":
    main()
