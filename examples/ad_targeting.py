"""Ad selection: matching targeting criteria against user attributes.

The paper's opening example (§1): within Twitter's ad pipeline, the
first stage of ad selection "finds a match between user attributes and
targeting criteria across the corpus of ads", i.e. it selects the ads
whose targeting criteria are a *subset* of the attributes of the user
behind a query.  TagMatch evaluates that stage directly: ads are the
database (key = ad id, set = targeting criteria) and each ad request is
a query carrying the user's attributes.

This example also demonstrates the optional *exact* subset check (§3):
billing disputes make false positives unacceptable for ads, so the
engine is configured to verify every Bloom-filter match against the
stored criteria.

Run with::

    python examples/ad_targeting.py
"""

import numpy as np

from repro import TagMatch, TagMatchConfig

SEGMENTS = [
    "age:18-24", "age:25-34", "age:35-49", "age:50+",
    "geo:us", "geo:eu", "geo:apac", "geo:latam",
    "int:sports", "int:music", "int:tech", "int:travel", "int:food",
    "int:gaming", "int:finance", "int:fashion",
    "dev:mobile", "dev:desktop",
    "lang:en", "lang:es", "lang:ja",
]


def make_ads(num_ads: int, rng: np.random.Generator):
    """Each ad targets 2–4 segments; broader ads have fewer criteria."""
    ads = []
    for ad_id in range(num_ads):
        k = int(rng.integers(2, 5))
        criteria = {SEGMENTS[i] for i in rng.choice(len(SEGMENTS), k, replace=False)}
        ads.append((ad_id, criteria))
    return ads


def make_request(rng: np.random.Generator):
    """A user shows up with one value per attribute dimension plus a few
    interests — the attribute set the ad criteria must be contained in."""
    attrs = {
        SEGMENTS[int(rng.integers(0, 4))],          # one age bracket
        SEGMENTS[4 + int(rng.integers(0, 4))],      # one geo
        SEGMENTS[16 + int(rng.integers(0, 2))],     # one device
        SEGMENTS[18 + int(rng.integers(0, 3))],     # one language
    }
    for i in rng.choice(8, int(rng.integers(1, 4)), replace=False):
        attrs.add(SEGMENTS[8 + int(i)])             # a few interests
    return attrs


def main() -> None:
    rng = np.random.default_rng(2017)
    ads = make_ads(5000, rng)

    config = TagMatchConfig(
        max_partition_size=256,
        exact_check=True,          # no billing for false positives
        batch_timeout_s=None,
    )
    with TagMatch(config) as engine:
        for ad_id, criteria in ads:
            engine.add_set(criteria, key=ad_id)
        engine.consolidate()
        print(f"indexed {len(ads)} ads "
              f"({engine.num_unique_sets} distinct targeting sets, "
              f"{engine.num_partitions} partitions)")

        # Serve a burst of ad requests.
        hits = []
        for _ in range(10):
            attrs = make_request(rng)
            eligible = engine.match_unique(attrs)
            hits.append(eligible.size)
            shown = sorted(eligible.tolist())[:5]
            print(f"  user {sorted(attrs)} -> {eligible.size:4d} eligible ads "
                  f"(e.g. {shown})")

        # Every returned ad is verified: its criteria ⊆ the attributes.
        attrs = make_request(rng)
        for ad_id in engine.match_unique(attrs):
            criteria = dict(ads)[int(ad_id)]
            assert criteria <= attrs, (ad_id, criteria, attrs)
        print("exact-check verified: every selected ad's criteria are "
              "contained in the user's attributes")
        print(f"average eligible ads per request: {np.mean(hits):.0f}")


if __name__ == "__main__":
    main()
